//! `netsort` — drive an N-worker distributed sort, disk to disk.
//!
//! The cluster the paper's §2 baseline imagines, made concrete: the input
//! file is split into contiguous per-node share files (each node's "local
//! disk"), N workers sample/split/exchange/sort in parallel — over the
//! in-process loopback transport or real TCP sockets on 127.0.0.1 — and
//! the per-node outputs concatenate, in node order, into one globally
//! sorted file.
//!
//! ```text
//! netsort <input> <output> [--nodes N] [--tcp] [--gen RECORDS[:SEED]]
//!         [--run RECORDS] [--workers N] [--batch RECORDS] [--samples N]
//!         [--recv-timeout-ms MS] [--verify] [--keep]
//!         [--trace-out TRACE.json] [--metrics-out METRICS.json]
//! ```
//!
//! `--gen` first writes a Datamation-style input file; with `--verify` the
//! output is checked to be a sorted permutation of the input (checksummed
//! while splitting, so `--verify` also works on pre-existing inputs).
//! `--recv-timeout-ms` sets the per-receive deadline every worker applies
//! while waiting on peers (default 30000; a vanished node surfaces as a
//! `TimedOut` error naming the phase and node instead of a hang; `0` waits
//! forever).
//! `--trace-out` writes one Chrome trace covering every node (each worker's
//! spans sit on a `nodeK` track) plus the cluster Figure 7 table on stderr;
//! `--metrics-out` writes the metrics snapshot as JSON.

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

use alphasort_suite::dmgen::{validate_reader, GenConfig, Generator, RunningChecksum, RECORD_LEN};
use alphasort_suite::netsort::{
    bind_cluster, loopback_cluster, merge_cluster_stats, run_worker, NetsortConfig, RetryPolicy,
    TcpTransport, Transport,
};
use alphasort_suite::obs;
use alphasort_suite::sort::io_file::{FileSink, FileSource};
use alphasort_suite::sort::{SortConfig, SortStats};

struct Args {
    input: String,
    output: String,
    nodes: usize,
    tcp: bool,
    gen: Option<(u64, u64)>,
    run_records: usize,
    workers: usize,
    batch_records: usize,
    samples: usize,
    /// Per-receive deadline in ms; 0 = wait forever.
    recv_timeout_ms: u64,
    verify: bool,
    keep: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: netsort <input> <output> [--nodes N] [--tcp] [--gen RECORDS[:SEED]] \
         [--run RECORDS] [--workers N] [--batch RECORDS] [--samples N] \
         [--recv-timeout-ms MS] [--verify] [--keep] \
         [--trace-out TRACE.json] [--metrics-out METRICS.json]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut pos = Vec::new();
    let mut args = Args {
        input: String::new(),
        output: String::new(),
        nodes: 4,
        tcp: false,
        gen: None,
        run_records: 100_000,
        workers: 0,
        batch_records: 640,
        samples: 256,
        recv_timeout_ms: NetsortConfig::DEFAULT_RECV_TIMEOUT.as_millis() as u64,
        verify: false,
        keep: false,
        trace_out: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|_| usage())?,
            "--tcp" => args.tcp = true,
            "--gen" => {
                let v = value("--gen")?;
                let (records, seed) = match v.split_once(':') {
                    Some((r, s)) => (
                        r.parse().map_err(|_| usage())?,
                        s.parse().map_err(|_| usage())?,
                    ),
                    None => (v.parse().map_err(|_| usage())?, 42),
                };
                args.gen = Some((records, seed));
            }
            "--run" => args.run_records = value("--run")?.parse().map_err(|_| usage())?,
            "--workers" => args.workers = value("--workers")?.parse().map_err(|_| usage())?,
            "--batch" => args.batch_records = value("--batch")?.parse().map_err(|_| usage())?,
            "--samples" => args.samples = value("--samples")?.parse().map_err(|_| usage())?,
            "--recv-timeout-ms" => {
                args.recv_timeout_ms = value("--recv-timeout-ms")?.parse().map_err(|_| usage())?
            }
            "--verify" => args.verify = true,
            "--keep" => args.keep = true,
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                return Err(usage());
            }
            other => pos.push(other.to_string()),
        }
    }
    if pos.len() != 2 || args.nodes == 0 || args.batch_records == 0 {
        return Err(usage());
    }
    args.input = pos.remove(0);
    args.output = pos.remove(0);
    Ok(args)
}

/// Stream `input` into `nodes` contiguous record-aligned share files
/// (`<output>.nodeK.in`), checksumming every record on the way through.
fn split_to_share_files(
    input: &str,
    output: &str,
    nodes: usize,
) -> io::Result<(Vec<String>, RunningChecksum)> {
    let len = fs::metadata(input)?.len();
    if !len.is_multiple_of(RECORD_LEN as u64) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{input} is not a whole number of {RECORD_LEN}-byte records"),
        ));
    }
    let records = len / RECORD_LEN as u64;
    let per = records.div_ceil(nodes as u64).max(1) * RECORD_LEN as u64;
    let mut reader = BufReader::with_capacity(1 << 20, File::open(input)?);
    let mut checksum = RunningChecksum::new();
    let mut paths = Vec::with_capacity(nodes);
    let mut buf = vec![0u8; 64 * RECORD_LEN];
    for node in 0..nodes {
        let path = format!("{output}.node{node}.in");
        let mut writer = BufWriter::with_capacity(1 << 20, File::create(&path)?);
        let mut left = per.min((records * RECORD_LEN as u64).saturating_sub(node as u64 * per));
        while left > 0 {
            let want = (left as usize).min(buf.len());
            reader.read_exact(&mut buf[..want])?;
            checksum.update_bytes(&buf[..want]);
            writer.write_all(&buf[..want])?;
            left -= want as u64;
        }
        writer.flush()?;
        paths.push(path);
    }
    Ok((paths, checksum))
}

/// Run every worker in its own thread; each builds its transport with its
/// `maker` (TCP establishment must happen concurrently — every node blocks
/// until its peers dial in), reads its share file, writes its part file.
fn run_cluster<T, F>(
    makers: Vec<F>,
    shares: &[String],
    parts: &[String],
    cfg: &NetsortConfig,
) -> io::Result<Vec<SortStats>>
where
    T: Transport,
    F: FnOnce() -> io::Result<T> + Send,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = makers
            .into_iter()
            .enumerate()
            .map(|(node, maker)| {
                let share = &shares[node];
                let part = &parts[node];
                scope.spawn(move || -> io::Result<SortStats> {
                    let mut transport = maker()?;
                    let mut source = FileSource::open(share)?;
                    let mut sink = FileSink::create(part)?;
                    Ok(run_worker(&mut transport, &mut source, &mut sink, cfg)?.stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

fn concatenate(parts: &[String], output: &str) -> io::Result<u64> {
    let mut writer = BufWriter::with_capacity(1 << 20, File::create(output)?);
    let mut total = 0;
    for part in parts {
        total += io::copy(&mut File::open(part)?, &mut writer)?;
    }
    writer.flush()?;
    Ok(total)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    if let Some((records, seed)) = args.gen {
        let mut gen = Generator::new(GenConfig::datamation(records, seed));
        let write = File::create(&args.input)
            .map_err(|e| io::Error::other(format!("cannot create {}: {e}", args.input)))
            .and_then(|f| {
                let mut w = BufWriter::with_capacity(1 << 20, f);
                gen.generate_to(&mut w, 10_000)?;
                w.flush()
            });
        if let Err(e) = write {
            eprintln!("generate failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "generated {} records ({:.1} MB) into {}",
            records,
            (records * RECORD_LEN as u64) as f64 / 1e6,
            args.input
        );
    }

    let (shares, checksum) = match split_to_share_files(&args.input, &args.output, args.nodes) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("split failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parts: Vec<String> = (0..args.nodes)
        .map(|n| format!("{}.node{n}.out", args.output))
        .collect();

    let cfg = NetsortConfig {
        samples_per_node: args.samples,
        batch_records: args.batch_records,
        recv_timeout: match args.recv_timeout_ms {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
        sort: SortConfig {
            run_records: args.run_records,
            workers: args.workers,
            ..Default::default()
        },
    };

    // Start recording after generation + splitting so the trace covers only
    // the distributed sort itself; each worker tags its own `nodeK` track.
    let tracing = args.trace_out.is_some() || args.metrics_out.is_some();
    if tracing {
        obs::enable(obs::DEFAULT_CAPACITY);
    }

    let per_node = if args.tcp {
        bind_cluster(args.nodes).and_then(|(listeners, addrs)| {
            let addrs = &addrs;
            let policy = RetryPolicy::default();
            let makers: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(node, listener)| {
                    let policy = policy.clone();
                    move || TcpTransport::establish(node, listener, addrs, &policy)
                })
                .collect();
            run_cluster(makers, &shares, &parts, &cfg)
        })
    } else {
        let makers: Vec<_> = loopback_cluster(args.nodes)
            .into_iter()
            .map(|t| move || Ok(t))
            .collect();
        run_cluster(makers, &shares, &parts, &cfg)
    };
    let per_node = match per_node {
        Ok(v) => v,
        Err(e) => {
            eprintln!("distributed sort failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(e) = concatenate(&parts, &args.output) {
        eprintln!("concatenation failed: {e}");
        return ExitCode::FAILURE;
    }
    if !args.keep {
        for path in shares.iter().chain(parts.iter()) {
            let _ = fs::remove_file(path);
        }
    }

    let st = merge_cluster_stats(&per_node);
    eprintln!(
        "netsort: {} records on {} {} node(s) in {:.3} s ({:.1} MB/s aggregate)",
        st.records,
        args.nodes,
        if args.tcp { "tcp" } else { "loopback" },
        st.elapsed.as_secs_f64(),
        st.throughput_mbps(),
    );
    eprintln!(
        "exchange: {:.1} MB shipped, {:.1} MB received, wait {:.3} s (critical path), \
         skew {:.2}, partitions {:?}",
        st.exchange_bytes_out as f64 / 1e6,
        st.exchange_bytes_in as f64 / 1e6,
        st.exchange_wait.as_secs_f64(),
        st.exchange_skew(),
        st.partition_sizes,
    );
    eprintln!(
        "local pipeline: quicksort {:.3} s, merge {:.3} s, gather {:.3} s, {} pass(es)",
        st.sort_time.as_secs_f64(),
        st.merge_time.as_secs_f64(),
        st.gather_time.as_secs_f64(),
        if st.one_pass { "one" } else { "two" },
    );

    if tracing {
        obs::disable();
        let snap = obs::snapshot();
        eprint!("{}", obs::figure7(&snap));
        if let Some(path) = &args.trace_out {
            let doc = obs::export::chrome_trace(&snap);
            if let Err(e) = std::fs::write(path, doc.dump()) {
                eprintln!("cannot write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "trace: {} events across {} node(s) -> {path} \
                 (open in Perfetto / chrome://tracing)",
                snap.events.len(),
                args.nodes
            );
        }
        if let Some(path) = &args.metrics_out {
            let doc = obs::export::metrics_json(&obs::metrics_snapshot());
            if let Err(e) = std::fs::write(path, doc.dump_pretty()) {
                eprintln!("cannot write metrics {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("metrics: -> {path}");
        }
    }

    if args.verify {
        let result = File::open(&args.output)
            .map_err(|e| io::Error::other(format!("cannot reopen output: {e}")))
            .and_then(|mut f| validate_reader(&mut f, checksum.finish()));
        match result {
            Ok(Ok(report)) => {
                eprintln!("verified: {} records, sorted permutation ✓", report.records)
            }
            Ok(Err(e)) => {
                eprintln!("OUTPUT INVALID: {e}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("verify failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
