//! `gensort` — write a Datamation benchmark input file.
//!
//! Companion to `valsort`, mirroring the sortbenchmark.org tool pair that
//! grew out of this paper's MinuteSort proposal. Prints the input
//! fingerprint that `valsort --expect` verifies against.
//!
//! ```text
//! gensort <records> <output-file> [--seed N] [--printable]
//! ```

use std::process::ExitCode;

use alphasort_suite::dmgen::{GenConfig, Generator, KeyDistribution, RECORD_LEN};
use alphasort_suite::sort::io::RecordSink;
use alphasort_suite::sort::io_file::FileSink;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pos = Vec::new();
    let mut seed = 42u64;
    let mut printable = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => seed = s,
                    None => {
                        eprintln!("--seed needs a number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--printable" => printable = true,
            other if !other.starts_with('-') => pos.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if pos.len() != 2 {
        eprintln!("usage: gensort <records> <output-file> [--seed N] [--printable]");
        return ExitCode::from(2);
    }
    let records: u64 = match pos[0].parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("bad record count {}", pos[0]);
            return ExitCode::from(2);
        }
    };

    let dist = if printable {
        KeyDistribution::RandomPrintable
    } else {
        KeyDistribution::Random
    };
    let mut gen = Generator::new(GenConfig {
        records,
        seed,
        dist,
    });
    let mut sink = match FileSink::create(&pos[1]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {}: {e}", pos[1]);
            return ExitCode::FAILURE;
        }
    };
    let mut buf = vec![0u8; 10_000 * RECORD_LEN];
    loop {
        let n = gen.fill(&mut buf);
        if n == 0 {
            break;
        }
        if let Err(e) = sink.push(&buf[..n]) {
            eprintln!("write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = sink.complete() {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    let cs = gen.checksum();
    eprintln!(
        "wrote {} records ({:.1} MB) to {}",
        records,
        records as f64 * RECORD_LEN as f64 / 1e6,
        pos[1]
    );
    // The fingerprint goes to stdout so scripts can capture it.
    println!("{}:{}:{}", cs.count, cs.sum, cs.xor);
    ExitCode::SUCCESS
}
