//! `valsort` — validate a sorted Datamation file.
//!
//! Checks key order, counts records and duplicate-key pairs, and prints the
//! file's order-independent fingerprint. With `--expect COUNT:SUM:XOR`
//! (the line `gensort` printed) it also verifies the file is a permutation
//! of the generated input.
//!
//! ```text
//! valsort <file> [--expect COUNT:SUM:XOR]
//! ```

use std::process::ExitCode;

use alphasort_suite::dmgen::{validate_reader, Checksum, Record, RunningChecksum, RECORD_LEN};

fn parse_checksum(s: &str) -> Option<Checksum> {
    let mut parts = s.split(':');
    let count = parts.next()?.parse().ok()?;
    let sum = parts.next()?.parse().ok()?;
    let xor = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(Checksum { count, sum, xor })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pos = Vec::new();
    let mut expect: Option<Checksum> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--expect" => {
                i += 1;
                expect = match args.get(i).map(|s| parse_checksum(s)) {
                    Some(Some(cs)) => Some(cs),
                    _ => {
                        eprintln!("--expect needs COUNT:SUM:XOR");
                        return ExitCode::from(2);
                    }
                };
            }
            other if !other.starts_with('-') => pos.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if pos.len() != 1 {
        eprintln!("usage: valsort <file> [--expect COUNT:SUM:XOR]");
        return ExitCode::from(2);
    }

    let mut file = match std::fs::File::open(&pos[0]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {}: {e}", pos[0]);
            return ExitCode::FAILURE;
        }
    };

    match expect {
        Some(cs) => match validate_reader(&mut file, cs) {
            Ok(Ok(report)) => {
                eprintln!(
                    "OK: {} records in key order, permutation matches \
                     ({} duplicate-key pairs)",
                    report.records, report.equal_key_pairs
                );
                ExitCode::SUCCESS
            }
            Ok(Err(e)) => {
                eprintln!("INVALID: {e}");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("IO error: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            // Order check + fingerprint report, no reference to compare.
            use std::io::Read;
            let mut buf = vec![0u8; 8192 * RECORD_LEN];
            let mut pending = 0usize;
            let mut rc = RunningChecksum::new();
            let mut prev: Option<[u8; 10]> = None;
            let mut records = 0u64;
            let mut dups = 0u64;
            loop {
                let n = match file.read(&mut buf[pending..]) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("IO error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if n == 0 {
                    break;
                }
                pending += n;
                let whole = pending - pending % RECORD_LEN;
                for chunk in buf[..whole].chunks_exact(RECORD_LEN) {
                    let r = Record::from_bytes(chunk);
                    if let Some(p) = prev {
                        if p > r.key {
                            eprintln!("INVALID: record {records} out of key order");
                            return ExitCode::FAILURE;
                        }
                        if p == r.key {
                            dups += 1;
                        }
                    }
                    prev = Some(r.key);
                    rc.update(&r);
                    records += 1;
                }
                buf.copy_within(whole..pending, 0);
                pending -= whole;
            }
            if pending != 0 {
                eprintln!("INVALID: trailing partial record ({pending} bytes)");
                return ExitCode::FAILURE;
            }
            let cs = rc.finish();
            eprintln!("OK: {records} records in key order ({dups} duplicate-key pairs)");
            println!("{}:{}:{}", cs.count, cs.sum, cs.xor);
            ExitCode::SUCCESS
        }
    }
}
