//! `sortcli` — an industrial-strength command-line face for AlphaSort.
//!
//! The paper distinguishes benchmark specials from "street-legal" sorts
//! ("AlphaSort slowed down as it was productized in Rdb and in OSF/1
//! HyperSort"). This is the productized entry point: sort a file of
//! 100-byte records on the host file system, one- or two-pass, with worker
//! threads, and optionally verify the output.
//!
//! ```text
//! sortcli <input> <output> [--mem BYTES] [--workers N] [--run RECORDS]
//!         [--rep record|pointer|key|key-prefix|codeword]
//!         [--kernel scalar|branchless-tree|radix|simd] [--two-pass]
//!         [--layout datamation|varlen] [--corpus NAME]
//!         [--merge-workers N]
//!         [--scratch-dir DIR] [--resume] [--io-retries N] [--io-backoff-ms MS]
//!         [--gen RECORDS[:SEED]] [--verify]
//!         [--trace-out TRACE.json] [--metrics-out METRICS.json]
//! ```
//!
//! `--layout varlen` sorts length-prefixed records with string keys through
//! the LCP/OVC-aware pipeline instead of fixed 100-byte Datamation records;
//! with `--gen` the input is drawn from a named text corpus (`--corpus`,
//! default `urls`; see `TextCorpus` for the registry) and `--verify` checks
//! the output is a sorted permutation of the input frames.
//!
//! `--merge-workers N` cuts the final merge into `N` disjoint key ranges
//! by sampled splitters and merges them in parallel (0, the default, keeps
//! the classic serial tournament). Output is byte-identical either way;
//! the summary line reports the per-range record skew.
//!
//! `--gen` first writes a Datamation-style input file (and with `--verify`
//! checks the output is a sorted permutation of it). `--trace-out` records
//! spans across every pipeline layer and writes a Chrome `trace_event` file
//! (load it in Perfetto / `chrome://tracing`), printing the paper's
//! Figure 7 "where the time goes" table to stderr; `--metrics-out` writes
//! the counter/gauge/histogram snapshot as JSON.
//!
//! `--scratch-dir` puts two-pass scratch runs on a striped, checksummed
//! volume backed by disk-image files in DIR (instead of in memory), and
//! persists a run manifest there. After a crash, re-running with `--resume`
//! verifies the surviving runs against the manifest and re-forms only what
//! is missing or corrupt. `--io-retries` / `--io-backoff-ms` set the scratch
//! volume's transient-IO retry budget.

use std::io;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use alphasort_suite::dmgen::{
    generate_varlen, validate_reader, var_records_of, GenConfig, Generator, TextCorpus,
    VarGenConfig, RECORD_LEN,
};
use alphasort_suite::iosim::{catalog, FileStorage, IoEngine, Pacing, SimDisk, Storage};
use alphasort_suite::obs;
use alphasort_suite::sort::driver::{one_pass, two_pass, MemScratch, ResumeReport, StripeScratch};
use alphasort_suite::sort::io::RecordSink;
use alphasort_suite::sort::io_file::{FileSink, FileSource};
use alphasort_suite::sort::{Kernel, RecordLayout, Representation, SortConfig};
use alphasort_suite::stripefs::{RetryPolicy, Volume};

struct Args {
    input: String,
    output: String,
    mem: u64,
    workers: usize,
    run_records: usize,
    rep: Representation,
    kernel: Kernel,
    layout: RecordLayout,
    corpus: TextCorpus,
    two_pass: bool,
    merge_workers: usize,
    scratch_dir: Option<String>,
    resume: bool,
    io_retries: u32,
    io_backoff_ms: u64,
    gen: Option<(u64, u64)>,
    verify: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sortcli <input> <output> [--mem BYTES] [--workers N] \
         [--run RECORDS] [--rep NAME] [--kernel NAME] [--layout NAME] [--corpus NAME] \
         [--two-pass] [--merge-workers N] \
         [--scratch-dir DIR] [--resume] [--io-retries N] [--io-backoff-ms MS] \
         [--gen RECORDS[:SEED]] [--verify] \
         [--trace-out TRACE.json] [--metrics-out METRICS.json]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut pos = Vec::new();
    let mut args = Args {
        input: String::new(),
        output: String::new(),
        mem: 256 << 20,
        workers: 0,
        run_records: 100_000,
        rep: Representation::KeyPrefix,
        kernel: Kernel::Scalar,
        layout: RecordLayout::Datamation,
        corpus: TextCorpus::Urls,
        two_pass: false,
        merge_workers: 0,
        scratch_dir: None,
        resume: false,
        io_retries: 2,
        io_backoff_ms: 1,
        gen: None,
        verify: false,
        trace_out: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--mem" => args.mem = value("--mem")?.parse().map_err(|_| usage())?,
            "--workers" => args.workers = value("--workers")?.parse().map_err(|_| usage())?,
            "--run" => args.run_records = value("--run")?.parse().map_err(|_| usage())?,
            "--rep" => {
                let v = value("--rep")?;
                args.rep = Representation::ALL
                    .into_iter()
                    .find(|r| r.name() == v)
                    .ok_or_else(|| {
                        eprintln!("unknown representation {v}");
                        usage()
                    })?;
            }
            "--kernel" => {
                let v = value("--kernel")?;
                args.kernel = Kernel::from_name(&v).ok_or_else(|| {
                    let names: Vec<&str> = Kernel::ALL.into_iter().map(|k| k.name()).collect();
                    eprintln!("unknown kernel {v} (one of: {})", names.join(", "));
                    usage()
                })?;
            }
            "--layout" => {
                let v = value("--layout")?;
                args.layout = RecordLayout::from_name(&v).ok_or_else(|| {
                    let names: Vec<&str> =
                        RecordLayout::ALL.into_iter().map(|l| l.name()).collect();
                    eprintln!("unknown layout {v} (one of: {})", names.join(", "));
                    usage()
                })?;
            }
            "--corpus" => {
                let v = value("--corpus")?;
                args.corpus = TextCorpus::from_name(&v).ok_or_else(|| {
                    let names: Vec<&str> = TextCorpus::ALL.into_iter().map(|c| c.name()).collect();
                    eprintln!("unknown corpus {v} (one of: {})", names.join(", "));
                    usage()
                })?;
            }
            "--two-pass" => args.two_pass = true,
            "--merge-workers" => {
                args.merge_workers = value("--merge-workers")?.parse().map_err(|_| usage())?
            }
            "--scratch-dir" => args.scratch_dir = Some(value("--scratch-dir")?),
            "--resume" => args.resume = true,
            "--io-retries" => {
                args.io_retries = value("--io-retries")?.parse().map_err(|_| usage())?
            }
            "--io-backoff-ms" => {
                args.io_backoff_ms = value("--io-backoff-ms")?.parse().map_err(|_| usage())?
            }
            "--verify" => args.verify = true,
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--gen" => {
                let v = value("--gen")?;
                let (n, seed) = match v.split_once(':') {
                    Some((n, s)) => (
                        n.parse().map_err(|_| usage())?,
                        s.parse().map_err(|_| usage())?,
                    ),
                    None => (v.parse().map_err(|_| usage())?, 42u64),
                };
                args.gen = Some((n, seed));
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => pos.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                return Err(usage());
            }
        }
    }
    if pos.len() != 2 {
        return Err(usage());
    }
    if args.scratch_dir.is_some() && !args.two_pass {
        eprintln!("--scratch-dir requires --two-pass");
        return Err(usage());
    }
    if args.resume && args.scratch_dir.is_none() {
        eprintln!("--resume requires --scratch-dir");
        return Err(usage());
    }
    args.input = pos.remove(0);
    args.output = pos.remove(0);
    Ok(args)
}

/// Number of disk images striped to form the scratch volume.
const SCRATCH_DISKS: usize = 2;
/// Stripe chunk: 64 KB per disk per stride, matching the paper's preference
/// for large transfers over seeks.
const SCRATCH_CHUNK: u64 = 64 * 1024;

/// Build (or re-open, when resuming) a striped scratch volume over disk-image
/// files in `dir` and attach the run manifest at `dir/scratch.manifest`.
fn build_striped_scratch(
    dir: &str,
    resume: bool,
    io_retries: u32,
    io_backoff_ms: u64,
    input_bytes: u64,
    run_records: u64,
) -> io::Result<(StripeScratch, Option<ResumeReport>)> {
    std::fs::create_dir_all(dir)?;
    let disks = (0..SCRATCH_DISKS)
        .map(|i| {
            let img = Path::new(dir).join(format!("disk{i}.img"));
            let storage: Arc<dyn Storage> = if resume {
                Arc::new(FileStorage::open(&img).map_err(|e| {
                    io::Error::new(e.kind(), format!("cannot reopen {}: {e}", img.display()))
                })?)
            } else {
                Arc::new(FileStorage::create(&img).map_err(|e| {
                    io::Error::new(e.kind(), format!("cannot create {}: {e}", img.display()))
                })?)
            };
            Ok(SimDisk::new(
                format!("scratch{i}"),
                catalog::uncapped(),
                storage,
                Pacing::Modeled,
                None,
            ))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let mut volume = Volume::new(Arc::new(IoEngine::new(disks)));
    volume.set_retry_policy(RetryPolicy {
        max_attempts: io_retries + 1,
        backoff: Duration::from_millis(io_backoff_ms),
        ..RetryPolicy::default()
    });
    let volume = Arc::new(volume);
    let manifest = Path::new(dir).join("scratch.manifest");
    if resume {
        let (scratch, report) = StripeScratch::resume(volume, &manifest)?;
        if report.input_bytes != input_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "scratch manifest was written for a {}-byte input, but the \
                     input is {} bytes; refusing to resume",
                    report.input_bytes, input_bytes
                ),
            ));
        }
        if report.run_records != run_records {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "scratch manifest was written with --run {}, but this \
                     invocation uses --run {}; refusing to resume",
                    report.run_records, run_records
                ),
            ));
        }
        Ok((scratch, Some(report)))
    } else {
        let scratch = StripeScratch::with_manifest(
            volume,
            SCRATCH_CHUNK,
            &manifest,
            input_bytes,
            run_records,
        )?;
        Ok((scratch, None))
    }
}

/// Var-len verification: the output must parse, be key-ascending, and hold
/// exactly the input's frames (a sorted permutation, frame for frame).
fn verify_varlen(input: &str, output: &str) -> Result<u64, String> {
    let inp = std::fs::read(input).map_err(|e| format!("cannot reread {input}: {e}"))?;
    let out = std::fs::read(output).map_err(|e| format!("cannot reopen {output}: {e}"))?;
    let in_recs = var_records_of(&inp).map_err(|e| format!("input: {e}"))?;
    let out_recs = var_records_of(&out).map_err(|e| format!("output: {e}"))?;
    for (i, w) in out_recs.windows(2).enumerate() {
        if w[0].key() > w[1].key() {
            return Err(format!("keys out of order at record {}", i + 1));
        }
    }
    let mut a: Vec<&[u8]> = in_recs.iter().map(|r| r.frame()).collect();
    let mut b: Vec<&[u8]> = out_recs.iter().map(|r| r.frame()).collect();
    a.sort_unstable();
    b.sort_unstable();
    if a != b {
        return Err(format!(
            "output is not a permutation of the input ({} vs {} records)",
            out_recs.len(),
            in_recs.len()
        ));
    }
    Ok(out_recs.len() as u64)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    // Optional input generation.
    let checksum = match args.gen {
        Some((records, seed)) if args.layout == RecordLayout::VarLen => {
            let data = generate_varlen(VarGenConfig {
                records,
                seed,
                corpus: args.corpus,
            });
            if let Err(e) = std::fs::write(&args.input, &data) {
                eprintln!("cannot write {}: {e}", args.input);
                return ExitCode::FAILURE;
            }
            eprintln!(
                "generated {} var-len records ({:.1} MB, corpus {}) into {}",
                records,
                data.len() as f64 / 1e6,
                args.corpus.name(),
                args.input
            );
            None
        }
        Some((records, seed)) => {
            let mut gen = Generator::new(GenConfig::datamation(records, seed));
            let mut sink = match FileSink::create(&args.input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args.input);
                    return ExitCode::FAILURE;
                }
            };
            let mut buf = vec![0u8; 10_000 * RECORD_LEN];
            loop {
                let n = gen.fill(&mut buf);
                if n == 0 {
                    break;
                }
                if let Err(e) = sink.push(&buf[..n]) {
                    eprintln!("write failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Err(e) = sink.complete() {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "generated {} records ({:.1} MB) into {}",
                records,
                records as f64 * RECORD_LEN as f64 / 1e6,
                args.input
            );
            Some(gen.checksum())
        }
        None => None,
    };

    let cfg = SortConfig {
        run_records: args.run_records,
        representation: args.rep,
        workers: args.workers,
        gather_batch: 10_000,
        memory_budget: args.mem,
        max_fanin: 128,
        merge_workers: args.merge_workers,
        kernel: args.kernel,
        layout: args.layout,
    };
    if args.layout == RecordLayout::VarLen && args.scratch_dir.is_some() {
        eprintln!(
            "note: var-len two-pass sorts currently spill to in-memory scratch; \
             --scratch-dir is ignored for run storage"
        );
    }

    // Start recording after generation so the trace covers only the sort.
    let tracing = args.trace_out.is_some() || args.metrics_out.is_some();
    if tracing {
        obs::enable(obs::DEFAULT_CAPACITY);
    }

    let mut source = match FileSource::open(&args.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let mut sink = match FileSink::create(&args.output) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {}: {e}", args.output);
            return ExitCode::FAILURE;
        }
    };

    let outcome = if args.two_pass {
        match &args.scratch_dir {
            Some(dir) => {
                let input_bytes = match std::fs::metadata(&args.input) {
                    Ok(m) => m.len(),
                    Err(e) => {
                        eprintln!("cannot stat {}: {e}", args.input);
                        return ExitCode::FAILURE;
                    }
                };
                let (mut scratch, report) = match build_striped_scratch(
                    dir,
                    args.resume,
                    args.io_retries,
                    args.io_backoff_ms,
                    input_bytes,
                    args.run_records as u64,
                ) {
                    Ok(pair) => pair,
                    Err(e) => {
                        eprintln!("scratch setup failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Some(report) = &report {
                    eprintln!(
                        "resume: {} intact run(s) recovered, {} discarded as corrupt",
                        report.recovered.len(),
                        report.corrupt.len()
                    );
                    for reason in &report.corrupt {
                        eprintln!("resume: discarded {reason}");
                    }
                }
                two_pass(&mut source, &mut sink, &mut scratch, &cfg)
            }
            None => {
                let mut scratch = MemScratch::new(10_000 * RECORD_LEN);
                two_pass(&mut source, &mut sink, &mut scratch, &cfg)
            }
        }
    } else {
        one_pass(&mut source, &mut sink, &cfg)
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sort failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let st = &outcome.stats;
    if args.resume {
        eprintln!(
            "resume: reused {} recovered run(s), re-formed {}",
            st.runs_recovered, st.runs_reformed
        );
    }
    eprintln!(
        "sorted {} records in {:.3} s ({:.1} MB/s): {} runs, \
         quicksort {:.3} s, merge {:.3} s, gather {:.3} s, {} pass(es)",
        st.records,
        st.elapsed.as_secs_f64(),
        st.throughput_mbps(),
        st.runs,
        st.sort_time.as_secs_f64(),
        st.merge_time.as_secs_f64(),
        st.gather_time.as_secs_f64(),
        if st.one_pass { "one" } else { "two" },
    );
    if !st.merge_range_records.is_empty() {
        eprintln!(
            "partitioned merge: {} range(s), skew {:.2}x (largest range over ideal)",
            st.merge_range_records.len(),
            st.merge_skew(),
        );
    }

    if tracing {
        obs::disable();
        let snap = obs::snapshot();
        eprint!("{}", obs::figure7(&snap));
        if let Some(path) = &args.trace_out {
            let doc = obs::export::chrome_trace(&snap);
            if let Err(e) = std::fs::write(path, doc.dump()) {
                eprintln!("cannot write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "trace: {} events -> {path} (open in Perfetto / chrome://tracing)",
                snap.events.len()
            );
        }
        if let Some(path) = &args.metrics_out {
            let doc = obs::export::metrics_json(&obs::metrics_snapshot());
            if let Err(e) = std::fs::write(path, doc.dump_pretty()) {
                eprintln!("cannot write metrics {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("metrics: -> {path}");
        }
    }

    if args.verify && args.layout == RecordLayout::VarLen {
        match verify_varlen(&args.input, &args.output) {
            Ok(records) => {
                eprintln!("verified: {records} var-len records, sorted permutation ✓")
            }
            Err(e) => {
                eprintln!("OUTPUT INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.verify {
        let Some(checksum) = checksum else {
            eprintln!("--verify requires --gen (the input fingerprint)");
            return ExitCode::from(2);
        };
        let mut f = match std::fs::File::open(&args.output) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot reopen output: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_reader(&mut f, checksum) {
            Ok(Ok(report)) => {
                eprintln!("verified: {} records, sorted permutation ✓", report.records)
            }
            Ok(Err(e)) => {
                eprintln!("OUTPUT INVALID: {e}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("verify IO error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
