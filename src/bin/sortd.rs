//! `sortd` — the sort-as-a-service daemon and its command-line client.
//!
//! ```text
//! sortd serve  [--listen ADDR] [--pool-mem BYTES] [--pool-scratch BYTES]
//!              [--queue-bound N] [--bypass-limit N] [--scratch-dir DIR]
//!              [--journal DIR] [--trace-out TRACE.json] [--metrics-out METRICS.json]
//! sortd submit --addr ADDR (--in FILE | --gen RECORDS[:SEED]) [--out FILE]
//!              [--mem BYTES] [--scratch BYTES] [--merge-workers N] [--name NAME]
//!              [--kernel scalar|branchless-tree|radix|simd]
//!              [--idem-key KEY] [--deadline-ms N]
//! sortd fleet  --addr ADDR [--jobs N] [--threads N] [--records N] [--mem BYTES]
//!              [--kernel NAME] [--retries N]
//! sortd stats  --addr ADDR
//! sortd top    --addr ADDR [--interval-ms N] [--iters N]
//! sortd status --addr ADDR --job ID
//! sortd cancel --addr ADDR --job ID
//! sortd drain  --addr ADDR
//! ```
//!
//! `serve` prints `sortd listening on ADDR` (with the resolved port) and
//! runs until a client sends `drain`. With `--scratch-dir`, two-pass jobs
//! spill to one shared striped volume of disk-image files in DIR, each
//! job under its own run-file namespace; without it, scratch lives in
//! memory. With `--journal DIR`, every job lifecycle transition is
//! journaled to DIR and a restarted daemon pointed at the same journal
//! (and scratch dir) recovers: settled jobs answer re-submitted
//! idempotency keys from the record, interrupted two-pass jobs reattach
//! their surviving scratch runs so only the lost tail re-forms.
//!
//! `submit` streams a file (or a freshly generated Datamation input) to
//! the daemon and writes the sorted bytes to `--out`. With `--gen` it
//! prints the input fingerprint as `checksum COUNT:SUM:XOR` — feed that to
//! `valsort --expect` to validate the output end to end.
//!
//! `fleet` is a synthetic client fleet for smoke tests: N generated jobs
//! over T client threads, every output checked against an in-process
//! stable sort; exits non-zero on any mismatch or non-retryable failure.
//!
//! `top` polls the daemon's `metrics` wire document and diffs successive
//! snapshots into interval rates: jobs/s by outcome, admission
//! bypass/aging rates, pool utilization, and live p50/p99 latencies from
//! the histogram delta. With `--iters 0` (the default) it refreshes the
//! terminal forever; a finite `--iters` prints that many plain blocks and
//! exits — the scriptable form CI uses.
//!
//! `serve --trace-out`/`--metrics-out` mirror sortcli and netsort: the
//! daemon runs with tracing enabled and writes a Chrome trace and/or an
//! obs metrics document when it drains.

use std::io::Write;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use alphasort_suite::dmgen::{generate, records_of_mut, GenConfig, RECORD_LEN};
use alphasort_suite::iosim::{catalog, FileStorage, IoEngine, Pacing, SimDisk, Storage};
use alphasort_suite::obs;
use alphasort_suite::obs::MetricsSnapshot;
use alphasort_suite::sort::Kernel;
use alphasort_suite::sortd::{
    AdmissionConfig, Client, JobSpec, PoolConfig, RetryPolicy, ScratchBacking, Sortd,
    SortdConfig,
};
use alphasort_suite::stripefs::Volume;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sortd serve  [--listen ADDR] [--pool-mem BYTES] [--pool-scratch BYTES]\n\
         \x20                [--queue-bound N] [--bypass-limit N] [--scratch-dir DIR]\n\
         \x20                [--journal DIR] [--trace-out TRACE.json] [--metrics-out METRICS.json]\n\
         \x20      sortd submit --addr ADDR (--in FILE | --gen RECORDS[:SEED]) [--out FILE]\n\
         \x20                [--mem BYTES] [--scratch BYTES] [--merge-workers N] [--name NAME]\n\
         \x20                [--kernel NAME] [--idem-key KEY] [--deadline-ms N]\n\
         \x20      sortd fleet  --addr ADDR [--jobs N] [--threads N] [--records N] [--mem BYTES]\n\
         \x20                [--kernel NAME] [--retries N]\n\
         \x20      sortd stats  --addr ADDR\n\
         \x20      sortd top    --addr ADDR [--interval-ms N] [--iters N]\n\
         \x20      sortd status --addr ADDR --job ID\n\
         \x20      sortd cancel --addr ADDR --job ID\n\
         \x20      sortd drain  --addr ADDR"
    );
    ExitCode::from(2)
}

/// Flag map: every `--flag value` pair after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(mut it: impl Iterator<Item = String>) -> Result<Flags, ExitCode> {
        let mut flags = Vec::new();
        while let Some(a) = it.next() {
            if !a.starts_with("--") {
                eprintln!("unexpected argument {a}");
                return Err(usage());
            }
            let Some(v) = it.next() else {
                eprintln!("missing value for {a}");
                return Err(usage());
            };
            flags.push((a, v));
        }
        Ok(Flags(flags))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ExitCode> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| {
                eprintln!("bad value for {name}: {v}");
                usage()
            }),
            None => Ok(default),
        }
    }

    fn kernel(&self) -> Result<Kernel, ExitCode> {
        match self.get("--kernel") {
            None => Ok(Kernel::Scalar),
            Some(v) => Kernel::from_name(v).ok_or_else(|| {
                let names: Vec<&str> = Kernel::ALL.into_iter().map(|k| k.name()).collect();
                eprintln!("unknown kernel {v} (one of: {})", names.join(", "));
                usage()
            }),
        }
    }

    fn addr(&self) -> Result<SocketAddr, ExitCode> {
        let Some(a) = self.get("--addr") else {
            eprintln!("--addr is required");
            return Err(usage());
        };
        a.to_socket_addrs()
            .ok()
            .and_then(|mut it| it.next())
            .ok_or_else(|| {
                eprintln!("cannot resolve {a}");
                usage()
            })
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let run = match cmd.as_str() {
        "serve" => cmd_serve(&flags),
        "submit" => cmd_submit(&flags),
        "fleet" => cmd_fleet(&flags),
        "stats" => cmd_stats(&flags),
        "top" => cmd_top(&flags),
        "status" => cmd_status(&flags),
        "cancel" => cmd_cancel(&flags),
        "drain" => cmd_drain(&flags),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("unknown subcommand {other}");
            return usage();
        }
    };
    match run {
        Ok(code) => code,
        Err(code) => code,
    }
}

/// Disk images striped to form the shared scratch volume.
const SCRATCH_DISKS: usize = 2;
const SCRATCH_CHUNK: u64 = 64 * 1024;

fn shared_volume(dir: &str) -> Result<Arc<Volume>, ExitCode> {
    std::fs::create_dir_all(dir).map_err(|e| {
        eprintln!("cannot create {dir}: {e}");
        ExitCode::FAILURE
    })?;
    let mut disks = Vec::new();
    for i in 0..SCRATCH_DISKS {
        let img = Path::new(dir).join(format!("disk{i}.img"));
        // Reopen an existing image rather than truncating it: a restarted
        // daemon must see the runs an interrupted two-pass job sealed, or
        // journal-driven scratch recovery has nothing to reattach.
        let opened = if img.exists() {
            FileStorage::open(&img)
        } else {
            FileStorage::create(&img)
        };
        let storage: Arc<dyn Storage> = Arc::new(opened.map_err(|e| {
            eprintln!("cannot open {}: {e}", img.display());
            ExitCode::FAILURE
        })?);
        disks.push(SimDisk::new(
            format!("scratch{i}"),
            catalog::uncapped(),
            storage,
            Pacing::Modeled,
            None,
        ));
    }
    Ok(Arc::new(Volume::new(Arc::new(IoEngine::new(disks)))))
}

fn cmd_serve(flags: &Flags) -> Result<ExitCode, ExitCode> {
    let pool = PoolConfig {
        mem_total: flags.num("--pool-mem", 256u64 << 20)?,
        scratch_total: flags.num("--pool-scratch", 1u64 << 30)?,
    };
    let admission = AdmissionConfig {
        queue_bound: flags.num("--queue-bound", 256usize)?,
        bypass_limit: flags.num("--bypass-limit", 8u32)?,
    };
    let backing = match flags.get("--scratch-dir") {
        Some(dir) => ScratchBacking::SharedVolume(shared_volume(dir)?, SCRATCH_CHUNK),
        None => ScratchBacking::Memory,
    };
    // Parity with sortcli/netsort: record the daemon's whole lifetime and
    // write the artifacts at drain. (Daemon latency *histograms* are
    // always on regardless; these flags add span traces + obs metrics.)
    let tracing = flags.get("--trace-out").is_some() || flags.get("--metrics-out").is_some();
    if tracing {
        obs::enable(obs::DEFAULT_CAPACITY);
    }
    let daemon = Sortd::start(SortdConfig {
        listen: flags.get("--listen").unwrap_or("127.0.0.1:0").to_string(),
        pool,
        admission,
        backing,
        client_read_timeout: Duration::from_secs(
            flags.num("--client-timeout-secs", 120u64)?,
        ),
        client_write_timeout: Duration::from_secs(
            flags.num("--client-write-timeout-secs", 30u64)?,
        ),
        journal: flags.get("--journal").map(Into::into),
        recovered_grace: Duration::from_millis(flags.num("--recovered-grace-ms", 60_000u64)?),
        ..SortdConfig::default()
    })
    .map_err(|e| {
        eprintln!("cannot start daemon: {e}");
        ExitCode::FAILURE
    })?;
    // The resolved-port line is the startup handshake scripts wait for.
    println!("sortd listening on {}", daemon.addr());
    std::io::stdout().flush().ok();
    // Serve until a client drains us. The handle blocks here; all work
    // happens on the daemon's connection threads.
    daemon.wait_drained();
    let stats = daemon.stats();
    eprintln!("sortd drained: {}", stats.dump());
    if tracing {
        obs::disable();
        let snap = obs::snapshot();
        if let Some(path) = flags.get("--trace-out") {
            let doc = obs::export::chrome_trace(&snap);
            if let Err(e) = std::fs::write(path, doc.dump()) {
                eprintln!("cannot write trace {path}: {e}");
                return Ok(ExitCode::FAILURE);
            }
            eprintln!(
                "trace: {} events -> {path} (open in Perfetto / chrome://tracing)",
                snap.events.len()
            );
        }
        if let Some(path) = flags.get("--metrics-out") {
            let doc = obs::export::metrics_json(&obs::metrics_snapshot());
            if let Err(e) = std::fs::write(path, doc.dump_pretty()) {
                eprintln!("cannot write metrics {path}: {e}");
                return Ok(ExitCode::FAILURE);
            }
            eprintln!("metrics: -> {path}");
        }
    }
    if daemon.pool_idle() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("pool accounting not zero after drain");
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_submit(flags: &Flags) -> Result<ExitCode, ExitCode> {
    let addr = flags.addr()?;
    let (data, fingerprint) = match (flags.get("--in"), flags.get("--gen")) {
        (Some(path), None) => {
            let data = std::fs::read(path).map_err(|e| {
                eprintln!("cannot read {path}: {e}");
                ExitCode::FAILURE
            })?;
            (data, None)
        }
        (None, Some(spec)) => {
            let (n, seed) = match spec.split_once(':') {
                Some((n, s)) => (
                    n.parse().map_err(|_| usage())?,
                    s.parse().map_err(|_| usage())?,
                ),
                None => (spec.parse().map_err(|_| usage())?, 42u64),
            };
            let (data, checksum) = generate(GenConfig::datamation(n, seed));
            (data, Some(checksum))
        }
        _ => {
            eprintln!("exactly one of --in or --gen is required");
            return Err(usage());
        }
    };
    let spec = JobSpec {
        name: flags.get("--name").unwrap_or("cli").to_string(),
        input_bytes: data.len() as u64,
        mem_budget: flags.num("--mem", 64u64 << 20)?,
        scratch_budget: flags.num("--scratch", data.len() as u64 + RECORD_LEN as u64)?,
        merge_workers: flags.num("--merge-workers", 0usize)?,
        kernel: flags.kernel()?,
        idem_key: flags.get("--idem-key").map(Into::into),
        deadline_ms: flags.num("--deadline-ms", 0u64)?,
        ..JobSpec::default()
    };
    let client = Client::new(addr).with_timeout(Duration::from_secs(600));
    let started = Instant::now();
    let res = client.submit(&spec, &data).map_err(|e| {
        eprintln!("submit failed: {e}");
        ExitCode::FAILURE
    })?;
    if res.duplicate {
        eprintln!(
            "job {}: duplicate of a settled job — {} records, answered from the journal",
            res.job_id, res.records
        );
        return Ok(ExitCode::SUCCESS);
    }
    eprintln!(
        "job {} ({}): {} records sorted in {:.3} s ({}{})",
        res.job_id,
        res.plan,
        res.records,
        started.elapsed().as_secs_f64(),
        if res.queued { "queued, then ran" } else { "ran immediately" },
        if res.queued {
            format!(" at depth {}", res.queue_depth)
        } else {
            String::new()
        },
    );
    if let Some(path) = flags.get("--out") {
        std::fs::write(path, &res.output).map_err(|e| {
            eprintln!("cannot write {path}: {e}");
            ExitCode::FAILURE
        })?;
        eprintln!("wrote {} bytes to {path}", res.output.len());
    }
    if let Some(c) = fingerprint {
        // The line valsort --expect consumes.
        println!("checksum {}:{}:{}", c.count, c.sum, c.xor);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_fleet(flags: &Flags) -> Result<ExitCode, ExitCode> {
    let addr = flags.addr()?;
    let jobs: u64 = flags.num("--jobs", 64)?;
    let threads: u64 = flags.num("--threads", 8)?;
    let records: u64 = flags.num("--records", 1_000)?;
    let mem: u64 = flags.num("--mem", 1u64 << 20)?;
    let kernel = flags.kernel()?;
    // --retries N switches the fleet to the client's bounded, idempotent
    // retry policy (N attempts, jittered linear backoff, one key per job).
    // Without it the fleet keeps its historical unbounded exponential loop.
    let retries: u32 = flags.num("--retries", 0)?;
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        handles.push(thread::spawn(move || -> Result<u64, String> {
            let client = Client::new(addr).with_timeout(Duration::from_secs(600));
            let mut ran = 0;
            for j in (t..jobs).step_by(threads.max(1) as usize) {
                let (data, _) = generate(GenConfig::datamation(records, 7_000 + j));
                let spec = JobSpec {
                    name: format!("fleet-{j}"),
                    input_bytes: data.len() as u64,
                    mem_budget: mem,
                    scratch_budget: data.len() as u64 + RECORD_LEN as u64,
                    merge_workers: 0,
                    kernel,
                    idem_key: (retries > 0).then(|| format!("fleet-job-{j}")),
                    ..JobSpec::default()
                };
                let res = if retries > 0 {
                    let policy = RetryPolicy {
                        attempts: retries,
                        base_backoff: Duration::from_millis(5),
                        seed: 0xf1ee7 ^ j,
                    };
                    match client.submit_with_retry(&spec, &data, &policy) {
                        Ok(r) => r,
                        Err(e) => return Err(format!("fleet-{j}: {e}")),
                    }
                } else {
                    let mut delay = Duration::from_millis(5);
                    loop {
                        match client.submit(&spec, &data) {
                            Ok(r) => break r,
                            Err(e) if e.retryable() => {
                                thread::sleep(delay);
                                delay = (delay * 2).min(Duration::from_millis(250));
                            }
                            Err(e) => return Err(format!("fleet-{j}: {e}")),
                        }
                    }
                };
                if res.duplicate {
                    // A retry raced a completed first attempt; the bytes
                    // already reached that attempt, nothing to re-check.
                    ran += 1;
                    continue;
                }
                let mut want = data.clone();
                records_of_mut(&mut want).sort_by_key(|r| r.key);
                if res.output != want {
                    return Err(format!("fleet-{j}: output diverged from oracle"));
                }
                ran += 1;
            }
            Ok(ran)
        }));
    }
    let mut total = 0;
    let mut failures = Vec::new();
    for h in handles {
        match h.join().expect("fleet thread panicked") {
            Ok(n) => total += n,
            Err(e) => failures.push(e),
        }
    }
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    let secs = started.elapsed().as_secs_f64();
    eprintln!(
        "fleet: {total}/{jobs} jobs ok in {secs:.3} s ({:.1} jobs/s), all outputs oracle-checked",
        total as f64 / secs
    );
    if failures.is_empty() && total == jobs {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_stats(flags: &Flags) -> Result<ExitCode, ExitCode> {
    let doc = Client::new(flags.addr()?).stats().map_err(|e| {
        eprintln!("stats failed: {e}");
        ExitCode::FAILURE
    })?;
    println!("{}", doc.dump_pretty());
    Ok(ExitCode::SUCCESS)
}

/// `sortd top`: poll the `metrics` wire doc, diff successive snapshots
/// into interval rates, render. Counter deltas over the *daemon's* uptime
/// delta (not local wall clock) so rates are immune to poll jitter;
/// latency quantiles come from the histogram diff, so they describe only
/// the jobs that finished in the interval.
fn cmd_top(flags: &Flags) -> Result<ExitCode, ExitCode> {
    let addr = flags.addr()?;
    let interval = Duration::from_millis(flags.num("--interval-ms", 1_000u64)?.max(10));
    let iters: u64 = flags.num("--iters", 0)?; // 0 = refresh forever
    let client = Client::new(addr).with_timeout(Duration::from_secs(30));
    let fetch = || -> Result<(MetricsSnapshot, u64), ExitCode> {
        let doc = client.metrics().map_err(|e| {
            eprintln!("metrics request failed: {e}");
            ExitCode::FAILURE
        })?;
        let uptime = doc.field_u64("uptime_ms").unwrap_or(0);
        let snap = MetricsSnapshot::from_json(&doc).map_err(|e| {
            eprintln!("cannot decode metrics doc: {e}");
            ExitCode::FAILURE
        })?;
        Ok((snap, uptime))
    };
    let (mut prev, mut prev_uptime) = fetch()?;
    let mut shown = 0u64;
    loop {
        thread::sleep(interval);
        let (cur, uptime) = fetch()?;
        let dt_s = uptime.saturating_sub(prev_uptime).max(1) as f64 / 1_000.0;
        let delta = cur.diff(&prev);
        if iters == 0 {
            // Clear screen + home: a live refreshing view.
            print!("\x1b[2J\x1b[H");
        }
        render_top(addr, &cur, &delta, dt_s, uptime);
        std::io::stdout().flush().ok();
        (prev, prev_uptime) = (cur, uptime);
        shown += 1;
        if iters > 0 && shown >= iters {
            return Ok(ExitCode::SUCCESS);
        }
    }
}

fn render_top(addr: SocketAddr, cur: &MetricsSnapshot, delta: &MetricsSnapshot, dt_s: f64, uptime_ms: u64) {
    let rate = |name: &str| delta.counters.get(name).copied().unwrap_or(0) as f64 / dt_s;
    let gauge = |name: &str| cur.gauges.get(name).copied().unwrap_or(0);
    let pct_of = |used: i64, total: i64| {
        if total > 0 { 100.0 * used as f64 / total as f64 } else { 0.0 }
    };
    let mb = |v: i64| v as f64 / (1 << 20) as f64;
    println!(
        "sortd top — {addr} · up {:.1} s · interval {dt_s:.1} s",
        uptime_ms as f64 / 1_000.0
    );
    println!(
        "jobs      {:.1} jobs/s done · {:.1}/s submitted · {:.1}/s failed · {:.1}/s rejected · {:.1}/s canceled",
        rate("sortd.jobs.done"),
        rate("sortd.jobs.submitted"),
        rate("sortd.jobs.failed"),
        rate("sortd.jobs.rejected"),
        rate("sortd.jobs.canceled"),
    );
    println!(
        "admission {:.1}/s bypasses · {:.1}/s aged barriers · queue {}/{} · running {} · draining {}",
        rate("sortd.admission.bypasses"),
        rate("sortd.admission.aged_barriers"),
        gauge("sortd.queue.depth"),
        gauge("sortd.queue.bound"),
        gauge("sortd.running"),
        if gauge("sortd.draining") != 0 { "yes" } else { "no" },
    );
    // Durability counters are lifetime totals, not rates: recovery happens
    // once at startup and deadline kills are rare, so totals read better.
    let total = |name: &str| cur.counters.get(name).copied().unwrap_or(0);
    println!(
        "recovery  {} jobs recovered · {} runs reattached · {} re-formed · {} scratch disposed · {} deadline kills · {} duplicates answered",
        total("sortd.recovery.jobs_recovered"),
        total("sortd.recovery.runs_recovered"),
        total("sortd.recovery.runs_reformed"),
        total("sortd.recovery.scratch_disposed"),
        total("sortd.deadline.kills"),
        total("sortd.jobs.duplicates"),
    );
    println!(
        "pool      mem {:.1}/{:.1} MB ({:.0}%) · scratch {:.1}/{:.1} MB ({:.0}%)",
        mb(gauge("sortd.pool.mem_in_use")),
        mb(gauge("sortd.pool.mem_total")),
        pct_of(gauge("sortd.pool.mem_in_use"), gauge("sortd.pool.mem_total")),
        mb(gauge("sortd.pool.scratch_in_use")),
        mb(gauge("sortd.pool.scratch_total")),
        pct_of(gauge("sortd.pool.scratch_in_use"), gauge("sortd.pool.scratch_total")),
    );
    // Interval quantiles: only jobs finished this interval. A quiet
    // interval has no samples, so show dashes rather than stale numbers.
    let q = |h: Option<&obs::Histogram>, p: f64| h.and_then(|h| h.quantile(p));
    let fmt_q = |v: Option<f64>| match v {
        Some(us) => format!("{us:.0} µs"),
        None => "-".to_string(),
    };
    let e2e = delta.histograms.get("sortd.e2e_us");
    let exec = delta.histograms.get("sortd.exec_us");
    let wait = delta.histograms.get("sortd.queue_wait_us");
    println!(
        "latency   e2e p50 {} · p99 {} · exec p50 {} · queue-wait p99 {} ({} jobs this interval)",
        fmt_q(q(e2e, 0.50)),
        fmt_q(q(e2e, 0.99)),
        fmt_q(q(exec, 0.50)),
        fmt_q(q(wait, 0.99)),
        e2e.map(|h| h.count()).unwrap_or(0),
    );
}

fn cmd_status(flags: &Flags) -> Result<ExitCode, ExitCode> {
    let job = flags.num("--job", u64::MAX)?;
    if job == u64::MAX {
        eprintln!("--job is required");
        return Err(usage());
    }
    let doc = Client::new(flags.addr()?).status(job).map_err(|e| {
        eprintln!("status failed: {e}");
        ExitCode::FAILURE
    })?;
    println!("{}", doc.dump_pretty());
    Ok(ExitCode::SUCCESS)
}

fn cmd_cancel(flags: &Flags) -> Result<ExitCode, ExitCode> {
    let job = flags.num("--job", u64::MAX)?;
    if job == u64::MAX {
        eprintln!("--job is required");
        return Err(usage());
    }
    let hit = Client::new(flags.addr()?).cancel(job).map_err(|e| {
        eprintln!("cancel failed: {e}");
        ExitCode::FAILURE
    })?;
    if hit {
        eprintln!("job {job} canceled");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("job {job} was not queued (already running, done, or unknown)");
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_drain(flags: &Flags) -> Result<ExitCode, ExitCode> {
    let doc = Client::new(flags.addr()?)
        .with_timeout(Duration::from_secs(600))
        .drain()
        .map_err(|e| {
            eprintln!("drain failed: {e}");
            ExitCode::FAILURE
        })?;
    println!("{}", doc.dump());
    Ok(ExitCode::SUCCESS)
}
