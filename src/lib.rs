//! Umbrella crate for the AlphaSort reproduction suite.
//!
//! Re-exports the workspace crates under stable module names so examples and
//! integration tests can use one dependency:
//!
//! * [`dmgen`] — Datamation workload generator & validator
//! * [`iosim`] — simulated disks, controllers, async IO engine
//! * [`stripefs`] — software file striping layer
//! * [`cachesim`] — trace-driven cache hierarchy simulator
//! * [`sort`] — the AlphaSort algorithms and external-sort drivers
//! * [`perfmodel`] — 1993 price catalog, analytic phase model, metrics
//! * [`netsort`] — distributed shared-nothing sort over the local pipeline
//! * [`obs`] — tracing + metrics (spans, Figure 7 report, Chrome traces)
//! * [`sortd`] — sort-as-a-service daemon: job manifests, admission control

pub use alphasort_cachesim as cachesim;
pub use alphasort_core as sort;
pub use alphasort_dmgen as dmgen;
pub use alphasort_iosim as iosim;
pub use alphasort_netsort as netsort;
pub use alphasort_obs as obs;
pub use alphasort_perfmodel as perfmodel;
pub use alphasort_sortd as sortd;
pub use alphasort_stripefs as stripefs;
