//! File striping in action (§6, Figure 5): bandwidth vs. stripe width.
//!
//! Builds arrays of real-time-paced simulated SCSI disks and measures the
//! wall-clock sequential read rate through the striping layer at widths
//! 1, 2, 4, 8 — near-linear scaling, like the paper's measurements, until
//! a controller saturates.
//!
//! ```sh
//! cargo run --release --example striping_demo
//! ```

use std::sync::Arc;
use std::time::Instant;

use alphasort_suite::iosim::{catalog, DiskSpec, IoEngine, MemStorage, Pacing, SimDisk};
use alphasort_suite::perfmodel::table::Table;
use alphasort_suite::stripefs::{StripedReader, StripedWriter, Volume};

/// A sped-up RZ26 so the demo takes seconds, not minutes: ×20 wall-clock,
/// every ratio preserved.
const SPEEDUP: f64 = 20.0;

fn measure(width: usize, megabytes: usize) -> f64 {
    let spec: DiskSpec = catalog::rz26();
    let disks: Vec<_> = (0..width)
        .map(|i| {
            SimDisk::new(
                format!("rz26-{i}"),
                spec.clone(),
                Arc::new(MemStorage::new()),
                Pacing::RealTime { speedup: SPEEDUP },
                None,
            )
        })
        .collect();
    let volume = Volume::new(Arc::new(IoEngine::new(disks)));
    let bytes = megabytes * 1_000_000;
    let file = Arc::new(volume.create_across_all("data", 64 * 1024, bytes as u64));

    // Load (paced too, but we only time the read).
    let mut w = StripedWriter::new(Arc::clone(&file));
    let chunk = vec![0xA5u8; 1 << 20];
    let mut left = bytes;
    while left > 0 {
        let n = left.min(chunk.len());
        w.push(&chunk[..n]).expect("write");
        left -= n;
    }
    w.finish().expect("write");

    // Timed, triple-buffered sequential read.
    let t0 = Instant::now();
    let mut r = StripedReader::new(file);
    let mut total = 0usize;
    while let Some(s) = r.next_stride() {
        total += s.expect("read").len();
    }
    assert_eq!(total, bytes);
    // Report at 1993 scale (divide measured rate by the speedup).
    total as f64 / 1e6 / t0.elapsed().as_secs_f64() / SPEEDUP
}

fn main() {
    println!(
        "Striped read bandwidth over simulated RZ26 drives ({} MB/s each)\n",
        catalog::rz26().read_mbps
    );
    let per_disk = catalog::rz26().read_mbps;
    let mut table = Table::new(["width", "MB/s (1993 scale)", "ideal", "efficiency"]);
    for width in [1usize, 2, 4, 8] {
        let mbps = measure(width, 2 * width.max(2));
        let ideal = per_disk * width as f64;
        table.row([
            width.to_string(),
            format!("{mbps:.2}"),
            format!("{ideal:.1}"),
            format!("{:.0}%", mbps / ideal * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nThe paper: \"The file striping code bandwidth is near-linear as the\n\
         array grows to nine controllers and thirty-six disks.\""
    );
}
