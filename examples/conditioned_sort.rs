//! Industrial-strength sorting with key conditioning (§4).
//!
//! The benchmark's keys are plain bytes, but real sorts face floats, signed
//! integers and odd collations. The paper: "Key conditioning extracts the
//! sort key from each record, transforms the result to allow efficient byte
//! compares, and stores it with the record as an added field." This example
//! sorts a table of (department, salary) rows by `department ASC, salary
//! DESC` through the unmodified AlphaSort pipeline, by conditioning the
//! composite key into the record's 10 key bytes.
//!
//! ```sh
//! cargo run --release --example conditioned_sort
//! ```

use alphasort_suite::dmgen::{Record, KEY_LEN};
use alphasort_suite::sort::condition::{composite, KeyCondition};
use alphasort_suite::sort::runform::{form_run, Representation};

#[derive(Clone, Debug)]
struct Employee {
    name: &'static str,
    dept: i64,
    salary: f64,
}

fn main() {
    let employees = [
        Employee {
            name: "ada",
            dept: 2,
            salary: 120_000.0,
        },
        Employee {
            name: "grace",
            dept: 1,
            salary: 95_000.0,
        },
        Employee {
            name: "edsger",
            dept: 1,
            salary: 110_000.0,
        },
        Employee {
            name: "barbara",
            dept: 2,
            salary: 130_000.0,
        },
        Employee {
            name: "donald",
            dept: 1,
            salary: 110_000.0,
        },
        Employee {
            name: "tony",
            dept: 3,
            salary: -50.0,
        }, // owes the company
        Employee {
            name: "alan",
            dept: 3,
            salary: 0.0,
        },
    ];
    let employees = employees.to_vec();

    // Condition (dept ASC, salary DESC) into the record's 10 key bytes.
    // The full-width composite is 16 bytes, so pack it: departments fit in
    // 2 bytes, leaving all 8 salary bytes — conditioning is also about
    // *budgeting* discriminating bytes (§4's "where the prefix is a good
    // discriminator of the keys").
    use alphasort_suite::sort::condition::{Descending, I64Condition};
    let condition_key = |e: &Employee| -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        key[..2].copy_from_slice(&((e.dept as u16) ^ 0x8000).to_be_bytes());
        let mut sal = [0u8; 8];
        Descending::<I64Condition>::condition(&(e.salary.round() as i64), &mut sal);
        key[2..].copy_from_slice(&sal);
        key
    };
    println!("conditioned key: dept (2 B, sign-biased) + salary (8 B, descending)\n");

    // Build benchmark-shaped records: conditioned key + row id in payload.
    let mut buf = Vec::new();
    for (i, e) in employees.iter().enumerate() {
        buf.extend_from_slice(Record::with_key(condition_key(e), i as u64).as_bytes());
    }

    // Sort with the standard key-prefix pipeline — the conditioned bytes
    // need no special handling.
    let run = form_run(buf, Representation::KeyPrefix);
    println!("{:<10} {:>5} {:>10}", "name", "dept", "salary");
    println!("{}", "-".repeat(28));
    for rec in run.iter_sorted() {
        let e = &employees[rec.seq() as usize];
        println!("{:<10} {:>5} {:>10.0}", e.name, e.dept, e.salary);
    }

    // The runtime composite builder handles the full-width case (no
    // truncation): its byte order is the row order directly.
    let conditioner = composite::<Employee>()
        .asc_i64(|e| e.dept)
        .desc_i64(|e| e.salary.round() as i64);
    let mut by_composite: Vec<&Employee> = employees.iter().collect();
    by_composite.sort_by_key(|e| conditioner.condition(e));
    let by_record: Vec<&str> = run
        .iter_sorted()
        .map(|r| employees[r.seq() as usize].name)
        .collect();
    let by_comp: Vec<&str> = by_composite.iter().map(|e| e.name).collect();
    assert_eq!(by_record, by_comp, "packed key and composite disagree");
    println!("\n16-byte composite conditioner agrees with the packed 10-byte key ✓");

    // Show the single-type conditioners too: floats with negatives and
    // special values sort correctly as bytes.
    let mut values: Vec<f64> = vec![
        3.5,
        -2.0,
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1e-300,
    ];
    let mut keyed: Vec<([u8; 8], f64)> = values
        .iter()
        .map(|v| {
            let mut k = [0u8; 8];
            alphasort_suite::sort::condition::F64Condition::condition(v, &mut k);
            (k, *v)
        })
        .collect();
    keyed.sort_by_key(|a| a.0);
    values.sort_by(|a, b| a.total_cmp(b));
    let byte_order: Vec<f64> = keyed.into_iter().map(|(_, v)| v).collect();
    assert_eq!(
        byte_order.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    println!("\nf64 conditioning: byte order == IEEE total order ✓ {byte_order:?}");
}
