//! A bigger-than-memory sort: planner, two passes, cascade merge, and
//! scratch-extent recycling on a simulated disk array.
//!
//! §6's regime flipped around: here memory is scarce, so the sort *must*
//! spill. The planner sizes the runs and fan-in from the budget; the driver
//! spills QuickSorted runs to striped scratch, cascades if the fan-in
//! binds, and merges back out — while the volume recycles each consumed
//! cascade level's extents.
//!
//! ```sh
//! cargo run --release --example bigsort [records] [memory_budget_bytes]
//! ```

use std::sync::Arc;

use alphasort_suite::dmgen::{validate_reader, GenConfig, Generator, RECORD_LEN};
use alphasort_suite::iosim::{catalog, BackendKind, DiskArrayBuilder, IoEngine, Pacing};
use alphasort_suite::sort::driver::{two_pass, StripeScratch};
use alphasort_suite::sort::io::{StripeSink, StripeSource};
use alphasort_suite::sort::planner::Planner;
use alphasort_suite::sort::SortConfig;
use alphasort_suite::stripefs::{StripedReader, StripedWriter, Volume};

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let budget: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4 << 20); // 4 MB: a 50 MB sort must spill hard
    let bytes = records * RECORD_LEN as u64;

    println!(
        "bigsort: {:.0} MB of records against a {:.1} MB memory budget",
        bytes as f64 / 1e6,
        budget as f64 / 1e6
    );

    // Plan from the budget.
    let planner = Planner::new(budget);
    let plan = planner.two_pass_plan(bytes);
    println!(
        "plan: runs of {} records → {} runs, fan-in {}, {} cascade pass(es), \
         {}x one-pass disk traffic\n",
        plan.run_records,
        plan.expected_runs,
        plan.max_fanin,
        plan.merge_passes,
        plan.bandwidth_multiplier()
    );

    // An 8-disk RZ28 array.
    let array = {
        let mut b = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory);
        for _ in 0..2 {
            b = b.controller(catalog::fast_scsi_controller(), catalog::rz28(), 4);
        }
        b.build().expect("array")
    };
    let engine = Arc::new(IoEngine::new(array.disks().to_vec()));
    let volume = Arc::new(Volume::new(Arc::clone(&engine)));

    // Load the input.
    let input = Arc::new(volume.create_across_all("input", 64 * 1024, bytes));
    let mut gen = Generator::new(GenConfig::datamation(records, 7));
    let mut w = StripedWriter::new(Arc::clone(&input));
    let mut buf = vec![0u8; 10_000 * RECORD_LEN];
    loop {
        let n = gen.fill(&mut buf);
        if n == 0 {
            break;
        }
        w.push(&buf[..n]).expect("load");
    }
    w.finish().expect("load");
    array.reset_stats();

    // Sort with the planned knobs.
    let output = Arc::new(volume.create_across_all("output", 64 * 1024, bytes));
    let mut scratch = StripeScratch::new(Arc::clone(&volume), 64 * RECORD_LEN as u64);
    let cfg = SortConfig {
        run_records: plan.run_records,
        gather_batch: 2_000,
        workers: 2,
        max_fanin: plan.max_fanin,
        memory_budget: budget,
        ..Default::default()
    };
    let mut source = StripeSource::new(Arc::clone(&input));
    let mut sink = StripeSink::new(Arc::clone(&output));
    let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).expect("sort");
    let st = &outcome.stats;
    let io = array.stats();

    println!(
        "executed: {} runs, {} cascade pass(es)",
        st.runs, st.merge_passes
    );
    println!(
        "host wall {:.2} s; spill {:.2} s; merge {:.2} s",
        st.elapsed.as_secs_f64(),
        st.spill_time.as_secs_f64(),
        st.merge_time.as_secs_f64()
    );
    println!(
        "disks moved {:.0} MB ({}x the data) — §6's bandwidth cost, measured",
        (io.bytes_read + io.bytes_written) as f64 / 1e6,
        (io.bytes_read + io.bytes_written) / bytes.max(1)
    );
    let high_water: u64 = engine.disks().iter().map(|d| d.len()).sum();
    println!(
        "disk high-water {:.0} MB for {:.0} MB of data (scratch recycled across levels)",
        high_water as f64 / 1e6,
        bytes as f64 / 1e6
    );

    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, gen.checksum())
        .expect("read back")
        .expect("output invalid");
    println!(
        "\nvalidated {} records: sorted permutation ✓",
        report.records
    );
}
