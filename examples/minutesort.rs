//! MinuteSort (§8): sort as much as you can in one minute.
//!
//! Runs ever-larger sorts on the host until one exceeds the time budget,
//! then scores the largest fitting run with the paper's metrics: minute
//! cost = system price / 10⁶, price-performance = $/sorted GB.
//!
//! ```sh
//! cargo run --release --example minutesort [budget_seconds]
//! ```
//!
//! The default budget is 10 s (a scaled minute) so the example stays quick;
//! pass 60 for the real thing.

use std::time::Instant;

use alphasort_suite::dmgen::{generate, validate_records, GenConfig};
use alphasort_suite::perfmodel::machines::minutesort_machine;
use alphasort_suite::perfmodel::metrics::minutesort;
use alphasort_suite::sort::driver::one_pass;
use alphasort_suite::sort::io::{MemSink, MemSource};
use alphasort_suite::sort::SortConfig;

fn sort_once(records: u64, workers: usize) -> (f64, u64) {
    let (input, cs) = generate(GenConfig::datamation(records, 8));
    let bytes = input.len() as u64;
    let cfg = SortConfig {
        run_records: 250_000,
        workers,
        gather_batch: 20_000,
        ..Default::default()
    };
    let mut source = MemSource::new(input, 4 << 20);
    let mut sink = MemSink::new();
    let t0 = Instant::now();
    let outcome = one_pass(&mut source, &mut sink, &cfg).expect("sort");
    let dt = t0.elapsed().as_secs_f64();
    validate_records(sink.data(), cs).expect("invalid output");
    assert_eq!(outcome.stats.records, records);
    (dt, bytes)
}

fn main() {
    let budget: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(1);

    println!("MinuteSort with a {budget:.0}-second budget, {workers} workers");

    // Grow until the budget is exceeded; keep the largest fitting run.
    let mut records: u64 = 200_000;
    let mut best: Option<(u64, f64, u64)> = None;
    loop {
        let (dt, bytes) = sort_once(records, workers);
        println!(
            "  {:>12} records: {:.2} s ({:.0} MB/s)",
            records,
            dt,
            bytes as f64 / 1e6 / dt
        );
        if dt <= budget {
            best = Some((records, dt, bytes));
            records *= 2;
            if records > 200_000_000 {
                break;
            }
        } else {
            break;
        }
    }

    let Some((records, dt, bytes)) = best else {
        println!("even the smallest run blew the budget");
        return;
    };
    // Scale to a full minute for the headline number.
    let per_minute = bytes as f64 * (60.0 / dt.max(1e-9));

    let m = minutesort_machine();
    let ours = minutesort(m.system_price, per_minute as u64);
    let paper = minutesort(m.system_price, 1_080_000_000);

    println!("\nbest in budget: {records} records in {dt:.2} s");
    println!(
        "extrapolated MinuteSort size: {:.2} GB/minute",
        per_minute / 1e9
    );
    println!(
        "at the paper's 512k$ system price: {:.2}$ per minute, {:.2}$/GB",
        ours.minute_cost, ours.dollars_per_gb
    );
    println!(
        "paper's 1993 result: {:.2} GB/minute at {:.2}$/GB",
        paper.sorted_gb, paper.dollars_per_gb
    );
}
