//! The Datamation benchmark, disk-to-disk, on a simulated 1993 disk array.
//!
//! Reproduces the setup of §7: input and output files striped across the
//! array, asynchronous triple-buffered IO, QuickSort overlapped with input,
//! merge+gather overlapped with output. Disks are modeled (not paced), so
//! the run finishes at host speed while the *modeled* elapsed time reports
//! what the 1993 array would have taken.
//!
//! ```sh
//! cargo run --release --example datamation [records] [disks]
//! ```

use std::sync::Arc;

use alphasort_suite::dmgen::{validate_reader, GenConfig, Generator, RECORD_LEN};
use alphasort_suite::iosim::{catalog, BackendKind, DiskArrayBuilder, IoEngine, Pacing};
use alphasort_suite::sort::driver::one_pass;
use alphasort_suite::sort::io::{StripeSink, StripeSource};
use alphasort_suite::sort::SortConfig;
use alphasort_suite::stripefs::{StripedReader, StripedWriter, Volume};

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let disks: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let bytes = records * RECORD_LEN as u64;

    println!(
        "Datamation: {records} records ({:.0} MB) across {disks} simulated RZ26 disks",
        bytes as f64 / 1e6
    );

    // Build the array: RZ26 drives, 4 per SCSI controller (the many-slow
    // recipe of Table 6), scaled to the requested width.
    let mut builder = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory);
    let mut left = disks;
    while left > 0 {
        let n = left.min(4);
        builder = builder.controller(catalog::scsi_controller(), catalog::rz26(), n);
        left -= n;
    }
    let array = builder.build().expect("array");
    let engine = Arc::new(IoEngine::new(array.disks().to_vec()));
    let volume = Volume::new(Arc::clone(&engine));

    // Load the input file, striped, through the write path (64 KB strides:
    // the paper's stride size).
    let chunk = 64 * 1024;
    let input = Arc::new(volume.create_across_all("input", chunk, bytes));
    let mut gen = Generator::new(GenConfig::datamation(records, 1994));
    let mut w = StripedWriter::new(Arc::clone(&input));
    let mut buf = vec![0u8; 10_000 * RECORD_LEN];
    loop {
        let n = gen.fill(&mut buf);
        if n == 0 {
            break;
        }
        w.push(&buf[..n]).expect("load input");
    }
    w.finish().expect("load input");
    let checksum = gen.checksum();
    array.reset_stats();

    // The sort: striped source → AlphaSort → striped sink.
    let output = Arc::new(volume.create_across_all("output", chunk, bytes));
    let cfg = SortConfig {
        run_records: 100_000,
        workers: 2,
        gather_batch: 10_000,
        ..Default::default()
    };
    let mut source = StripeSource::new(Arc::clone(&input));
    let mut sink = StripeSink::new(Arc::clone(&output));
    let outcome = one_pass(&mut source, &mut sink, &cfg).expect("sort");

    let st = &outcome.stats;
    let io = array.stats();
    println!("\n--- where the time went (host wall clock) ---");
    println!("read wait   {:>8.3} s", st.read_wait.as_secs_f64());
    println!(
        "quicksort   {:>8.3} s  ({} runs)",
        st.sort_time.as_secs_f64(),
        st.runs
    );
    println!("merge       {:>8.3} s", st.merge_time.as_secs_f64());
    println!("gather      {:>8.3} s", st.gather_time.as_secs_f64());
    println!("write wait  {:>8.3} s", st.write_wait.as_secs_f64());
    println!("total       {:>8.3} s", st.elapsed.as_secs_f64());
    println!("\n--- modeled 1993 array ---");
    println!(
        "array moved {:.0} MB, modeled elapsed {:.1} s at {:.1} MB/s aggregate",
        (io.bytes_read + io.bytes_written) as f64 / 1e6,
        io.modeled_elapsed().as_secs_f64(),
        io.modeled_bandwidth_mbps()
    );

    // Validate disk-to-disk.
    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, checksum)
        .expect("read back")
        .expect("output invalid");
    println!(
        "\nvalidated {} records: sorted permutation ✓",
        report.records
    );
}
