//! Explore the cache behaviour behind AlphaSort's design (§4, Figure 4).
//!
//! Replays the sort kernels against the simulated Alpha AXP hierarchy
//! (8 KB direct-mapped D-cache, 4 MB B-cache, 32-entry TLB) and prints
//! misses per record for:
//!
//! * the four QuickSort representations (record / pointer / key / prefix),
//! * replacement-selection with naive vs. clustered tournament layouts,
//! * the merge-phase gather.
//!
//! ```sh
//! cargo run --release --example cache_explorer [records]
//! ```

use alphasort_suite::cachesim::{
    traced_gather, traced_merge, traced_quicksort, traced_tournament_sort, Hierarchy,
    QuickSortVariant, TournamentLayout,
};
use alphasort_suite::perfmodel::table::Table;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    println!("Traced kernels over {n} records, Alpha AXP hierarchy\n");
    let mut table = Table::new(["kernel", "D-miss/rec", "B-miss/rec", "TLB-miss/rec"]);

    for v in QuickSortVariant::ALL {
        let mut mem = Hierarchy::alpha_axp();
        let r = traced_quicksort(n, 7, v, &mut mem);
        table.row([
            r.label.clone(),
            format!("{:.2}", r.d_misses_per_elem()),
            format!("{:.3}", r.b_misses_per_elem()),
            format!("{:.3}", r.tlb_misses_per_elem()),
        ]);
    }
    let tournament_slots = (n / 2).next_power_of_two().max(1_024);
    for layout in [TournamentLayout::Naive, TournamentLayout::Clustered] {
        for record_traffic in [true, false] {
            let mut mem = Hierarchy::alpha_axp();
            let r =
                traced_tournament_sort(n, tournament_slots, 7, layout, record_traffic, &mut mem);
            table.row([
                format!(
                    "{}{}",
                    r.label,
                    if record_traffic { "" } else { " (tree only)" }
                ),
                format!("{:.2}", r.d_misses_per_elem()),
                format!("{:.3}", r.b_misses_per_elem()),
                format!("{:.3}", r.tlb_misses_per_elem()),
            ]);
        }
    }
    {
        let mut mem = Hierarchy::alpha_axp();
        let r = traced_merge(n, 10, 7, &mut mem);
        table.row([
            r.label.clone(),
            format!("{:.2}", r.d_misses_per_elem()),
            format!("{:.3}", r.b_misses_per_elem()),
            format!("{:.3}", r.tlb_misses_per_elem()),
        ]);
    }
    {
        let mut mem = Hierarchy::alpha_axp();
        let r = traced_gather(n, 7, &mut mem);
        table.row([
            r.label.clone(),
            format!("{:.2}", r.d_misses_per_elem()),
            format!("{:.3}", r.b_misses_per_elem()),
            format!("{:.3}", r.tlb_misses_per_elem()),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nReadings: the key-prefix QuickSort misses least (its inner loop\n\
         lives in the on-chip cache); the tournament thrashes the D-cache\n\
         (Figure 4); clustering parent/child nodes into one line recovers\n\
         part of it (§4); and the gather pays ~4 line misses plus a TLB\n\
         miss per record — the paper's \"terrible cache and TLB behavior\"."
    );
}
