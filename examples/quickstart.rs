//! Quickstart: generate a Datamation-style dataset, sort it with AlphaSort,
//! and verify the output is a sorted permutation of the input.
//!
//! ```sh
//! cargo run --release --example quickstart [records]
//! ```

use alphasort_suite::dmgen::{generate, validate_records, GenConfig};
use alphasort_suite::sort::driver::one_pass;
use alphasort_suite::sort::io::{MemSink, MemSource};
use alphasort_suite::sort::{Representation, SortConfig};

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    println!("AlphaSort quickstart: {records} records of 100 bytes");

    // 1. Generate the benchmark input (10-byte random keys, incompressible
    //    payload) and remember its fingerprint.
    let (input, checksum) = generate(GenConfig::datamation(records, 42));
    println!("generated {:.1} MB of input", input.len() as f64 / 1e6);

    // 2. Sort: QuickSort (key-prefix, pointer) runs as data arrives, then a
    //    tournament merge + gather — the heart of the paper.
    let cfg = SortConfig {
        run_records: 100_000,                      // the paper's run size
        representation: Representation::KeyPrefix, // AlphaSort's choice
        workers: 2,                                // sort/gather chores
        gather_batch: 10_000,
        ..Default::default()
    };
    let mut source = MemSource::new(input, 1 << 20);
    let mut sink = MemSink::new();
    let outcome = one_pass(&mut source, &mut sink, &cfg).expect("sort failed");

    let st = &outcome.stats;
    println!(
        "sorted in {:.3} s ({:.1} MB/s): {} runs, quicksort {:.3} s, \
         merge {:.3} s, gather {:.3} s",
        st.elapsed.as_secs_f64(),
        st.throughput_mbps(),
        st.runs,
        st.sort_time.as_secs_f64(),
        st.merge_time.as_secs_f64(),
        st.gather_time.as_secs_f64(),
    );

    // 3. Verify: the output must be a key-ascending permutation of the input.
    let report = validate_records(sink.data(), checksum).expect("invalid output");
    println!(
        "validated: {} records in key order, permutation intact ✓",
        report.records
    );
}
