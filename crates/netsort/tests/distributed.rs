//! Workspace integration tests for the distributed sort: the distributed
//! output must be byte-identical to the single-node pipeline's, over both
//! transports, for arbitrary cluster shapes and key skews — and a
//! connection cut mid-exchange must fail cleanly, not hang or corrupt.

use std::io;

use alphasort_core::driver::one_pass;
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::SortConfig;
use alphasort_dmgen::{
    generate, validate_records, GenConfig, KeyDistribution, SplitMix64, RECORD_LEN,
};
use alphasort_netsort::{
    bind_cluster, netsort_loopback, netsort_tcp, run_worker, Frame, NetsortConfig, RetryPolicy,
    TcpTransport, Transport,
};

/// The single-node reference: the ordinary one-pass pipeline's exact bytes.
fn reference_sort(input: &[u8]) -> Vec<u8> {
    let mut source = MemSource::new(input.to_vec(), 1 << 20);
    let mut sink = MemSink::new();
    let cfg = SortConfig {
        run_records: 10_000,
        gather_batch: 1_000,
        ..Default::default()
    };
    one_pass(&mut source, &mut sink, &cfg).unwrap();
    sink.into_inner()
}

fn small_sort_cfg(r: &mut SplitMix64) -> SortConfig {
    SortConfig {
        run_records: 1 + r.next_below(2_000) as usize,
        gather_batch: 1 + r.next_below(500) as usize,
        workers: r.next_below(3) as usize,
        ..Default::default()
    }
}

/// Property: for random record counts, node counts 1–8 and skewed key
/// distributions, the distributed output is byte-identical to the
/// single-node one-pass output (both are stable sorts of the same input,
/// so full byte equality — not just a valid permutation — must hold).
#[test]
fn distributed_output_is_byte_identical_to_single_node() {
    let mut r = SplitMix64::new(0xD157);
    for case in 0..24 {
        let n = r.next_below(8_000);
        let dist = match r.next_below(4) {
            0 => KeyDistribution::Random,
            1 => KeyDistribution::DupHeavy {
                cardinality: 1 + r.next_below(7) as u32,
            },
            2 => KeyDistribution::CommonPrefix {
                shared: r.next_below(9) as u8,
            },
            _ => KeyDistribution::NearlySorted {
                permille: r.next_below(1001) as u16,
            },
        };
        let nodes = 1 + r.next_below(8) as usize;
        let (input, cs) = generate(GenConfig {
            records: n,
            seed: r.next_u64(),
            dist,
        });
        let cfg = NetsortConfig {
            samples_per_node: 1 + r.next_below(256) as usize,
            batch_records: 1 + r.next_below(640) as usize,
            sort: small_sort_cfg(&mut r),
            ..Default::default()
        };
        let (output, stats) = netsort_loopback(&input, nodes, &cfg).unwrap();
        assert_eq!(
            output,
            reference_sort(&input),
            "case {case}: nodes={nodes} n={n} dist={dist:?}"
        );
        validate_records(&output, cs).unwrap();
        assert_eq!(stats.records, n, "case {case}");
        assert_eq!(stats.partition_sizes.len(), nodes, "case {case}");
    }
}

/// Acceptance shape: 100k Datamation records across 4 in-process workers.
#[test]
fn hundred_k_records_across_four_workers() {
    let n = 100_000u64;
    let (input, cs) = generate(GenConfig::datamation(n, 0xACCE97));
    let cfg = NetsortConfig {
        sort: SortConfig {
            run_records: 10_000,
            gather_batch: 1_000,
            workers: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let (output, stats) = netsort_loopback(&input, 4, &cfg).unwrap();
    assert_eq!(output, reference_sort(&input));
    let report = validate_records(&output, cs).unwrap();
    assert_eq!(report.records, n);
    assert_eq!(stats.partition_sizes.iter().sum::<u64>(), n);
    // Random keys + probabilistic splitting: partitions roughly balance.
    assert!(
        stats.exchange_skew() < 1.5,
        "skew {}",
        stats.exchange_skew()
    );
    // ~3/4 of all records cross the interconnect on 4 nodes.
    assert!(stats.exchange_bytes_out > n * RECORD_LEN as u64 / 2);
}

/// A dup-heavy distribution must stay correct even though the splitters
/// cannot balance it (all ties route to one node).
#[test]
fn skewed_distribution_is_correct_but_unbalanced() {
    let (input, cs) = generate(GenConfig {
        records: 20_000,
        seed: 5,
        dist: KeyDistribution::DupHeavy { cardinality: 2 },
    });
    let (output, stats) = netsort_loopback(&input, 8, &NetsortConfig::default()).unwrap();
    validate_records(&output, cs).unwrap();
    assert_eq!(output, reference_sort(&input));
    // Two distinct keys over 8 nodes: some node owns ≥ 4× its fair share.
    assert!(
        stats.exchange_skew() > 3.0,
        "skew {}",
        stats.exchange_skew()
    );
}

/// Two real-socket workers: same byte-identical contract over TCP.
#[test]
fn tcp_loopback_two_workers_match_single_node() {
    let n = 100_000u64;
    let (input, cs) = generate(GenConfig::datamation(n, 0x7C9));
    let cfg = NetsortConfig {
        sort: SortConfig {
            run_records: 10_000,
            gather_batch: 1_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let (output, stats) = netsort_tcp(&input, 2, &cfg, &RetryPolicy::default()).unwrap();
    assert_eq!(output, reference_sort(&input));
    let report = validate_records(&output, cs).unwrap();
    assert_eq!(report.records, n);
    assert_eq!(stats.partition_sizes.len(), 2);
    assert!(stats.exchange_bytes_out > 0);
    assert_eq!(stats.exchange_bytes_out, stats.exchange_bytes_in);
}

/// Kill one TCP connection mid-exchange: the surviving worker must fail
/// with a clean connection error (never hang, never emit bad output).
/// Whether the cut surfaces on the receive side (`ConnectionAborted` from
/// the reader seeing EOF-without-Bye) or the send side (`BrokenPipe`/
/// `ConnectionReset` writing into the dead socket) depends on timing; both
/// are prompt, correctly attributed failures.
#[test]
fn connection_cut_mid_exchange_fails_cleanly() {
    let (listeners, addrs) = bind_cluster(2).unwrap();
    let mut listeners = listeners.into_iter();
    let l0 = listeners.next().unwrap();
    let l1 = listeners.next().unwrap();
    let policy = RetryPolicy::default();

    // Node 1 is sabotaged: it plays the protocol up to the exchange, ships
    // one data frame, then vanishes without Done or Bye.
    let addrs1 = addrs.clone();
    let p1 = policy.clone();
    let saboteur = std::thread::spawn(move || {
        let mut t = TcpTransport::establish(1, l1, &addrs1, &p1).unwrap();
        t.send(
            0,
            Frame::Sample {
                from: 1,
                keys: vec![0x42; 10],
            },
        )
        .unwrap();
        // Wait for the splitters so node 0 is definitely mid-exchange.
        match t.recv().unwrap() {
            Frame::Splitters { .. } => {}
            other => panic!("expected splitters, got {other:?}"),
        }
        t.send(
            0,
            Frame::Data {
                from: 1,
                records: vec![0u8; RECORD_LEN],
            },
        )
        .unwrap();
        t.kill_connection(0);
        // Dropping the transport without `Bye` on the listener side too.
    });

    let (input, _) = generate(GenConfig::datamation(5_000, 9));
    let mut transport = TcpTransport::establish(0, l0, &addrs, &policy).unwrap();
    let mut source = MemSource::new(input, 1 << 20);
    let mut sink = MemSink::new();
    let err = run_worker(
        &mut transport,
        &mut source,
        &mut sink,
        &NetsortConfig::default(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err.kind(),
            io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionReset
        ),
        "{err}"
    );
    saboteur.join().unwrap();
}
