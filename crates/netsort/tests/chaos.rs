//! Chaos matrix for the distributed sort: 2/4-node clusters, loopback and
//! TCP transports, one fault class per test. Every case must end in one of
//! exactly two ways — a correct sorted output, or a prompt and correctly
//! attributed error on every node. Never a hang (each cluster runs under a
//! watchdog), never silently mis-sorted output.
//!
//! Fault injection comes from two layers: [`FaultyTransport`] wraps any
//! transport with a [`NetFaultPlan`] (drop/delay/corrupt/crash the N-th
//! frame, mirroring iosim's `FaultPlan` builder), and
//! `TcpTransport::kill_connection` cuts a live socket mid-protocol.

use std::io;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::SortConfig;
use alphasort_dmgen::{generate, validate_records, GenConfig};
use alphasort_netsort::{
    bind_cluster, remote_abort_of, run_worker, split_shares, FaultyTransport, NetFaultPlan,
    NetsortConfig, RetryPolicy, TcpTransport, Transport,
};

/// Watchdog ceiling: no single chaos cluster may run longer than this.
const WATCHDOG: Duration = Duration::from_secs(20);

/// The deadline the faulty clusters run under; "prompt" in the assertions
/// below means within 2× this (the acceptance bound) plus scheduling slack.
const DEADLINE: Duration = Duration::from_millis(500);

fn chaos_cfg(recv_timeout: Option<Duration>) -> NetsortConfig {
    NetsortConfig {
        samples_per_node: 32,
        batch_records: 64,
        recv_timeout,
        sort: SortConfig {
            run_records: 500,
            gather_batch: 200,
            ..Default::default()
        },
    }
}

/// One node's fate after a chaos run.
struct NodeResult {
    node: usize,
    result: io::Result<Vec<u8>>,
    elapsed: Duration,
}

/// Run an N-node cluster where node `i` uses `transports[i]` (already
/// wrapped in whatever fault injection the case wants), under a watchdog:
/// a node that neither finishes nor errors within [`WATCHDOG`] fails the
/// test instead of hanging it.
fn run_cluster<T: Transport + 'static>(
    transports: Vec<T>,
    shares: Vec<Vec<u8>>,
    cfg: &NetsortConfig,
) -> Vec<NodeResult> {
    let (tx, rx) = mpsc::channel();
    for (node, (mut transport, share)) in transports.into_iter().zip(shares).enumerate() {
        let tx = tx.clone();
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut source = MemSource::new(share, 1 << 20);
            let mut sink = MemSink::new();
            let result =
                run_worker(&mut transport, &mut source, &mut sink, &cfg).map(|_| sink.into_inner());
            let _ = tx.send(NodeResult {
                node,
                result,
                elapsed: t0.elapsed(),
            });
        });
    }
    drop(tx);
    let mut results = Vec::new();
    let deadline = Instant::now() + WATCHDOG;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok(r) => results.push(r),
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let done: Vec<usize> = results.iter().map(|r| r.node).collect();
                panic!("cluster hung: only nodes {done:?} finished within {WATCHDOG:?}");
            }
        }
    }
    results.sort_by_key(|r| r.node);
    results
}

fn loopback_faulty(
    nodes: usize,
    mut plans: Vec<(usize, NetFaultPlan)>,
) -> Vec<FaultyTransport<alphasort_netsort::LoopbackTransport>> {
    alphasort_netsort::loopback_cluster(nodes)
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let plan = plans
                .iter()
                .position(|(n, _)| *n == i)
                .map(|at| plans.swap_remove(at).1)
                .unwrap_or_default();
            FaultyTransport::new(t, plan)
        })
        .collect()
}

fn tcp_cluster(nodes: usize) -> Vec<TcpTransport> {
    let (listeners, addrs) = bind_cluster(nodes).unwrap();
    let policy = RetryPolicy::default();
    std::thread::scope(|scope| {
        let addrs = &addrs;
        let policy = &policy;
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(node, l)| scope.spawn(move || TcpTransport::establish(node, l, addrs, policy)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect()
    })
}

/// Is `err` one of the clean teardown kinds the acceptance criteria allow?
fn is_clean_teardown(err: &io::Error) -> bool {
    remote_abort_of(err).is_some()
        || matches!(
            err.kind(),
            io::ErrorKind::TimedOut
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionReset
        )
}

fn assert_all_fail_promptly(results: &[NodeResult], survivors: &[usize]) {
    for r in results {
        if !survivors.contains(&r.node) {
            continue;
        }
        let err = match &r.result {
            Err(e) => e,
            Ok(_) => panic!("node {} must not succeed under this fault", r.node),
        };
        assert!(is_clean_teardown(err), "node {}: {err}", r.node);
        // Pre-exchange work (read/sample) runs before the deadline clock
        // can start; the bound is 2× the deadline plus that lead-in.
        assert!(
            r.elapsed < 2 * DEADLINE + Duration::from_secs(2),
            "node {} took {:?} to fail (deadline {DEADLINE:?})",
            r.node,
            r.elapsed
        );
    }
}

// ---------------------------------------------------------------------------
// Fault class: none (control) — both transports, both node counts.
// ---------------------------------------------------------------------------

#[test]
fn control_no_faults_sorts_correctly() {
    for nodes in [2usize, 4] {
        let (input, cs) = generate(GenConfig::datamation(2_000, 0xC0_u64 + nodes as u64));
        // Success-path cases use a generous deadline: they assert sorting,
        // not promptness, and must not flake under parallel test load.
        let results = run_cluster(
            loopback_faulty(nodes, Vec::new()),
            split_shares(&input, nodes),
            &chaos_cfg(Some(Duration::from_secs(10))),
        );
        let output: Vec<u8> = results
            .iter()
            .flat_map(|r| r.result.as_ref().unwrap().clone())
            .collect();
        validate_records(&output, cs).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Fault class: crashed node (TCP socket kill + loopback crash emulation).
// ---------------------------------------------------------------------------

/// Acceptance shape: a 4-node TCP cluster with one node killed mid-exchange
/// terminates on every surviving node within 2× the deadline — each with a
/// `TimedOut`/connection/`RemoteAbort` error, never a hang.
#[test]
fn tcp_node_killed_mid_exchange_fails_promptly_on_survivors() {
    for nodes in [2usize, 4] {
        let (input, _) = generate(GenConfig::datamation(2_000, 0xDEAD));
        // Node `nodes-1` crashes after its 2nd frame (Sample + one more):
        // mid-exchange, after splitters went out. On TCP its sockets stay
        // open (the process "hangs" rather than closing), so survivors hit
        // the deadline or an abort, not an EOF.
        let killer = nodes - 1;
        let transports: Vec<_> = tcp_cluster(nodes)
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let plan = if i == killer {
                    NetFaultPlan::new().kill_after_send(2)
                } else {
                    NetFaultPlan::new()
                };
                FaultyTransport::new(t, plan)
            })
            .collect();
        let survivors: Vec<usize> = (0..nodes).filter(|&i| i != killer).collect();
        let results = run_cluster(
            transports,
            split_shares(&input, nodes),
            &chaos_cfg(Some(DEADLINE)),
        );
        assert_all_fail_promptly(&results, &survivors);
        // The killed node itself reports its injected crash.
        assert!(results[killer].result.is_err());
    }
}

#[test]
fn tcp_connection_cut_by_kill_connection_fails_cleanly() {
    let nodes = 4;
    let (input, _) = generate(GenConfig::datamation(2_000, 0xC07));
    let mut transports = tcp_cluster(nodes);
    // Hard-cut node 3's link to node 0 before the protocol starts: node 0
    // never hears node 3's Sample on a live connection; the reader sees the
    // RST as ConnectionAborted, or the sample phase times out.
    assert!(transports[3].kill_connection(0));
    let results = run_cluster(
        transports,
        split_shares(&input, nodes),
        &chaos_cfg(Some(DEADLINE)),
    );
    // Node 3's own failure is a local send error (`NotConnected`); the
    // others must see a clean teardown: node 0 the EOF-without-Bye from the
    // cut socket, nodes 1 and 2 node 3's abort broadcast.
    assert!(results[3].result.is_err());
    assert_all_fail_promptly(&results, &[0, 1, 2]);
}

#[test]
fn loopback_silent_node_times_out_naming_phase_and_node() {
    for nodes in [2usize, 4] {
        let (input, _) = generate(GenConfig::datamation(1_000, 0x51_u64));
        // The last node drops every frame it ever sends — a live process
        // whose network goes nowhere (grey failure).
        let mut plan = NetFaultPlan::new();
        for op in 0..64 {
            plan = plan.drop_send(op);
        }
        let transports = loopback_faulty(nodes, vec![(nodes - 1, plan)]);
        let results = run_cluster(
            transports,
            split_shares(&input, nodes),
            &chaos_cfg(Some(DEADLINE)),
        );
        // The coordinator times out collecting samples and names both the
        // phase and the missing node in its error.
        let coord_err = results[0].result.as_ref().unwrap_err();
        if coord_err.kind() == io::ErrorKind::TimedOut {
            let msg = coord_err.to_string();
            assert!(msg.contains("sample"), "{msg}");
            assert!(msg.contains(&format!("{}", nodes - 1)), "{msg}");
        } else {
            // It may instead see another survivor's abort first.
            assert!(remote_abort_of(coord_err).is_some(), "{coord_err}");
        }
        assert_all_fail_promptly(&results, &(0..nodes).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// Fault class: dropped frame.
// ---------------------------------------------------------------------------

#[test]
fn dropped_done_frame_times_out_in_exchange_phase() {
    let nodes = 2;
    let (input, _) = generate(GenConfig::datamation(1_000, 0xD0_u64));
    // Node 1's op 0 is its Sample, op 1.. are Data batches then Done; with
    // 1000 records and batch 64 node 1 ships at most 8 batches to node 0,
    // so dropping every send after the sample guarantees the Done is lost
    // while node 0 still gets its splitters (coordinator is node 0).
    let mut plan = NetFaultPlan::new();
    for op in 1..16 {
        plan = plan.drop_send(op);
    }
    let transports = loopback_faulty(nodes, vec![(1, plan)]);
    let results = run_cluster(
        transports,
        split_shares(&input, nodes),
        &chaos_cfg(Some(DEADLINE)),
    );
    let err0 = results[0].result.as_ref().unwrap_err();
    if err0.kind() == io::ErrorKind::TimedOut {
        assert!(err0.to_string().contains("exchange"), "{err0}");
    } else {
        assert!(remote_abort_of(err0).is_some(), "{err0}");
    }
    // Node 1 received everything *it* needed before its sends started
    // vanishing, so it legitimately completes its own share; only node 0
    // is starved. The cluster-level driver still reports node 0's error.
    assert_all_fail_promptly(&results, &[0]);
}

// ---------------------------------------------------------------------------
// Fault class: delayed frame (slow link, within deadline) — must still sort.
// ---------------------------------------------------------------------------

#[test]
fn delay_within_deadline_still_sorts_correctly() {
    for nodes in [2usize, 4] {
        let (input, cs) = generate(GenConfig::datamation(1_000, 0xDE1A_u64));
        let plan = NetFaultPlan::new()
            .delay_send(0, Duration::from_millis(50))
            .delay_send(2, Duration::from_millis(50));
        let transports = loopback_faulty(nodes, vec![(nodes - 1, plan)]);
        // Deadline well above the injected delay: slow is not dead.
        let results = run_cluster(
            transports,
            split_shares(&input, nodes),
            &chaos_cfg(Some(Duration::from_secs(10))),
        );
        let output: Vec<u8> = results
            .iter()
            .flat_map(|r| r.result.as_ref().unwrap().clone())
            .collect();
        validate_records(&output, cs).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Fault class: corrupted frame — CRC must catch it, naming the sender;
// never a silently mis-sorted output.
// ---------------------------------------------------------------------------

#[test]
fn corrupt_frame_is_crc_error_naming_peer_never_bad_output() {
    for nodes in [2usize, 4] {
        let (input, _) = generate(GenConfig::datamation(2_000, 0xBAD_u64 + nodes as u64));
        // Node 0 (the coordinator) sees its 3rd received frame corrupted on
        // the wire: with `nodes` samples arriving first, frame 2 is a
        // Sample or early Data either way — always CRC-covered.
        let transports = loopback_faulty(nodes, vec![(0, NetFaultPlan::new().corrupt_recv(2, 5))]);
        let results = run_cluster(
            transports,
            split_shares(&input, nodes),
            &chaos_cfg(Some(DEADLINE)),
        );
        let err0 = results[0].result.as_ref().unwrap_err();
        assert_eq!(err0.kind(), io::ErrorKind::InvalidData, "{err0}");
        assert!(err0.to_string().contains("CRC"), "{err0}");
        assert!(err0.to_string().contains("node"), "{err0}");
        // No node may emit output sorted from corrupt data; the others tear
        // down via node 0's abort broadcast (or their own deadline).
        assert_all_fail_promptly(&results, &(1..nodes).collect::<Vec<_>>());
    }
}

#[test]
fn tcp_corrupt_frame_is_detected_over_real_sockets() {
    let nodes = 2;
    let (input, _) = generate(GenConfig::datamation(1_000, 0x7CB));
    let transports: Vec<_> = tcp_cluster(nodes)
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let plan = if i == 1 {
                NetFaultPlan::new().corrupt_recv(1, 9)
            } else {
                NetFaultPlan::new()
            };
            FaultyTransport::new(t, plan)
        })
        .collect();
    let results = run_cluster(
        transports,
        split_shares(&input, nodes),
        &chaos_cfg(Some(DEADLINE)),
    );
    let err1 = results[1].result.as_ref().unwrap_err();
    assert_eq!(err1.kind(), io::ErrorKind::InvalidData, "{err1}");
    assert!(err1.to_string().contains("CRC"), "{err1}");
    // Node 0 races node 1's abort against its own completion: node 1 sent
    // its Data and Done before hitting the corrupt frame, so node 0 may
    // finish cleanly (its share is fine) or see the abort. Both are
    // acceptable; what is not is a hang (watchdog) or node 1 accepting the
    // corrupt frame (asserted above).
    if let Err(e) = &results[0].result {
        assert!(is_clean_teardown(e), "node 0: {e}");
    }
}

// ---------------------------------------------------------------------------
// Fault class: local failure — abort must propagate well before deadlines.
// ---------------------------------------------------------------------------

#[test]
fn local_failure_aborts_whole_cluster_before_any_deadline() {
    let nodes = 4;
    let (input, _) = generate(GenConfig::datamation(2_000, 0xAB07_u64));
    // Node 2's very first send (its Sample) fails locally — a NIC-level
    // error. With a *long* deadline, the only way the others can stop
    // quickly is node 2's Abort broadcast.
    let long = Duration::from_secs(15);
    let transports = loopback_faulty(
        nodes,
        vec![(2, NetFaultPlan::new().fail_send(0, io::ErrorKind::Other))],
    );
    let t0 = Instant::now();
    let results = run_cluster(
        transports,
        split_shares(&input, nodes),
        &chaos_cfg(Some(long)),
    );
    let wall = t0.elapsed();
    assert!(
        wall < long,
        "survivors must stop via abort propagation, not deadline ({wall:?})"
    );
    for r in &results {
        let err = match &r.result {
            Err(e) => e,
            Ok(_) => panic!("node {} must not succeed", r.node),
        };
        // Survivors either see node 2's abort or the cascade teardown of an
        // already-stopped peer's transport — both clean, both prompt.
        if r.node != 2 {
            assert!(is_clean_teardown(err), "node {}: {err}", r.node);
        }
    }
    // The coordinator is guaranteed the attributed form: node 2's Abort sits
    // in its inbox and its sample gather can only end by pulling it.
    let err0 = results[0].result.as_ref().unwrap_err();
    let abort = remote_abort_of(err0)
        .unwrap_or_else(|| panic!("coordinator: expected remote abort, got {err0}"));
    assert_eq!(abort.from, 2, "abort must name the failed node");
    assert!(
        abort.reason.contains("injected send fault"),
        "{}",
        abort.reason
    );
}
