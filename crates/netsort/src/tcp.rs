//! The real-socket transport: one `std::net::TcpStream` per directed peer
//! pair, length-prefixed [`Frame`]s on the wire.
//!
//! Topology: every node binds a listener; node A's sends to node B travel
//! over the connection A dialed to B's listener, so an N-node cluster has
//! N·(N-1) simplex connections and no per-connection handshake is needed —
//! every frame already carries its sender id. Inbound connections each get
//! a reader thread that decodes frames into one shared inbox, which is what
//! lets a worker ship its whole scatter before draining its own inbox
//! without deadlock.
//!
//! Failure semantics: a peer that closes without sending `Bye` (crash, cut
//! connection) surfaces as a `ConnectionAborted` error from
//! [`TcpTransport::recv`]; dial failures retry with bounded exponential
//! backoff per [`RetryPolicy`] before giving up.

use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::frame::Frame;
use crate::transport::Transport;

/// Bounded-backoff retry schedule for dialing peers that have not bound
/// their listener yet (cluster members start in arbitrary order).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Connection attempts before giving up.
    pub attempts: u32,
    /// Sleep after the first failed attempt.
    pub initial_backoff: Duration,
    /// Backoff doubles per attempt but never exceeds this.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// Dial `addr`, retrying per `policy`. Returns the last error when every
/// attempt fails.
pub fn connect_with_retry(addr: SocketAddr, policy: &RetryPolicy) -> io::Result<TcpStream> {
    assert!(policy.attempts >= 1);
    let mut backoff = policy.initial_backoff;
    let mut last = None;
    for attempt in 0..policy.attempts {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
        if attempt + 1 < policy.attempts {
            thread::sleep(backoff);
            backoff = (backoff * 2).min(policy.max_backoff);
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no connection attempts made")))
}

/// Bind one loopback listener per node; returns the listeners and their
/// (ephemeral-port) addresses in node order.
pub fn bind_cluster(nodes: usize) -> io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(nodes);
    let mut addrs = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// What a reader thread forwards into the shared inbox.
type Event = io::Result<Frame>;

/// One node's TCP transport.
pub struct TcpTransport {
    node: usize,
    nodes: usize,
    /// Outbound stream per peer; `None` at our own index and after a
    /// connection has been killed or shut down.
    outbound: Vec<Option<TcpStream>>,
    inbox: Receiver<Event>,
    /// Kept for self-sends (and to keep `recv` from seeing a hangup while
    /// this transport is alive).
    inbox_tx: Sender<Event>,
    closed: bool,
}

impl TcpTransport {
    /// Join the cluster as `node`: accept one inbound connection from every
    /// peer on `listener` while dialing every peer's address in `addrs`
    /// (retrying per `policy`). Returns once all 2·(N-1) connections exist.
    pub fn establish(
        node: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        policy: &RetryPolicy,
    ) -> io::Result<TcpTransport> {
        let nodes = addrs.len();
        assert!(node < nodes);
        let (inbox_tx, inbox) = channel();

        // Accept peers in the background while we dial; reader threads are
        // detached — they exit on Bye, EOF, or error, and hold only a clone
        // of the inbox sender. The acceptor itself must be joined on *every*
        // exit path: a thread left parked in `accept()` pins the listener
        // (and its port) for the life of the process.
        let accept_tx = inbox_tx.clone();
        let expected = nodes - 1;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_seen = Arc::clone(&stop);
        let wake_addr = listener.local_addr()?;
        let acceptor = thread::spawn(move || -> io::Result<()> {
            for _ in 0..expected {
                let (stream, _) = listener.accept()?;
                if stop_seen.load(Ordering::Acquire) {
                    // The establishing thread gave up and self-connected to
                    // unpark us; drop the listener and bail.
                    return Ok(());
                }
                stream.set_nodelay(true).ok();
                let tx = accept_tx.clone();
                thread::spawn(move || read_loop(stream, tx));
            }
            Ok(())
        });

        let mut outbound = Vec::with_capacity(nodes);
        for (peer, addr) in addrs.iter().enumerate() {
            if peer == node {
                outbound.push(None);
            } else {
                match connect_with_retry(*addr, policy) {
                    Ok(s) => outbound.push(Some(s)),
                    Err(e) => {
                        // Unblock the acceptor (it may still be waiting for
                        // peers that will never dial) and join it so the
                        // failed establish leaves no thread on the listener.
                        stop.store(true, Ordering::Release);
                        let _ = TcpStream::connect(wake_addr);
                        let _ = acceptor.join();
                        return Err(e);
                    }
                }
            }
        }
        acceptor
            .join()
            .map_err(|_| io::Error::other("acceptor thread panicked"))??;

        Ok(TcpTransport {
            node,
            nodes,
            outbound,
            inbox,
            inbox_tx,
            closed: false,
        })
    }

    /// Fault-injection hook: hard-kill the connection to `peer` as if the
    /// network dropped it — no `Bye`, both directions torn down. Later
    /// sends to that peer fail; the peer's `recv` reports
    /// `ConnectionAborted`.
    ///
    /// Returns whether a live connection was actually torn down. The chaos
    /// harness drives this programmatically, so it is total: an
    /// out-of-range `peer`, `peer == self.node()` (we hold no connection to
    /// ourselves) and an already-killed connection are all no-ops that
    /// return `false` instead of panicking.
    pub fn kill_connection(&mut self, peer: usize) -> bool {
        match self.outbound.get_mut(peer).and_then(Option::take) {
            Some(stream) => {
                stream.shutdown(Shutdown::Both).ok();
                true
            }
            None => false,
        }
    }
}

/// A stoppable TCP accept loop: the server-side primitive `sortd` (and any
/// other long-running listener) builds on.
///
/// `TcpTransport::establish` accepts a *bounded* number of peers and joins
/// its acceptor inline; a daemon instead accepts forever, so the thread
/// parked in `accept()` must be unparked deliberately on shutdown — a
/// thread left in `accept()` pins the listener (and its port) for the life
/// of the process, and a dropped `JoinHandle` hides that leak.
/// [`AcceptLoop::stop`] raises a flag, self-connects to unpark the
/// acceptor, and joins it; after `stop` returns, the port is closed and no
/// acceptor thread remains. Stopping is idempotent and also runs on `Drop`.
pub struct AcceptLoop {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl AcceptLoop {
    /// Accept connections on `listener`, handing each stream to `on_conn`
    /// (which typically spawns or dispatches to a handler thread; the
    /// accept loop itself must stay unblocked).
    pub fn spawn<F>(listener: TcpListener, mut on_conn: F) -> io::Result<AcceptLoop>
    where
        F: FnMut(TcpStream) + Send + 'static,
    {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_seen = Arc::clone(&stop);
        let handle = thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stop_seen.load(Ordering::Acquire) {
                        // The stop()ing thread self-connected to unpark us;
                        // drop the stream *and* the listener and bail. A
                        // real client racing the shutdown is dropped too —
                        // it sees a reset, the draining server's answer.
                        return;
                    }
                    stream.set_nodelay(true).ok();
                    on_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    if stop_seen.load(Ordering::Acquire) {
                        return;
                    }
                    // Transient accept errors (EMFILE, aborted handshakes)
                    // must not kill the daemon's front door.
                    thread::sleep(Duration::from_millis(10));
                }
            }
        });
        Ok(AcceptLoop {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting: raise the flag, unpark the acceptor with a
    /// self-connection, and join it. Idempotent; after the first call
    /// returns, the listener is closed and the acceptor thread is gone.
    pub fn stop(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Unpark `accept()`. If the connect fails the acceptor was already
        // past accept (or the listener died); the flag still stops it.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for AcceptLoop {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Decode frames off one inbound connection into the shared inbox.
fn read_loop(stream: TcpStream, tx: Sender<Event>) {
    let mut r = BufReader::new(stream);
    loop {
        match Frame::read_from(&mut r) {
            Ok(Some(Frame::Bye { .. })) => break, // graceful goodbye
            Ok(Some(frame)) => {
                if tx.send(Ok(frame)).is_err() {
                    break; // receiver is gone; stop decoding
                }
            }
            Ok(None) => {
                // EOF without Bye: the peer vanished mid-protocol.
                let _ = tx.send(Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "peer closed connection without Bye",
                )));
                break;
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                break;
            }
        }
    }
}

impl Transport for TcpTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn send(&mut self, to: usize, frame: Frame) -> io::Result<()> {
        if to == self.node {
            return self
                .inbox_tx
                .send(Ok(frame))
                .map_err(|_| io::Error::new(io::ErrorKind::ConnectionAborted, "own inbox closed"));
        }
        let stream = self.outbound[to].as_mut().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotConnected,
                format!("no live connection to node {to}"),
            )
        })?;
        frame.write_to(stream)?;
        stream.flush()
    }

    fn recv(&mut self) -> io::Result<Frame> {
        match self.inbox.recv() {
            Ok(event) => event,
            Err(_) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "all peers disconnected",
            )),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Frame> {
        match self.inbox.recv_timeout(timeout) {
            Ok(event) => event,
            Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no frame within {timeout:?}"),
            )),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "all peers disconnected",
            )),
        }
    }

    fn shutdown(&mut self) -> io::Result<()> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        let from = self.node as u32;
        for stream in self.outbound.iter_mut().filter_map(Option::as_mut) {
            // Best effort: the peer may already be gone.
            let _ = Frame::Bye { from }.write_to(stream);
            let _ = stream.shutdown(Shutdown::Write);
        }
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_cluster_exchanges_frames() {
        let (mut listeners, addrs) = bind_cluster(2).unwrap();
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        let addrs2 = addrs.clone();
        let policy = RetryPolicy::default();
        let p2 = policy.clone();

        let peer = thread::spawn(move || {
            let mut t = TcpTransport::establish(1, l1, &addrs2, &p2).unwrap();
            t.send(
                0,
                Frame::Data {
                    from: 1,
                    records: vec![9; 300],
                },
            )
            .unwrap();
            t.send(0, Frame::Done { from: 1 }).unwrap();
            // Echo whatever node 0 sends back, then shut down cleanly.
            let got = t.recv().unwrap();
            t.shutdown().unwrap();
            got
        });

        let mut t = TcpTransport::establish(0, l0, &addrs, &policy).unwrap();
        assert_eq!(
            t.recv().unwrap(),
            Frame::Data {
                from: 1,
                records: vec![9; 300]
            }
        );
        assert_eq!(t.recv().unwrap(), Frame::Done { from: 1 });
        t.send(1, Frame::Done { from: 0 }).unwrap();
        t.shutdown().unwrap();
        assert_eq!(peer.join().unwrap(), Frame::Done { from: 0 });
    }

    #[test]
    fn retry_gives_up_with_bounded_attempts() {
        // A listener we immediately drop: the port is (almost certainly)
        // unbound, so every dial fails fast.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t0 = std::time::Instant::now();
        let policy = RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(10),
        };
        assert!(connect_with_retry(addr, &policy).is_err());
        // 2 sleeps: 5ms + 10ms. Bounded well under a second.
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn retry_survives_late_listener() {
        // Reserve an address, drop the listener, rebind it after a delay —
        // the dialer's backoff must ride out the gap.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        let binder = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            let l = TcpListener::bind(addr).unwrap();
            let _ = l.accept().unwrap();
        });
        let policy = RetryPolicy {
            attempts: 20,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
        };
        connect_with_retry(addr, &policy).unwrap();
        binder.join().unwrap();
    }

    #[test]
    fn failed_establish_leaves_no_thread_on_the_listener() {
        // Node 0's peer list points at a port nobody will ever bind; the
        // dial fails fast and `establish` must join its acceptor thread and
        // release the listener on the way out.
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let my_addr = l0.local_addr().unwrap();
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            attempts: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        let t0 = std::time::Instant::now();
        let err = match TcpTransport::establish(0, l0, &[my_addr, dead_addr], &policy) {
            Ok(_) => panic!("establish against an unbound peer must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused, "{err}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "establish must not hang"
        );
        // The listener is closed — were the acceptor still parked on it, a
        // dial would be accepted (or sit in its backlog) instead of being
        // refused.
        let e = TcpStream::connect(my_addr).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused, "{e}");
    }

    #[test]
    fn accept_loop_stop_is_clean_under_concurrent_accepts() {
        use std::sync::atomic::AtomicUsize;

        // Regression (sortd drain): stopping the accept loop while clients
        // are still dialing must join the acceptor — no thread left parked
        // in accept() pinning the listener — and release the port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let served = Arc::new(AtomicUsize::new(0));
        let served2 = Arc::clone(&served);
        let mut acceptor = AcceptLoop::spawn(listener, move |stream| {
            served2.fetch_add(1, Ordering::SeqCst);
            drop(stream);
        })
        .unwrap();
        let addr = acceptor.addr();

        // A burst of concurrent connects races the accept loop.
        let dialers: Vec<_> = (0..8)
            .map(|_| {
                thread::spawn(move || {
                    let _ = TcpStream::connect(addr);
                })
            })
            .collect();
        for d in dialers {
            d.join().unwrap();
        }

        let t0 = std::time::Instant::now();
        acceptor.stop();
        acceptor.stop(); // idempotent
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "stop() must join promptly, not hang on accept()"
        );
        // The listener is closed: were the acceptor still parked on it, the
        // dial would be accepted (or queue in its backlog) instead of
        // being refused.
        let err = TcpStream::connect(addr).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused, "{err}");
        // Every pre-stop connection was either served or reset — none can
        // be sitting half-accepted. (The exact count is racy by design.)
        assert!(served.load(Ordering::SeqCst) <= 8);
    }

    #[test]
    fn kill_connection_is_total() {
        let (mut listeners, addrs) = bind_cluster(2).unwrap();
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        let addrs2 = addrs.clone();
        let policy = RetryPolicy::default();
        let p2 = policy.clone();
        let peer = thread::spawn(move || {
            let mut t = TcpTransport::establish(1, l1, &addrs2, &p2).unwrap();
            t.shutdown().unwrap();
        });
        let mut t = TcpTransport::establish(0, l0, &addrs, &policy).unwrap();
        assert!(!t.kill_connection(0), "self: no connection to kill");
        assert!(!t.kill_connection(99), "out of range: no panic, no-op");
        assert!(t.kill_connection(1), "live peer connection torn down");
        assert!(!t.kill_connection(1), "second kill is a no-op");
        peer.join().unwrap();
    }

    #[test]
    fn abrupt_close_surfaces_as_connection_aborted() {
        let (mut listeners, addrs) = bind_cluster(2).unwrap();
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        let addrs2 = addrs.clone();
        let policy = RetryPolicy::default();
        let p2 = policy.clone();

        let peer = thread::spawn(move || {
            let mut t = TcpTransport::establish(1, l1, &addrs2, &p2).unwrap();
            t.send(
                0,
                Frame::Data {
                    from: 1,
                    records: vec![1; 64],
                },
            )
            .unwrap();
            t.kill_connection(0); // vanish mid-exchange, no Bye
        });

        let mut t = TcpTransport::establish(0, l0, &addrs, &policy).unwrap();
        assert_eq!(
            t.recv().unwrap(),
            Frame::Data {
                from: 1,
                records: vec![1; 64]
            }
        );
        let err = t.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        peer.join().unwrap();
    }
}
