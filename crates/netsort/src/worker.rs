//! The per-node worker and whole-cluster drivers.
//!
//! Protocol, from each worker's point of view:
//!
//! 1. **Sample** — read the local input, sample keys with the golden-ratio
//!    stride, send them to the coordinator (node 0; a self-send when we
//!    *are* node 0).
//! 2. **Split** — the coordinator pools all samples, picks the quantile
//!    splitters and broadcasts them; everyone else waits, stashing any
//!    early `Data` frames from faster peers (frames from different peers
//!    have no cross-ordering).
//! 3. **Exchange** — partition the local records by the splitters, stream
//!    each foreign partition to its owner in batched `Data` frames, then
//!    tell every peer `Done`. Drain the inbox until all peers said `Done`.
//! 4. **Local sort** — run the ordinary AlphaSort one-pass pipeline over
//!    the records this node now owns and write them to the local sink.
//!    Concatenating the node outputs in node order is the sorted dataset.
//!
//! Every blocking receive in steps 1–3 runs under the configurable
//! [`NetsortConfig::recv_timeout`] deadline, so a hung or crashed peer
//! surfaces as a `TimedOut` error naming the protocol phase and the nodes
//! still being waited on — never an indefinite hang. A worker that fails
//! locally broadcasts [`Frame::Abort`] before returning, so the other N−1
//! nodes stop promptly with a [`RemoteAbort`] error instead of each
//! riding out its own deadline.

use std::error::Error as StdError;
use std::fmt;
use std::io;
use std::time::{Duration, Instant};

use alphasort_core::io::{MemSink, MemSource, RecordSink, RecordSource};
use alphasort_core::stats::timed_phase;
use alphasort_core::{driver::one_pass, SortConfig, SortStats};
use alphasort_dmgen::RECORD_LEN;
use alphasort_obs as obs;

use crate::frame::Frame;
use crate::splitter::{
    compute_splitters, decode_splitters, encode_splitters, partition_records, sample_keys,
};
use crate::transport::{loopback_cluster, Transport};

/// Coordinator node id.
pub const COORDINATOR: usize = 0;

/// Configuration shared by every worker of a distributed sort.
#[derive(Clone, Debug)]
pub struct NetsortConfig {
    /// Keys each node samples for the coordinator's splitter computation.
    pub samples_per_node: usize,
    /// Records per `Data` frame during the exchange (640 records = 64 kB
    /// payloads, large enough to amortize framing, small enough to pipeline).
    pub batch_records: usize,
    /// Deadline for every blocking receive in the protocol. A peer that
    /// sends nothing for this long surfaces as a `TimedOut` error naming
    /// the phase and the missing node(s); `None` waits forever (the
    /// pre-fault-tolerance behaviour).
    pub recv_timeout: Option<Duration>,
    /// The local AlphaSort pipeline's configuration.
    pub sort: SortConfig,
}

impl NetsortConfig {
    /// Default [`recv_timeout`](Self::recv_timeout): far above any healthy
    /// exchange stall, far below "operator walks over to check".
    pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);
}

impl Default for NetsortConfig {
    fn default() -> Self {
        NetsortConfig {
            samples_per_node: 256,
            batch_records: 640,
            recv_timeout: Some(Self::DEFAULT_RECV_TIMEOUT),
            sort: SortConfig::default(),
        }
    }
}

/// The error payload a worker returns when a *peer* reported a local
/// failure via [`Frame::Abort`]: the cluster is going down because of
/// `from`'s problem, not ours. Carried inside an `io::Error` of kind
/// `ConnectionAborted`; use [`remote_abort_of`] to recover it.
#[derive(Clone, Debug)]
pub struct RemoteAbort {
    /// The node that failed and broadcast the abort.
    pub from: u32,
    /// Its (already formatted) local error.
    pub reason: String,
}

impl fmt::Display for RemoteAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remote abort from node {}: {}", self.from, self.reason)
    }
}

impl StdError for RemoteAbort {}

/// The [`RemoteAbort`] inside `err`, if that is what it carries.
pub fn remote_abort_of(err: &io::Error) -> Option<&RemoteAbort> {
    err.get_ref().and_then(|e| e.downcast_ref::<RemoteAbort>())
}

fn remote_abort_err(from: u32, reason: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionAborted,
        RemoteAbort { from, reason },
    )
}

/// One worker's result: its share of the sorted output lives in its sink;
/// `stats` covers the whole worker including the exchange phase.
#[derive(Clone, Debug)]
pub struct WorkerOutcome {
    /// Phase breakdown; exchange counters filled in.
    pub stats: SortStats,
    /// Bytes this node wrote to its local sink.
    pub bytes: u64,
}

fn protocol_error(what: &str, frame: &Frame) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "protocol error: expected {what}, got {frame:?} from node {}",
            frame.from()
        ),
    )
}

/// Render the nodes still being waited on (`present[i] == false`) for a
/// timeout message.
fn missing_nodes(present: &[bool]) -> String {
    let missing: Vec<String> = present
        .iter()
        .enumerate()
        .filter(|&(_, &p)| !p)
        .map(|(i, _)| i.to_string())
        .collect();
    format!("node(s) [{}]", missing.join(", "))
}

/// Receive one frame under the configured deadline. A timeout is attributed
/// to the protocol `phase` and the nodes named by `missing`; a peer's
/// [`Frame::Abort`] becomes the [`RemoteAbort`] error right here, so no
/// caller ever has to treat it as data.
fn recv_in_phase<T: Transport>(
    transport: &mut T,
    cfg: &NetsortConfig,
    stats: &mut SortStats,
    phase: &str,
    missing: &dyn Fn() -> String,
) -> io::Result<Frame> {
    let frame = timed_phase(obs::phase::EXCHANGE, &mut stats.exchange_wait, || match cfg
        .recv_timeout
    {
        Some(deadline) => transport.recv_timeout(deadline).map_err(|e| {
            if e.kind() == io::ErrorKind::TimedOut {
                obs::metrics::counter_add("net.recv.timeout", 1);
                io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "{phase} phase timed out after {deadline:?} waiting for {}",
                        missing()
                    ),
                )
            } else {
                e
            }
        }),
        None => transport.recv(),
    })?;
    if let Frame::Abort { from, reason } = frame {
        obs::metrics::counter_add("net.frames.abort_received", 1);
        return Err(remote_abort_err(from, reason));
    }
    Ok(frame)
}

/// Run one node of the distributed sort. Blocks until this node's share of
/// the output is fully written to `sink` — or until the configured receive
/// deadline or a peer's abort ends the run with an error. On a local
/// failure the worker broadcasts [`Frame::Abort`] (best effort) before
/// returning, so the rest of the cluster tears down promptly too.
pub fn run_worker<T, Src, Snk>(
    transport: &mut T,
    source: &mut Src,
    sink: &mut Snk,
    cfg: &NetsortConfig,
) -> io::Result<WorkerOutcome>
where
    T: Transport,
    Src: RecordSource,
    Snk: RecordSink,
{
    match run_worker_inner(transport, source, sink, cfg) {
        Ok(outcome) => Ok(outcome),
        Err(err) => {
            // Going down: tell every peer why, unless the failure *is* a
            // peer's abort (its originator already told the cluster).
            // Best effort on every send — peers may already be gone.
            if remote_abort_of(&err).is_none() {
                let me = transport.node() as u32;
                let reason = err.to_string();
                obs::metrics::counter_add("net.frames.abort_sent", 1);
                for peer in 0..transport.nodes() {
                    if peer != transport.node() {
                        let _ = transport.send(
                            peer,
                            Frame::Abort {
                                from: me,
                                reason: reason.clone(),
                            },
                        );
                    }
                }
            }
            let _ = transport.shutdown();
            Err(err)
        }
    }
}

fn run_worker_inner<T, Src, Snk>(
    transport: &mut T,
    source: &mut Src,
    sink: &mut Snk,
    cfg: &NetsortConfig,
) -> io::Result<WorkerOutcome>
where
    T: Transport,
    Src: RecordSource,
    Snk: RecordSink,
{
    let t_start = Instant::now();
    let node = transport.node();
    let nodes = transport.nodes();
    let me = node as u32;
    let mut stats = SortStats::default();

    // Tag everything this worker (and the pools it spawns) records onto a
    // per-node track, so one process's trace splits into one per node.
    obs::set_track(&format!("node{node}"));
    let mut top = obs::span(obs::phase::NET_WORKER).with("node", node as u64);

    // ---- read the local input ---------------------------------------------
    let mut input: Vec<u8> = Vec::new();
    loop {
        let chunk = timed_phase(obs::phase::READ, &mut stats.read_wait, || {
            source.next_chunk()
        })?;
        let Some(chunk) = chunk else { break };
        input.extend_from_slice(&chunk);
    }
    if !input.len().is_multiple_of(RECORD_LEN) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "node {node} input ends mid-record ({} trailing bytes)",
                input.len() % RECORD_LEN
            ),
        ));
    }

    // ---- sample + splitters -----------------------------------------------
    let sample_span = obs::span(obs::phase::NET_SAMPLE);
    transport.send(
        COORDINATOR,
        Frame::Sample {
            from: me,
            keys: sample_keys(&input, cfg.samples_per_node),
        },
    )?;
    if node == COORDINATOR {
        let mut samples: Vec<Option<Vec<u8>>> = vec![None; nodes];
        while samples.iter().any(Option::is_none) {
            let frame = recv_in_phase(transport, cfg, &mut stats, "sample", &|| {
                missing_nodes(&samples.iter().map(Option::is_some).collect::<Vec<_>>())
            })?;
            match frame {
                Frame::Sample { from, keys } => {
                    let sender = from as usize;
                    if sender >= nodes {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("Sample frame from unknown node {sender}"),
                        ));
                    }
                    if samples[sender].replace(keys).is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("duplicate Sample from node {sender}"),
                        ));
                    }
                }
                other => return Err(protocol_error("Sample", &other)),
            }
        }
        let samples: Vec<Vec<u8>> = samples.into_iter().flatten().collect();
        let payload = encode_splitters(&compute_splitters(&samples, nodes));
        for peer in 0..nodes {
            transport.send(
                peer,
                Frame::Splitters {
                    from: me,
                    keys: payload.clone(),
                },
            )?;
        }
    }
    // Everyone (coordinator included — it self-sent) waits for the
    // splitters, stashing early exchange traffic from faster peers.
    let mut pending: Vec<Frame> = Vec::new();
    let splitters = loop {
        let frame = recv_in_phase(transport, cfg, &mut stats, "splitter", &|| {
            format!("the coordinator (node {COORDINATOR})")
        })?;
        match frame {
            Frame::Splitters { keys, .. } => break decode_splitters(&keys),
            data @ (Frame::Data { .. } | Frame::Done { .. }) => pending.push(data),
            other => return Err(protocol_error("Splitters", &other)),
        }
    };
    drop(sample_span);

    // ---- exchange: scatter ours, gather ours ------------------------------
    let mut partitions = partition_records(&input, &splitters);
    drop(input);
    // Gather received records per sender, not in arrival order: shares are
    // contiguous in node order, so concatenating the per-sender buffers in
    // node order restores the global input order within this partition.
    // With a stable local sort that makes the distributed output
    // byte-identical to a single-node stable sort, ties included.
    let mut gather: Vec<Vec<u8>> = vec![Vec::new(); nodes];
    gather[node] = std::mem::take(&mut partitions[node]);
    for (target, part) in partitions.into_iter().enumerate() {
        if target == node {
            continue;
        }
        for batch in part.chunks(cfg.batch_records * RECORD_LEN) {
            stats.exchange_bytes_out += batch.len() as u64;
            let _send = obs::span(obs::phase::NET_SEND)
                .with("peer", target as u64)
                .with("bytes", batch.len() as u64);
            obs::metrics::observe("net.frame.bytes", batch.len() as u64);
            obs::metrics::counter_add("net.bytes_out", batch.len() as u64);
            timed_phase(obs::phase::EXCHANGE, &mut stats.exchange_wait, || {
                transport.send(
                    target,
                    Frame::Data {
                        from: me,
                        records: batch.to_vec(),
                    },
                )
            })?;
        }
        transport.send(target, Frame::Done { from: me })?;
    }
    // `done[i]` once node i said it has no more Data for us; we never send
    // Done to ourselves, so our own slot starts satisfied.
    let mut done = vec![false; nodes];
    done[node] = true;
    let absorb =
        |frame: Frame, gather: &mut Vec<Vec<u8>>, done: &mut Vec<bool>, stats: &mut SortStats| {
            match frame {
                Frame::Data { from, records } => {
                    let sender = from as usize;
                    if sender >= nodes {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("Data frame from unknown node {sender}"),
                        ));
                    }
                    let _recv = obs::span(obs::phase::NET_RECV)
                        .with("peer", sender as u64)
                        .with("bytes", records.len() as u64);
                    obs::metrics::observe("net.frame.bytes", records.len() as u64);
                    obs::metrics::counter_add("net.bytes_in", records.len() as u64);
                    stats.exchange_bytes_in += records.len() as u64;
                    gather[sender].extend_from_slice(&records);
                }
                Frame::Done { from } => {
                    let sender = from as usize;
                    if sender >= nodes || done[sender] {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected Done from node {sender}"),
                        ));
                    }
                    done[sender] = true;
                }
                other => return Err(protocol_error("Data or Done", &other)),
            }
            Ok(())
        };
    for frame in pending {
        absorb(frame, &mut gather, &mut done, &mut stats)?;
    }
    while done.iter().any(|d| !d) {
        let frame = recv_in_phase(transport, cfg, &mut stats, "exchange", &|| {
            missing_nodes(&done)
        })?;
        absorb(frame, &mut gather, &mut done, &mut stats)?;
    }
    transport.shutdown()?;
    let local = gather.concat();

    // ---- local AlphaSort pipeline over what we now own --------------------
    stats.partition_sizes = vec![(local.len() / RECORD_LEN) as u64];
    let mut local_source = MemSource::new(local, 1 << 20);
    let outcome = {
        let _local = obs::span(obs::phase::NET_LOCAL);
        one_pass(&mut local_source, sink, &cfg.sort)?
    };

    // Fold the local pipeline's stats into the worker-level ones.
    let exchange = stats;
    let mut stats = outcome.stats;
    stats.read_wait += exchange.read_wait;
    stats.exchange_bytes_out = exchange.exchange_bytes_out;
    stats.exchange_bytes_in = exchange.exchange_bytes_in;
    stats.exchange_wait = exchange.exchange_wait;
    stats.partition_sizes = exchange.partition_sizes;
    stats.elapsed = t_start.elapsed();
    top.attr("records", stats.records);
    top.attr("bytes_in", stats.exchange_bytes_in);
    top.attr("bytes_out", stats.exchange_bytes_out);
    Ok(WorkerOutcome {
        stats,
        bytes: outcome.bytes,
    })
}

/// Split `input` into `nodes` contiguous record-aligned shares (the last
/// may be short) — each node's "local disk" in the in-process drivers.
pub fn split_shares(input: &[u8], nodes: usize) -> Vec<Vec<u8>> {
    assert!(nodes >= 1);
    assert!(input.len().is_multiple_of(RECORD_LEN));
    let records = input.len() / RECORD_LEN;
    let per = records.div_ceil(nodes).max(1) * RECORD_LEN;
    let mut shares: Vec<Vec<u8>> = input.chunks(per).map(<[u8]>::to_vec).collect();
    shares.resize(nodes, Vec::new());
    shares
}

/// Combine per-node worker stats into one cluster-level view — a fold over
/// [`SortStats::merge`], so the field policy is identical to the in-process
/// pools: counters sum, compute phases (sort/merge/gather) sum into cluster
/// CPU-busy totals, waits and elapsed take the per-node maximum (the
/// critical path), and `partition_sizes` lists every node's post-exchange
/// share in node order.
pub fn merge_cluster_stats(per_node: &[SortStats]) -> SortStats {
    let mut out = SortStats::neutral();
    for st in per_node {
        out.merge(st);
    }
    out
}

/// Sort `input` on an in-process cluster of `nodes` workers connected by
/// the loopback transport. Returns the concatenated (globally sorted)
/// output and the merged cluster stats.
pub fn netsort_loopback(
    input: &[u8],
    nodes: usize,
    cfg: &NetsortConfig,
) -> io::Result<(Vec<u8>, SortStats)> {
    let shares = split_shares(input, nodes);
    let transports = loopback_cluster(nodes);
    let results: Vec<io::Result<(Vec<u8>, SortStats)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = transports
            .into_iter()
            .zip(shares)
            .map(|(mut transport, share)| {
                scope.spawn(move || {
                    let mut source = MemSource::new(share, 1 << 20);
                    let mut sink = MemSink::new();
                    let outcome = run_worker(&mut transport, &mut source, &mut sink, cfg)?;
                    Ok((sink.into_inner(), outcome.stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut output = Vec::with_capacity(input.len());
    let mut stats = Vec::with_capacity(nodes);
    for r in results {
        let (part, st) = r?;
        output.extend_from_slice(&part);
        stats.push(st);
    }
    Ok((output, merge_cluster_stats(&stats)))
}

/// Sort `input` on a cluster of `nodes` workers connected by real TCP
/// sockets on 127.0.0.1 (each worker a thread with its own listener).
pub fn netsort_tcp(
    input: &[u8],
    nodes: usize,
    cfg: &NetsortConfig,
    policy: &crate::tcp::RetryPolicy,
) -> io::Result<(Vec<u8>, SortStats)> {
    let shares = split_shares(input, nodes);
    let (listeners, addrs) = crate::tcp::bind_cluster(nodes)?;
    let results: Vec<io::Result<(Vec<u8>, SortStats)>> = std::thread::scope(|scope| {
        let addrs = &addrs;
        let handles: Vec<_> = listeners
            .into_iter()
            .zip(shares)
            .enumerate()
            .map(|(node, (listener, share))| {
                scope.spawn(move || {
                    let mut transport =
                        crate::tcp::TcpTransport::establish(node, listener, addrs, policy)?;
                    let mut source = MemSource::new(share, 1 << 20);
                    let mut sink = MemSink::new();
                    let outcome = run_worker(&mut transport, &mut source, &mut sink, cfg)?;
                    Ok((sink.into_inner(), outcome.stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut output = Vec::with_capacity(input.len());
    let mut stats = Vec::with_capacity(nodes);
    for r in results {
        let (part, st) = r?;
        output.extend_from_slice(&part);
        stats.push(st);
    }
    Ok((output, merge_cluster_stats(&stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, validate_records, GenConfig};

    #[test]
    fn split_shares_covers_input_exactly() {
        let (input, _) = generate(GenConfig::datamation(103, 1));
        let shares = split_shares(&input, 4);
        assert_eq!(shares.len(), 4);
        assert!(shares.iter().all(|s| s.len() % RECORD_LEN == 0));
        assert_eq!(shares.concat(), input);
        // More nodes than records: trailing shares are empty, none lost.
        let tiny = split_shares(&input[..2 * RECORD_LEN], 8);
        assert_eq!(tiny.len(), 8);
        assert_eq!(tiny.concat(), &input[..2 * RECORD_LEN]);
    }

    #[test]
    fn loopback_cluster_sorts_and_validates() {
        let (input, cs) = generate(GenConfig::datamation(10_000, 42));
        let cfg = NetsortConfig {
            sort: SortConfig {
                run_records: 1_000,
                gather_batch: 500,
                ..Default::default()
            },
            ..Default::default()
        };
        let (output, stats) = netsort_loopback(&input, 4, &cfg).unwrap();
        let report = validate_records(&output, cs).unwrap();
        assert_eq!(report.records, 10_000);
        assert_eq!(stats.records, 10_000);
        assert_eq!(stats.partition_sizes.len(), 4);
        assert_eq!(stats.partition_sizes.iter().sum::<u64>(), 10_000);
        assert!(stats.exchange_bytes_out > 0);
        // Everything shipped is received by someone.
        assert_eq!(stats.exchange_bytes_out, stats.exchange_bytes_in);
    }

    #[test]
    fn single_node_cluster_ships_nothing() {
        let (input, cs) = generate(GenConfig::datamation(2_000, 7));
        let (output, stats) = netsort_loopback(&input, 1, &NetsortConfig::default()).unwrap();
        validate_records(&output, cs).unwrap();
        assert_eq!(stats.exchange_bytes_out, 0);
        assert_eq!(stats.partition_sizes, vec![2_000]);
    }

    #[test]
    fn empty_input_runs_clean() {
        let (output, stats) = netsort_loopback(&[], 3, &NetsortConfig::default()).unwrap();
        assert!(output.is_empty());
        assert_eq!(stats.records, 0);
    }

    #[test]
    fn merged_stats_sum_compute_and_take_critical_path_waits() {
        use std::time::Duration;
        let a = SortStats {
            records: 10,
            sort_time: Duration::from_millis(5),
            exchange_wait: Duration::from_millis(9),
            partition_sizes: vec![10],
            one_pass: true,
            ..Default::default()
        };
        let b = SortStats {
            records: 20,
            sort_time: Duration::from_millis(8),
            exchange_wait: Duration::from_millis(2),
            partition_sizes: vec![20],
            one_pass: true,
            ..Default::default()
        };
        let m = merge_cluster_stats(&[a, b]);
        assert_eq!(m.records, 30);
        // Compute time is CPU-busy across the cluster: it sums.
        assert_eq!(m.sort_time, Duration::from_millis(13));
        // Waits are concurrent: the cluster waits as long as the slowest node.
        assert_eq!(m.exchange_wait, Duration::from_millis(9));
        assert_eq!(m.partition_sizes, vec![10, 20]);
        assert!(m.one_pass);
        // The empty cluster is the fold identity (trivially one-pass).
        assert!(merge_cluster_stats(&[]).one_pass);
    }
}
