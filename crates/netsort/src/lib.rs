//! netsort: a distributed shared-nothing sort over the AlphaSort pipeline.
//!
//! §2 of the paper describes the design AlphaSort displaced: a
//! shared-nothing cluster where every node reads its local disk, the
//! records are exchanged so each node owns one key range, and each node
//! sorts locally (DeWitt, Naughton & Schneider's Hypercube sort with
//! *probabilistic splitting*). The [`baseline`](alphasort_core::baseline)
//! module fakes that design inside one process; this crate builds the real
//! thing:
//!
//! - a **coordinator phase** ([`splitter`]) that pools key samples from
//!   every node and broadcasts quantile splitters,
//! - an **all-to-all exchange** of length-prefixed record frames
//!   ([`frame`]) over a pluggable [`Transport`] — the in-process
//!   [`loopback_cluster`] or real TCP sockets with retry/backoff
//!   ([`tcp`]),
//! - a **per-node AlphaSort pipeline** ([`worker`]): after the exchange,
//!   each node runs the ordinary cache-conscious one-pass sort over the
//!   records it owns, so concatenating node outputs in node order yields
//!   the globally sorted dataset,
//! - **fault tolerance**: every frame carries a CRC32C trailer (verified
//!   on receive — corruption is an `InvalidData` error naming the peer,
//!   never silently mis-sorted output), every blocking receive runs under
//!   the configurable [`NetsortConfig::recv_timeout`] deadline (a hung or
//!   crashed peer surfaces as `TimedOut` naming the phase and node), and a
//!   worker that fails locally broadcasts [`Frame::Abort`] so the rest of
//!   the cluster stops promptly with a [`RemoteAbort`] error. The
//!   [`faulty`] module's [`FaultyTransport`] injects drop/delay/corrupt/
//!   crash faults to prove all of this under test.
//!
//! Exchange-phase counters (bytes shipped, wait time, partition skew) land
//! in the shared [`SortStats`](alphasort_core::SortStats).
//!
//! ```
//! use alphasort_netsort::{netsort_loopback, NetsortConfig};
//! use alphasort_dmgen::{generate, validate_records, GenConfig};
//!
//! let (input, checksum) = generate(GenConfig::datamation(5_000, 42));
//! let (output, stats) = netsort_loopback(&input, 4, &NetsortConfig::default())?;
//! validate_records(&output, checksum).expect("sorted permutation");
//! assert_eq!(stats.partition_sizes.len(), 4);
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod faulty;
pub mod frame;
pub mod splitter;
pub mod tcp;
pub mod transport;
pub mod worker;

pub use faulty::{FaultyTransport, NetFault, NetFaultPlan};
pub use frame::{crc32c, Frame, MAX_PAYLOAD};
pub use tcp::{bind_cluster, connect_with_retry, AcceptLoop, RetryPolicy, TcpTransport};
pub use transport::{loopback_cluster, LoopbackTransport, Transport};
pub use worker::{
    merge_cluster_stats, netsort_loopback, netsort_tcp, remote_abort_of, run_worker, split_shares,
    NetsortConfig, RemoteAbort, WorkerOutcome, COORDINATOR,
};
