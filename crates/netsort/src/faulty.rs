//! Programmable fault injection for the exchange transport — the network
//! sibling of iosim's `FaultyStorage`/`FaultPlan`.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and applies a
//! [`NetFaultPlan`]: drop, delay or fail the N-th *sent* frame, corrupt
//! the N-th *received* frame on the (emulated) wire, or crash the node
//! after its N-th send. Sends and receives are counted separately,
//! 0-based, mirroring the iosim builder style. The chaos matrix in
//! `tests/chaos.rs` uses this to prove the distributed sort either
//! completes correctly or fails fast with a correctly attributed error —
//! never a hang, never silent corruption.
//!
//! Corruption is injected the way a real wire would produce it: the frame
//! is serialized through [`Frame::write_to`] (which appends the CRC32C
//! trailer), one payload byte is flipped *after* the checksum was
//! computed, and the result is re-decoded through [`Frame::read_from`] —
//! so the receiver observes exactly the `InvalidData` CRC error a
//! corrupted TCP segment would cause, on any transport.

use std::io;
use std::thread;
use std::time::Duration;

use crate::frame::{Frame, HEADER_LEN, TRAILER_LEN};
use crate::transport::Transport;

/// One injected network failure.
#[derive(Clone, Debug)]
pub enum NetFault {
    /// The matching send vanishes on the wire: the call succeeds but the
    /// peer never sees the frame (a lost packet past the transport's care).
    DropSend,
    /// The matching send is stalled for this long before delivery (a
    /// congested or flapping link).
    DelaySend(Duration),
    /// The matching send fails locally with this error kind (NIC error).
    FailSend(io::ErrorKind),
    /// After the matching send completes, the node "crashes": every later
    /// send and receive fails with `ConnectionAborted`.
    KillAfterSend,
    /// The matching received frame has payload byte `byte` flipped on the
    /// wire, after integrity protection was applied — surfaces as the CRC
    /// `InvalidData` error naming the sending peer.
    CorruptRecv {
        /// Index of the byte within the frame payload to flip (clamped to
        /// the payload; frames without a payload flip a header byte, which
        /// the CRC catches just the same).
        byte: usize,
    },
}

/// When faults fire: on the `op`-th send or receive (0-based, counted
/// separately), iosim's `FaultPlan` builder style.
#[derive(Clone, Debug, Default)]
pub struct NetFaultPlan {
    send_faults: Vec<(u64, NetFault)>,
    recv_faults: Vec<(u64, NetFault)>,
}

impl NetFaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Silently drop the `n`-th sent frame.
    pub fn drop_send(mut self, n: u64) -> Self {
        self.send_faults.push((n, NetFault::DropSend));
        self
    }

    /// Delay the `n`-th sent frame by `by`.
    pub fn delay_send(mut self, n: u64, by: Duration) -> Self {
        self.send_faults.push((n, NetFault::DelaySend(by)));
        self
    }

    /// Fail the `n`-th send with `kind`.
    pub fn fail_send(mut self, n: u64, kind: io::ErrorKind) -> Self {
        self.send_faults.push((n, NetFault::FailSend(kind)));
        self
    }

    /// Crash the node right after its `n`-th send completes.
    pub fn kill_after_send(mut self, n: u64) -> Self {
        self.send_faults.push((n, NetFault::KillAfterSend));
        self
    }

    /// Flip payload byte `byte` of the `n`-th received frame on the wire.
    pub fn corrupt_recv(mut self, n: u64, byte: usize) -> Self {
        self.recv_faults.push((n, NetFault::CorruptRecv { byte }));
        self
    }

    fn take(faults: &mut Vec<(u64, NetFault)>, op: u64) -> Option<NetFault> {
        let idx = faults.iter().position(|(n, _)| *n == op)?;
        Some(faults.remove(idx).1)
    }
}

/// Transport wrapper that injects the planned faults.
pub struct FaultyTransport<T> {
    inner: T,
    plan: NetFaultPlan,
    sends: u64,
    recvs: u64,
    dead: bool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: T, plan: NetFaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            sends: 0,
            recvs: 0,
            dead: false,
        }
    }

    /// The wrapped transport (for transport-specific hooks like
    /// `TcpTransport::kill_connection`).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn crashed() -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "node crashed by fault plan",
        )
    }

    /// Emulate on-the-wire corruption of `frame`: serialize (computing the
    /// real CRC), flip a covered byte, re-decode. Any flip of a covered
    /// byte fails the CRC, so this always yields the receiver-side error.
    fn corrupt_on_wire(frame: &Frame, byte: usize) -> io::Error {
        let mut wire = Vec::new();
        frame
            .write_to(&mut wire)
            .expect("in-flight frame reserializes");
        let payload_len = wire.len() - HEADER_LEN - TRAILER_LEN;
        let idx = if payload_len > 0 {
            HEADER_LEN + byte.min(payload_len - 1)
        } else {
            1 // no payload: flip a `from` byte, still CRC-covered
        };
        wire[idx] ^= 0xFF;
        match Frame::read_from(&mut wire.as_slice()) {
            Err(e) => e,
            Ok(_) => io::Error::new(
                io::ErrorKind::InvalidData,
                "injected corruption went undetected",
            ),
        }
    }

    fn post_recv(&mut self, frame: Frame) -> io::Result<Frame> {
        let op = self.recvs;
        self.recvs += 1;
        match NetFaultPlan::take(&mut self.plan.recv_faults, op) {
            Some(NetFault::CorruptRecv { byte }) => Err(Self::corrupt_on_wire(&frame, byte)),
            _ => Ok(frame),
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn node(&self) -> usize {
        self.inner.node()
    }

    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn send(&mut self, to: usize, frame: Frame) -> io::Result<()> {
        if self.dead {
            return Err(Self::crashed());
        }
        let op = self.sends;
        self.sends += 1;
        match NetFaultPlan::take(&mut self.plan.send_faults, op) {
            Some(NetFault::DropSend) => Ok(()),
            Some(NetFault::DelaySend(by)) => {
                thread::sleep(by);
                self.inner.send(to, frame)
            }
            Some(NetFault::FailSend(kind)) => Err(io::Error::new(
                kind,
                format!("injected send fault at op {op}"),
            )),
            Some(NetFault::KillAfterSend) => {
                let result = self.inner.send(to, frame);
                self.dead = true;
                result
            }
            _ => self.inner.send(to, frame),
        }
    }

    fn recv(&mut self) -> io::Result<Frame> {
        if self.dead {
            return Err(Self::crashed());
        }
        let frame = self.inner.recv()?;
        self.post_recv(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Frame> {
        if self.dead {
            return Err(Self::crashed());
        }
        let frame = self.inner.recv_timeout(timeout)?;
        self.post_recv(frame)
    }

    fn shutdown(&mut self) -> io::Result<()> {
        if self.dead {
            // A crashed node does not say goodbye.
            return Ok(());
        }
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_cluster;

    fn pair(plan0: NetFaultPlan) -> (FaultyTransport<impl Transport>, impl Transport) {
        let mut cluster = loopback_cluster(2);
        let b = cluster.remove(1);
        let a = cluster.remove(0);
        (FaultyTransport::new(a, plan0), b)
    }

    #[test]
    fn dropped_send_never_arrives() {
        let (mut a, mut b) = pair(NetFaultPlan::new().drop_send(0));
        a.send(1, Frame::Done { from: 0 }).unwrap();
        a.send(1, Frame::Bye { from: 0 }).unwrap();
        // Only the second frame shows up.
        assert_eq!(b.recv().unwrap(), Frame::Bye { from: 0 });
        let err = b.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn delayed_send_arrives_late_but_intact() {
        let (mut a, mut b) = pair(NetFaultPlan::new().delay_send(0, Duration::from_millis(40)));
        let t0 = std::time::Instant::now();
        a.send(1, Frame::Done { from: 0 }).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(40));
        assert_eq!(b.recv().unwrap(), Frame::Done { from: 0 });
    }

    #[test]
    fn failed_send_surfaces_locally() {
        let (mut a, _b) = pair(NetFaultPlan::new().fail_send(1, io::ErrorKind::BrokenPipe));
        a.send(1, Frame::Done { from: 0 }).unwrap();
        let err = a.send(1, Frame::Done { from: 0 }).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        a.send(1, Frame::Done { from: 0 }).unwrap(); // fault consumed
    }

    #[test]
    fn killed_node_stops_communicating() {
        let (mut a, mut b) = pair(NetFaultPlan::new().kill_after_send(0));
        a.send(1, Frame::Done { from: 0 }).unwrap(); // delivered, then crash
        assert_eq!(b.recv().unwrap(), Frame::Done { from: 0 });
        assert_eq!(
            a.send(1, Frame::Bye { from: 0 }).unwrap_err().kind(),
            io::ErrorKind::ConnectionAborted
        );
        assert_eq!(
            a.recv().unwrap_err().kind(),
            io::ErrorKind::ConnectionAborted
        );
        a.shutdown().unwrap(); // crashed shutdown is silent, not Bye
    }

    #[test]
    fn corrupted_recv_is_a_crc_error_naming_the_sender() {
        let mut cluster = loopback_cluster(2);
        let b = cluster.remove(1);
        let mut a = cluster.remove(0);
        let mut b = FaultyTransport::new(b, NetFaultPlan::new().corrupt_recv(0, 3));
        a.send(
            1,
            Frame::Data {
                from: 0,
                records: vec![7; 100],
            },
        )
        .unwrap();
        let err = b.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("CRC"), "{err}");
        assert!(err.to_string().contains("node 0"), "{err}");
    }

    #[test]
    fn corrupting_a_payloadless_frame_still_fails_crc() {
        let mut cluster = loopback_cluster(2);
        let b = cluster.remove(1);
        let mut a = cluster.remove(0);
        let mut b = FaultyTransport::new(b, NetFaultPlan::new().corrupt_recv(0, 0));
        a.send(1, Frame::Done { from: 0 }).unwrap();
        let err = b.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }
}
