//! Splitter sampling and key routing — the coordinator's half of the
//! probabilistic-splitting recipe (§2's "equal-sized parts").
//!
//! The machinery itself moved to [`alphasort_core::splitter`] when the
//! partitioned parallel merge started range-cutting sealed runs with the
//! same sampling and routing rules; this module re-exports it so the
//! cluster code (and external users of the netsort API) keep their paths.

pub use alphasort_core::splitter::{
    compute_splitters, decode_splitters, encode_splitters, partition_records, route, sample_keys,
    splitters_from_keys,
};

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, GenConfig, KEY_LEN, RECORD_LEN};

    /// The netsort frame path end to end: sample payloads from two nodes,
    /// pooled splitters, encode/decode roundtrip, balanced routing.
    #[test]
    fn coordinator_path_stays_wired_through_the_shared_module() {
        let (a, _) = generate(GenConfig::datamation(10_000, 1));
        let (b, _) = generate(GenConfig::datamation(10_000, 2));
        let samples = vec![sample_keys(&a, 256), sample_keys(&b, 256)];
        let splitters = decode_splitters(&encode_splitters(&compute_splitters(&samples, 4)));
        assert_eq!(splitters.len(), 3);
        let parts = partition_records(&a, &splitters);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, a.len());
        assert_eq!(route(&[0u8; KEY_LEN], &splitters), 0);
        let ideal = 10_000.0 / 4.0;
        for p in &parts {
            assert!(((p.len() / RECORD_LEN) as f64) < ideal * 1.6);
        }
    }
}
