//! Splitter sampling and key routing — the coordinator's half of the
//! probabilistic-splitting recipe (§2's "equal-sized parts").
//!
//! Each worker samples its local keys with the same deterministic
//! golden-ratio stride the shared-memory baseline uses; the coordinator
//! sorts the pooled sample and picks the `nodes - 1` quantile keys as
//! splitters. Records route to node `i` iff their key falls in the i-th
//! splitter interval.

use alphasort_dmgen::{records_of, KEY_LEN, RECORD_LEN};

/// Sample up to `count` keys from `input` (whole records) with a
/// golden-ratio stride, returning them concatenated (KEY_LEN bytes each) —
/// the payload of a `Frame::Sample`.
pub fn sample_keys(input: &[u8], count: usize) -> Vec<u8> {
    assert!(input.len().is_multiple_of(RECORD_LEN));
    let records = records_of(input);
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    let count = count.min(n);
    let mut out = Vec::with_capacity(count * KEY_LEN);
    for i in 0..count {
        let idx = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64;
        out.extend_from_slice(&records[idx as usize].key);
    }
    out
}

/// Pick `nodes - 1` splitter keys from pooled sample payloads. The pooled
/// sample is sorted and its quantiles become the splitters, so every node's
/// key range should hold roughly the same record count.
pub fn compute_splitters(samples: &[Vec<u8>], nodes: usize) -> Vec<[u8; KEY_LEN]> {
    assert!(nodes >= 1);
    let mut pool: Vec<[u8; KEY_LEN]> = Vec::new();
    for payload in samples {
        assert!(payload.len().is_multiple_of(KEY_LEN), "ragged sample");
        for key in payload.chunks_exact(KEY_LEN) {
            pool.push(key.try_into().expect("KEY_LEN chunk"));
        }
    }
    pool.sort_unstable();
    if pool.is_empty() {
        // No data anywhere: any splitters partition nothing correctly.
        return vec![[0u8; KEY_LEN]; nodes - 1];
    }
    (1..nodes).map(|k| pool[k * pool.len() / nodes]).collect()
}

/// Serialize splitters for a `Frame::Splitters` payload.
pub fn encode_splitters(splitters: &[[u8; KEY_LEN]]) -> Vec<u8> {
    splitters.concat()
}

/// Parse a `Frame::Splitters` payload.
pub fn decode_splitters(payload: &[u8]) -> Vec<[u8; KEY_LEN]> {
    assert!(payload.len().is_multiple_of(KEY_LEN), "ragged splitters");
    payload
        .chunks_exact(KEY_LEN)
        .map(|k| k.try_into().expect("KEY_LEN chunk"))
        .collect()
}

/// Which node owns `key` under `splitters` (same routing rule as the
/// shared-memory baseline: first interval whose upper splitter exceeds the
/// key).
#[inline]
pub fn route(key: &[u8; KEY_LEN], splitters: &[[u8; KEY_LEN]]) -> usize {
    splitters.partition_point(|s| s <= key)
}

/// Scatter `input` (whole records) into one byte buffer per node.
pub fn partition_records(input: &[u8], splitters: &[[u8; KEY_LEN]]) -> Vec<Vec<u8>> {
    assert!(input.len().is_multiple_of(RECORD_LEN));
    let mut outs: Vec<Vec<u8>> = vec![Vec::new(); splitters.len() + 1];
    for r in records_of(input) {
        outs[route(&r.key, splitters)].extend_from_slice(r.as_bytes());
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, GenConfig, KeyDistribution};

    #[test]
    fn splitters_balance_random_keys() {
        let (input, _) = generate(GenConfig::datamation(40_000, 11));
        let sample = sample_keys(&input, 1024);
        let splitters = compute_splitters(&[sample], 8);
        assert_eq!(splitters.len(), 7);
        assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
        let parts = partition_records(&input, &splitters);
        let ideal = 40_000.0 / 8.0;
        for p in &parts {
            let records = (p.len() / RECORD_LEN) as f64;
            assert!(records < ideal * 1.5, "partition holds {records}");
        }
    }

    #[test]
    fn routing_respects_splitter_intervals() {
        let splitters = [[5u8; KEY_LEN], [9u8; KEY_LEN]];
        assert_eq!(route(&[0u8; KEY_LEN], &splitters), 0);
        assert_eq!(route(&[5u8; KEY_LEN], &splitters), 1); // equal goes right
        assert_eq!(route(&[7u8; KEY_LEN], &splitters), 1);
        assert_eq!(route(&[255u8; KEY_LEN], &splitters), 2);
        assert_eq!(route(&[3u8; KEY_LEN], &[]), 0); // one node, no splitters
    }

    #[test]
    fn partitions_concatenate_to_input_multiset_in_key_order() {
        let (input, _) = generate(GenConfig {
            records: 5_000,
            seed: 3,
            dist: KeyDistribution::DupHeavy { cardinality: 4 },
        });
        let sample = sample_keys(&input, 256);
        let splitters = compute_splitters(&[sample], 4);
        let parts = partition_records(&input, &splitters);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, input.len());
        // Every key in partition i is <= every key in partition i+1 (ranges
        // are disjoint up to the splitter-equality rule).
        for w in parts.windows(2) {
            let max_lo = records_of(&w[0]).iter().map(|r| r.key).max();
            let min_hi = records_of(&w[1]).iter().map(|r| r.key).min();
            if let (Some(lo), Some(hi)) = (max_lo, min_hi) {
                assert!(lo <= hi);
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let splitters = vec![[1u8; KEY_LEN], [200u8; KEY_LEN]];
        assert_eq!(decode_splitters(&encode_splitters(&splitters)), splitters);
    }

    #[test]
    fn empty_cluster_input_still_produces_splitters() {
        let splitters = compute_splitters(&[Vec::new(), Vec::new()], 4);
        assert_eq!(splitters.len(), 3);
        assert!(partition_records(&[], &splitters).iter().all(Vec::is_empty));
    }
}
