//! Wire frames for the exchange protocol.
//!
//! Every message between nodes is one length-prefixed, checksummed frame:
//!
//! ```text
//! +------+--------+----------------+--------------------+-----------+
//! | tag  | from   | payload length |      payload       |  crc32c   |
//! | u8   | u32 BE | u32 BE         | `len` bytes        |  u32 BE   |
//! +------+--------+----------------+--------------------+-----------+
//! |<------------- covered by the trailing CRC -------------->|
//! ```
//!
//! The `from` field carries the sender's node id so a receiver multiplexing
//! many peers over one queue can attribute each frame. Payload size is
//! capped at [`MAX_PAYLOAD`] on **both** sides: the sender rejects oversize
//! payloads with `InvalidInput` (a length prefix that wrapped `u32` would
//! desync the whole stream) and the receiver rejects oversize prefixes with
//! `InvalidData` so a corrupt length cannot trigger a multi-gigabyte
//! allocation.
//!
//! The trailer is a CRC32C over the header and payload — the workspace's
//! shared [`alphasort_crc`] checksum, the same one `stripefs` stamps on
//! scratch-run strides. A frame that arrives framed correctly but with any
//! flipped bit fails verification in [`Frame::read_from`] with an
//! `InvalidData` error naming the claimed sender — sorted garbage is never
//! silently produced. Mismatches also bump the `net.frames.crc_error`
//! counter in `obs`.

use std::io::{self, Read, Write};

use alphasort_obs as obs;

pub use alphasort_crc::crc32c;
use alphasort_crc::Crc32c;

/// Upper bound on a single frame's payload (16 MB — far above the batch
/// sizes the exchange actually uses).
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Bytes before the payload: tag (1) + from (4) + length (4).
pub const HEADER_LEN: usize = 9;

/// Bytes after the payload: the CRC32C trailer.
pub const TRAILER_LEN: usize = 4;

/// CRC32C of `header` followed by `payload` without concatenating them.
fn frame_crc(header: &[u8], payload: &[u8]) -> u32 {
    let mut crc = Crc32c::new();
    crc.update(header);
    crc.update(payload);
    crc.finish()
}

/// Protocol messages. `Sample` and `Splitters` run the coordinator phase;
/// `Data`/`Done` run the all-to-all exchange; `Abort` propagates one node's
/// failure to the rest of the cluster; `Bye` is the graceful transport
/// shutdown marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator: this node's sampled keys (concatenated
    /// KEY_LEN-byte keys).
    Sample { from: u32, keys: Vec<u8> },
    /// Coordinator → worker: the chosen splitters (concatenated keys).
    Splitters { from: u32, keys: Vec<u8> },
    /// Worker → worker: a batch of whole records destined for the receiver.
    Data { from: u32, records: Vec<u8> },
    /// Worker → worker: no more `Data` frames will follow from `from`.
    Done { from: u32 },
    /// Worker → everyone: `from` hit a local error and is going down;
    /// receivers stop promptly with a `RemoteAbort` error instead of
    /// timing out on the vanished peer one by one.
    Abort { from: u32, reason: String },
    /// Transport-level goodbye: the sender is closing its connection.
    Bye { from: u32 },
}

impl Frame {
    /// The sending node's id.
    pub fn from(&self) -> u32 {
        match self {
            Frame::Sample { from, .. }
            | Frame::Splitters { from, .. }
            | Frame::Data { from, .. }
            | Frame::Done { from }
            | Frame::Abort { from, .. }
            | Frame::Bye { from } => *from,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Frame::Sample { .. } => 1,
            Frame::Splitters { .. } => 2,
            Frame::Data { .. } => 3,
            Frame::Done { .. } => 4,
            Frame::Bye { .. } => 5,
            Frame::Abort { .. } => 6,
        }
    }

    fn payload(&self) -> &[u8] {
        match self {
            Frame::Sample { keys, .. } | Frame::Splitters { keys, .. } => keys,
            Frame::Data { records, .. } => records,
            Frame::Abort { reason, .. } => reason.as_bytes(),
            Frame::Done { .. } | Frame::Bye { .. } => &[],
        }
    }

    /// Bytes this frame occupies on the wire, header and CRC included.
    pub fn wire_len(&self) -> u64 {
        (HEADER_LEN + TRAILER_LEN) as u64 + self.payload().len() as u64
    }

    /// Write the frame to `w` (header + payload + CRC trailer, no flush).
    ///
    /// Oversize payloads are rejected here with `InvalidInput`: a payload
    /// past [`MAX_PAYLOAD`] would only be caught receiver-side, and one
    /// past `u32::MAX` would silently truncate the length prefix and
    /// desync every frame after it.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let payload = self.payload();
        if payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload {} exceeds cap {MAX_PAYLOAD}; split it into batches",
                    payload.len()
                ),
            ));
        }
        let mut header = [0u8; HEADER_LEN];
        header[0] = self.tag();
        header[1..5].copy_from_slice(&self.from().to_be_bytes());
        header[5..9].copy_from_slice(&(payload.len() as u32).to_be_bytes());
        let crc = frame_crc(&header, payload);
        w.write_all(&header)?;
        w.write_all(payload)?;
        w.write_all(&crc.to_be_bytes())
    }

    /// Read one frame from `r`, verifying its CRC. Returns `Ok(None)` on
    /// clean EOF at a frame boundary; an EOF mid-frame — even one byte into
    /// the header — is an `UnexpectedEof` error (a peer that died mid-send
    /// must not be mistaken for a graceful close).
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Frame>> {
        // Read the first header byte separately: 0 bytes ⇒ clean EOF, any
        // later short read ⇒ the peer vanished mid-frame.
        let mut first = [0u8; 1];
        loop {
            match r.read(&mut first) {
                Ok(0) => return Ok(None),
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let mut header = [0u8; HEADER_LEN];
        header[0] = first[0];
        r.read_exact(&mut header[1..]).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed connection mid-header",
                )
            } else {
                e
            }
        })?;
        let tag = header[0];
        let from = u32::from_be_bytes(header[1..5].try_into().expect("4 bytes"));
        let len = u32::from_be_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame payload {len} exceeds cap {MAX_PAYLOAD}"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        let mut trailer = [0u8; TRAILER_LEN];
        r.read_exact(&mut trailer)?;
        let expect = u32::from_be_bytes(trailer);
        let got = frame_crc(&header, &payload);
        if got != expect {
            obs::metrics::counter_add("net.frames.crc_error", 1);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame from node {from} failed CRC (wire corruption): \
                     computed {got:08x}, trailer {expect:08x}"
                ),
            ));
        }
        let frame = match tag {
            1 => Frame::Sample {
                from,
                keys: payload,
            },
            2 => Frame::Splitters {
                from,
                keys: payload,
            },
            3 => Frame::Data {
                from,
                records: payload,
            },
            4 => Frame::Done { from },
            5 => Frame::Bye { from },
            6 => Frame::Abort {
                from,
                reason: String::from_utf8_lossy(&payload).into_owned(),
            },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame tag {other}"),
                ))
            }
        };
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let mut wire = Vec::new();
        f.write_to(&mut wire).unwrap();
        assert_eq!(wire.len() as u64, f.wire_len());
        let got = Frame::read_from(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(got, f);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(Frame::Sample {
            from: 3,
            keys: vec![1; 30],
        });
        roundtrip(Frame::Splitters {
            from: 0,
            keys: vec![9; 10],
        });
        roundtrip(Frame::Data {
            from: 7,
            records: (0..200).collect(),
        });
        roundtrip(Frame::Done { from: 2 });
        roundtrip(Frame::Abort {
            from: 4,
            reason: "disk on fire".to_string(),
        });
        roundtrip(Frame::Bye { from: 1 });
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut wire = Vec::new();
        let frames = [
            Frame::Done { from: 0 },
            Frame::Data {
                from: 1,
                records: vec![5; 17],
            },
            Frame::Bye { from: 2 },
        ];
        for f in &frames {
            f.write_to(&mut wire).unwrap();
        }
        let mut r = wire.as_slice();
        for f in &frames {
            assert_eq!(Frame::read_from(&mut r).unwrap().unwrap(), *f);
        }
        assert_eq!(Frame::read_from(&mut r).unwrap(), None);
    }

    #[test]
    fn clean_eof_is_none_but_midframe_eof_is_error() {
        let mut wire = Vec::new();
        Frame::Data {
            from: 0,
            records: vec![1; 50],
        }
        .write_to(&mut wire)
        .unwrap();
        let truncated = &wire[..wire.len() - 10];
        let err = Frame::read_from(&mut &truncated[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(Frame::read_from(&mut &[][..]).unwrap().is_none());
    }

    #[test]
    fn partial_header_eof_is_error_not_clean_close() {
        // Regression: a peer dying 1–8 bytes into the header used to be
        // misreported as a clean close (`Ok(None)`).
        let mut wire = Vec::new();
        Frame::Done { from: 3 }.write_to(&mut wire).unwrap();
        for cut in 1..HEADER_LEN {
            let err = Frame::read_from(&mut &wire[..cut]).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "cut at {cut} bytes must be a mid-frame EOF"
            );
        }
        // Zero bytes stays a clean close.
        assert!(Frame::read_from(&mut &wire[..0]).unwrap().is_none());
    }

    #[test]
    fn truncated_crc_trailer_is_error() {
        let mut wire = Vec::new();
        Frame::Done { from: 1 }.write_to(&mut wire).unwrap();
        let cut = &wire[..wire.len() - 2]; // half the trailer missing
        let err = Frame::read_from(&mut &cut[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversize_length_prefix_is_rejected_without_allocating() {
        let mut wire = vec![3u8, 0, 0, 0, 0];
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = Frame::read_from(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversize_payload_is_rejected_at_send_time() {
        // Regression: an oversize payload used to be caught only by the
        // receiver; at the cap it still sends, one byte past it errors
        // before a single wire byte is written.
        let at_cap = Frame::Data {
            from: 0,
            records: vec![0; MAX_PAYLOAD],
        };
        let mut sink = io::sink();
        at_cap.write_to(&mut sink).unwrap();

        let over = Frame::Data {
            from: 0,
            records: vec![0; MAX_PAYLOAD + 1],
        };
        let mut wire = Vec::new();
        let err = over.write_to(&mut wire).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(wire.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn crc32c_matches_known_vectors() {
        // RFC 3720 §B.4 test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn any_single_flipped_bit_fails_crc() {
        let mut wire = Vec::new();
        Frame::Data {
            from: 5,
            records: (0..64).collect(),
        }
        .write_to(&mut wire)
        .unwrap();
        // Flip one bit in every covered byte (header + payload) in turn:
        // never a silently accepted frame. Length-prefix flips (bytes 5..9)
        // may desync framing first and surface as `UnexpectedEof`; every
        // other covered byte must be the CRC's `InvalidData`.
        for i in 0..wire.len() - TRAILER_LEN {
            let mut bad = wire.clone();
            bad[i] ^= 0x10;
            let err = Frame::read_from(&mut bad.as_slice()).unwrap_err();
            if (5..HEADER_LEN).contains(&i) {
                assert!(
                    matches!(
                        err.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    ),
                    "byte {i}: {err}"
                );
            } else {
                assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {i}");
            }
        }
        // A payload flip names the sending peer.
        let mut bad = wire.clone();
        bad[HEADER_LEN] ^= 0x01;
        let err = Frame::read_from(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("node 5"), "{err}");
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn crc_errors_bump_the_obs_counter() {
        let mut wire = Vec::new();
        Frame::Done { from: 2 }.write_to(&mut wire).unwrap();
        wire[1] ^= 0xFF;
        obs::enable(obs::DEFAULT_CAPACITY);
        let before = obs::metrics_snapshot()
            .counters
            .get("net.frames.crc_error")
            .copied()
            .unwrap_or(0);
        assert!(Frame::read_from(&mut wire.as_slice()).is_err());
        let after = obs::metrics_snapshot()
            .counters
            .get("net.frames.crc_error")
            .copied()
            .unwrap_or(0);
        obs::disable();
        assert!(after > before, "counter must record the mismatch");
    }
}
