//! Wire frames for the exchange protocol.
//!
//! Every message between nodes is one length-prefixed frame:
//!
//! ```text
//! +------+--------+----------------+--------------------+
//! | tag  | from   | payload length |      payload       |
//! | u8   | u32 BE | u32 BE         | `len` bytes        |
//! +------+--------+----------------+--------------------+
//! ```
//!
//! The `from` field carries the sender's node id so a receiver multiplexing
//! many peers over one queue can attribute each frame. Payload size is
//! capped at [`MAX_PAYLOAD`] so a corrupt length prefix cannot trigger a
//! multi-gigabyte allocation.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload (16 MB — far above the batch
/// sizes the exchange actually uses).
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Protocol messages. `Sample` and `Splitters` run the coordinator phase;
/// `Data`/`Done` run the all-to-all exchange; `Bye` is the graceful
/// transport shutdown marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator: this node's sampled keys (concatenated
    /// KEY_LEN-byte keys).
    Sample { from: u32, keys: Vec<u8> },
    /// Coordinator → worker: the chosen splitters (concatenated keys).
    Splitters { from: u32, keys: Vec<u8> },
    /// Worker → worker: a batch of whole records destined for the receiver.
    Data { from: u32, records: Vec<u8> },
    /// Worker → worker: no more `Data` frames will follow from `from`.
    Done { from: u32 },
    /// Transport-level goodbye: the sender is closing its connection.
    Bye { from: u32 },
}

impl Frame {
    /// The sending node's id.
    pub fn from(&self) -> u32 {
        match self {
            Frame::Sample { from, .. }
            | Frame::Splitters { from, .. }
            | Frame::Data { from, .. }
            | Frame::Done { from }
            | Frame::Bye { from } => *from,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Frame::Sample { .. } => 1,
            Frame::Splitters { .. } => 2,
            Frame::Data { .. } => 3,
            Frame::Done { .. } => 4,
            Frame::Bye { .. } => 5,
        }
    }

    fn payload(&self) -> &[u8] {
        match self {
            Frame::Sample { keys, .. } | Frame::Splitters { keys, .. } => keys,
            Frame::Data { records, .. } => records,
            Frame::Done { .. } | Frame::Bye { .. } => &[],
        }
    }

    /// Bytes this frame occupies on the wire, header included.
    pub fn wire_len(&self) -> u64 {
        9 + self.payload().len() as u64
    }

    /// Write the frame to `w` (one header + payload, no flush).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let payload = self.payload();
        let mut header = [0u8; 9];
        header[0] = self.tag();
        header[1..5].copy_from_slice(&self.from().to_be_bytes());
        header[5..9].copy_from_slice(&(payload.len() as u32).to_be_bytes());
        w.write_all(&header)?;
        w.write_all(payload)
    }

    /// Read one frame from `r`. Returns `Ok(None)` on clean EOF at a frame
    /// boundary; an EOF mid-frame is an `UnexpectedEof` error.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Frame>> {
        let mut header = [0u8; 9];
        match r.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let tag = header[0];
        let from = u32::from_be_bytes(header[1..5].try_into().expect("4 bytes"));
        let len = u32::from_be_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame payload {len} exceeds cap {MAX_PAYLOAD}"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        let frame = match tag {
            1 => Frame::Sample {
                from,
                keys: payload,
            },
            2 => Frame::Splitters {
                from,
                keys: payload,
            },
            3 => Frame::Data {
                from,
                records: payload,
            },
            4 => Frame::Done { from },
            5 => Frame::Bye { from },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame tag {other}"),
                ))
            }
        };
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let mut wire = Vec::new();
        f.write_to(&mut wire).unwrap();
        assert_eq!(wire.len() as u64, f.wire_len());
        let got = Frame::read_from(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(got, f);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(Frame::Sample {
            from: 3,
            keys: vec![1; 30],
        });
        roundtrip(Frame::Splitters {
            from: 0,
            keys: vec![9; 10],
        });
        roundtrip(Frame::Data {
            from: 7,
            records: (0..200).collect(),
        });
        roundtrip(Frame::Done { from: 2 });
        roundtrip(Frame::Bye { from: 1 });
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut wire = Vec::new();
        let frames = [
            Frame::Done { from: 0 },
            Frame::Data {
                from: 1,
                records: vec![5; 17],
            },
            Frame::Bye { from: 2 },
        ];
        for f in &frames {
            f.write_to(&mut wire).unwrap();
        }
        let mut r = wire.as_slice();
        for f in &frames {
            assert_eq!(Frame::read_from(&mut r).unwrap().unwrap(), *f);
        }
        assert_eq!(Frame::read_from(&mut r).unwrap(), None);
    }

    #[test]
    fn clean_eof_is_none_but_midframe_eof_is_error() {
        let mut wire = Vec::new();
        Frame::Data {
            from: 0,
            records: vec![1; 50],
        }
        .write_to(&mut wire)
        .unwrap();
        let truncated = &wire[..wire.len() - 10];
        let err = Frame::read_from(&mut &truncated[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(Frame::read_from(&mut &[][..]).unwrap().is_none());
    }

    #[test]
    fn oversize_length_prefix_is_rejected_without_allocating() {
        let mut wire = vec![3u8, 0, 0, 0, 0];
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = Frame::read_from(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
