//! The pluggable node-to-node transport.
//!
//! A [`Transport`] gives one node of an N-node cluster a way to send a
//! [`Frame`] to any peer and to receive whatever frames peers sent it, in
//! per-peer FIFO order. Two implementations ship: the in-process
//! [`LoopbackTransport`] here (mpsc channels standing in for the
//! interconnect) and the real-socket [`TcpTransport`](crate::tcp) for
//! multi-process clusters.

use std::io;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use crate::frame::Frame;

/// One node's view of the cluster interconnect.
///
/// `send` may block (back-pressure); `recv` blocks until a frame arrives.
/// Frames from a single peer arrive in the order they were sent; frames
/// from different peers interleave arbitrarily. Sending to your own id is
/// allowed and loops the frame back into your own `recv` queue — the
/// coordinator phase relies on it so node 0 needs no special casing.
pub trait Transport: Send {
    /// This node's id in `0..nodes()`.
    fn node(&self) -> usize;

    /// Cluster size.
    fn nodes(&self) -> usize;

    /// Deliver `frame` to node `to`.
    fn send(&mut self, to: usize, frame: Frame) -> io::Result<()>;

    /// The next frame addressed to this node, blocking until one arrives.
    /// Errors when the interconnect is no longer able to deliver (peer died
    /// mid-stream, all peers gone).
    fn recv(&mut self) -> io::Result<Frame>;

    /// Like [`recv`](Transport::recv), but gives up with a `TimedOut` error
    /// if no frame arrives within `timeout` — the deadline primitive that
    /// keeps one hung or crashed peer from blocking a node forever.
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Frame>;

    /// Graceful shutdown: tell peers this node is done sending and release
    /// whatever the implementation holds. Idempotent.
    fn shutdown(&mut self) -> io::Result<()>;
}

/// In-process transport: every node holds a `Sender` into every other
/// node's unbounded inbox. Unbounded so that a worker may ship its whole
/// scatter before draining its own inbox without deadlocking (the TCP
/// transport gets the same property from its concurrent reader threads).
pub struct LoopbackTransport {
    node: usize,
    txs: Vec<Sender<Frame>>,
    rx: Receiver<Frame>,
}

/// Build the full cluster: one connected transport per node.
pub fn loopback_cluster(nodes: usize) -> Vec<LoopbackTransport> {
    assert!(nodes >= 1);
    let (txs, rxs): (Vec<Sender<Frame>>, Vec<Receiver<Frame>>) =
        (0..nodes).map(|_| channel()).unzip();
    rxs.into_iter()
        .enumerate()
        .map(|(node, rx)| LoopbackTransport {
            node,
            txs: txs.clone(),
            rx,
        })
        .collect()
}

impl Transport for LoopbackTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.txs.len()
    }

    fn send(&mut self, to: usize, frame: Frame) -> io::Result<()> {
        self.txs[to].send(frame).map_err(|_| {
            io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!("loopback peer {to} has hung up"),
            )
        })
    }

    fn recv(&mut self) -> io::Result<Frame> {
        self.rx.recv().map_err(|_| {
            io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "all loopback peers have hung up",
            )
        })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Frame> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no frame within {timeout:?}"),
            )),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "all loopback peers have hung up",
            )),
        }
    }

    fn shutdown(&mut self) -> io::Result<()> {
        // Dropping the senders is the whole protocol for channels; nothing
        // to do until then. Replace our self-sender so the inbox can drain
        // to empty once the cluster winds down.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_route_between_nodes_in_fifo_order() {
        let mut cluster = loopback_cluster(3);
        let mut c = cluster.remove(2);
        let mut b = cluster.remove(1);
        let mut a = cluster.remove(0);
        assert_eq!(a.node(), 0);
        assert_eq!(c.nodes(), 3);

        a.send(2, Frame::Done { from: 0 }).unwrap();
        a.send(
            2,
            Frame::Data {
                from: 0,
                records: vec![1, 2, 3],
            },
        )
        .unwrap();
        b.send(2, Frame::Done { from: 1 }).unwrap();

        let mut from_a = Vec::new();
        for _ in 0..3 {
            let f = c.recv().unwrap();
            if f.from() == 0 {
                from_a.push(f);
            }
        }
        assert_eq!(
            from_a,
            vec![
                Frame::Done { from: 0 },
                Frame::Data {
                    from: 0,
                    records: vec![1, 2, 3]
                }
            ]
        );
    }

    #[test]
    fn self_send_loops_back() {
        let mut cluster = loopback_cluster(1);
        let t = &mut cluster[0];
        t.send(
            0,
            Frame::Sample {
                from: 0,
                keys: vec![7; 10],
            },
        )
        .unwrap();
        assert_eq!(
            t.recv().unwrap(),
            Frame::Sample {
                from: 0,
                keys: vec![7; 10]
            }
        );
    }

    #[test]
    fn recv_timeout_surfaces_as_timed_out() {
        let mut cluster = loopback_cluster(2);
        let mut a = cluster.remove(0);
        let t0 = std::time::Instant::now();
        let err = a.recv_timeout(Duration::from_millis(30)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(t0.elapsed() < Duration::from_secs(2));
        // A queued frame still arrives instantly under a deadline.
        a.send(0, Frame::Done { from: 0 }).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(5)).unwrap(),
            Frame::Done { from: 0 }
        );
    }

    #[test]
    fn recv_errors_once_every_peer_is_gone() {
        let mut cluster = loopback_cluster(2);
        let mut b = cluster.remove(1);
        drop(cluster); // node 0 (and its clone of b's sender) is gone
        drop(b.txs.drain(..)); // including b's own self-sender
        let err = b.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
    }
}
