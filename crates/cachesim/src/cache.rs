//! A set-associative cache model with LRU replacement.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.line * self.ways)
    }
}

/// One cache level. Tags are full line addresses; replacement is true LRU
/// (fine for the small associativities modeled here).
pub struct Cache {
    cfg: CacheConfig,
    /// Per set: resident line addresses, most recently used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty cache.
    ///
    /// # Panics
    /// If the geometry is inconsistent (size not divisible by line × ways,
    /// or line not a power of two).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line must be a power of two");
        assert!(cfg.ways >= 1, "need at least one way");
        assert!(
            cfg.size.is_multiple_of(cfg.line * cfg.ways) && cfg.size > 0,
            "size {} not divisible by line {} × ways {}",
            cfg.size,
            cfg.line,
            cfg.ways
        );
        let sets = vec![Vec::with_capacity(cfg.ways); cfg.sets()];
        Cache {
            cfg,
            sets,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Probe one *line* (addr may be any byte in it). Returns `true` on hit;
    /// on miss the line is filled (possibly evicting the set's LRU line).
    pub fn access_line(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.cfg.line as u64;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            set.remove(pos);
            set.insert(0, line_addr);
            self.hits += 1;
            true
        } else {
            set.insert(0, line_addr);
            if set.len() > self.cfg.ways {
                set.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Probe every line an access of `size` bytes at `addr` touches;
    /// returns the number of line *misses*.
    pub fn access(&mut self, addr: u64, size: u64) -> u64 {
        debug_assert!(size > 0);
        let first = addr / self.cfg.line as u64;
        let last = (addr + size - 1) / self.cfg.line as u64;
        let mut misses = 0;
        for line in first..=last {
            if !self.access_line(line * self.cfg.line as u64) {
                misses += 1;
            }
        }
        misses
    }

    /// Total line hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total line misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all probes.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Forget contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
#[allow(clippy::erasing_op, clippy::identity_op)] // 0 * 16 etc. keep set math legible
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 16 B lines = 128 B.
        Cache::new(CacheConfig {
            size: 128,
            line: 16,
            ways: 2,
        })
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access_line(0));
        assert!(c.access_line(0));
        assert!(c.access_line(15)); // same line
        assert!(!c.access_line(16)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny(); // 4 sets: line_addr % 4 selects set
                            // Three lines mapping to set 0: line addresses 0, 4, 8.
        assert!(!c.access_line(0 * 16));
        assert!(!c.access_line(4 * 16));
        assert!(!c.access_line(8 * 16)); // evicts line 0 (LRU)
        assert!(!c.access_line(0 * 16)); // line 0 gone
        assert!(c.access_line(8 * 16)); // line 8 still resident
    }

    #[test]
    fn lru_order_updates_on_hit() {
        let mut c = tiny();
        c.access_line(0 * 16);
        c.access_line(4 * 16);
        c.access_line(0 * 16); // touch 0 → 4 becomes LRU
        c.access_line(8 * 16); // evicts 4
        assert!(c.access_line(0 * 16));
        assert!(!c.access_line(4 * 16));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size: 64,
            line: 16,
            ways: 1,
        }); // 4 sets
        assert!(!c.access_line(0));
        assert!(!c.access_line(64)); // same set, evicts
        assert!(!c.access_line(0));
    }

    #[test]
    fn multi_line_access_counts_spanned_lines() {
        let mut c = tiny();
        // 40 bytes starting at 8 spans lines 0, 1, 2, 3? 8..48 → lines 0,1,2.
        assert_eq!(c.access(8, 40), 3);
        assert_eq!(c.access(8, 40), 0);
    }

    #[test]
    fn sequential_scan_miss_ratio_is_line_rate() {
        let mut c = Cache::new(CacheConfig {
            size: 8 * 1024,
            line: 32,
            ways: 1,
        });
        // Scan 64 KB in 8-byte reads: 1 miss per 32 B line = 25% of probes.
        for i in 0..8192u64 {
            c.access(i * 8, 8);
        }
        assert!((c.miss_ratio() - 0.25).abs() < 0.01, "{}", c.miss_ratio());
    }

    #[test]
    fn working_set_smaller_than_cache_stays_resident() {
        let mut c = Cache::new(CacheConfig {
            size: 8 * 1024,
            line: 32,
            ways: 1,
        });
        // Touch 4 KB twice: second pass must be all hits.
        for i in 0..128u64 {
            c.access_line(i * 32);
        }
        let misses_before = c.misses();
        for i in 0..128u64 {
            c.access_line(i * 32);
        }
        assert_eq!(c.misses(), misses_before);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access_line(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access_line(0));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_rejected() {
        Cache::new(CacheConfig {
            size: 100,
            line: 16,
            ways: 2,
        });
    }
}
