//! Figure 3: "How far away is the data?"
//!
//! The paper's whimsical scale: clock ticks to each level of the memory
//! hierarchy (5 ns ticks on the 200 MHz Alpha), next to a human analogy
//! where one tick is one minute — registers in your head, the on-chip cache
//! on this campus, memory in Sacramento, disk on Pluto, tape two thousand
//! years out. [`figure3`] returns the modeled rows; `exp_fig3` additionally
//! measures the *host's* hierarchy with a pointer chase for comparison.

/// One level of the hierarchy on the Figure 3 scale.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyRow {
    /// Level name.
    pub level: &'static str,
    /// Clock ticks to reach it (5 ns ticks in the paper's scale).
    pub clock_ticks: f64,
    /// The paper's San-Francisco-centred analogy.
    pub analogy: &'static str,
}

impl LatencyRow {
    /// The human-scale time if one tick were one minute.
    pub fn human_minutes(&self) -> f64 {
        self.clock_ticks
    }

    /// Latency in nanoseconds at the paper's 5 ns clock.
    pub fn nanoseconds(&self) -> f64 {
        self.clock_ticks * 5.0
    }
}

/// The Figure 3 rows (1994 constants).
pub fn figure3() -> Vec<LatencyRow> {
    vec![
        LatencyRow {
            level: "registers",
            clock_ticks: 1.0,
            analogy: "my head (1 min)",
        },
        LatencyRow {
            level: "on-chip cache",
            clock_ticks: 2.0,
            analogy: "this room (2 min)",
        },
        LatencyRow {
            level: "on-board cache",
            clock_ticks: 10.0,
            analogy: "this campus (10 min)",
        },
        LatencyRow {
            level: "memory",
            clock_ticks: 100.0,
            analogy: "Sacramento (1.5 hours)",
        },
        LatencyRow {
            level: "disk",
            clock_ticks: 1e6,
            analogy: "Pluto (2 years)",
        },
        LatencyRow {
            level: "tape/optical robot",
            clock_ticks: 1e9,
            analogy: "Andromeda (2,000 years)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_ordered_and_span_nine_decades() {
        let rows = figure3();
        assert_eq!(rows.len(), 6);
        assert!(rows.windows(2).all(|w| w[0].clock_ticks < w[1].clock_ticks));
        assert_eq!(rows.first().unwrap().clock_ticks, 1.0);
        assert_eq!(rows.last().unwrap().clock_ticks, 1e9);
    }

    #[test]
    fn paper_scale_conversions() {
        let mem = &figure3()[3];
        assert_eq!(mem.level, "memory");
        assert_eq!(mem.nanoseconds(), 500.0); // 100 ticks × 5 ns
        assert_eq!(mem.human_minutes(), 100.0);
    }
}
