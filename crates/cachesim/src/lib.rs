//! Trace-driven cache-hierarchy simulation.
//!
//! The AlphaSort paper's processor-side claims are statements about memory
//! *access patterns*: replacement-selection's tournament "thrashes on the
//! bottom levels" (Figure 4) while key-prefix QuickSort "fits entirely in
//! the on-board cache, and partially in the on-chip cache"; clustering
//! tournament nodes so parent/child share a cache line "reduces cache
//! misses by a factor of two or three"; the merge-phase gather "has
//! terrible cache and TLB behavior". Those patterns are hardware
//! independent, so a trace-driven simulator measures them exactly — the
//! substitute for the Alpha hardware event monitor the authors used.
//!
//! * [`cache`] — a set-associative cache model with LRU replacement,
//! * [`hier`] — the Alpha-AXP-like hierarchy: 8 KB direct-mapped on-chip
//!   D-cache (32 B lines) → 4 MB board B-cache → memory, plus a 32-entry
//!   data TLB, and a stall-cycle model for Figure-7-style breakdowns,
//! * [`traced`] — the sort kernels re-run against the simulator: all four
//!   QuickSort representations, replacement-selection with naive and
//!   clustered tournament layouts, and the merge gather,
//! * [`latency`] — the Figure 3 "how far away is the data" scale.
//!
//! ```
//! use alphasort_cachesim::{traced_quicksort, Hierarchy, QuickSortVariant};
//!
//! // Replay a record sort and a key-prefix sort of 20k records against the
//! // Alpha hierarchy: the prefix variant must miss far less (§4).
//! let mut m1 = Hierarchy::alpha_axp();
//! let rec = traced_quicksort(20_000, 1, QuickSortVariant::Record, &mut m1);
//! let mut m2 = Hierarchy::alpha_axp();
//! let pfx = traced_quicksort(20_000, 1, QuickSortVariant::KeyPrefix, &mut m2);
//! assert!(rec.d_misses_per_elem() > 2.0 * pfx.d_misses_per_elem());
//! ```

pub mod cache;
pub mod hier;
pub mod latency;
pub mod traced;

pub use cache::{Cache, CacheConfig};
pub use hier::{AccessKind, CycleModel, HierConfig, HierStats, Hierarchy};
pub use traced::{
    traced_gather, traced_merge, traced_quicksort, traced_tournament_sort, QuickSortVariant,
    TournamentLayout, TracedReport,
};
