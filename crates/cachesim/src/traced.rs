//! Sort kernels replayed against the simulated hierarchy.
//!
//! These re-run the *algorithms* of `alphasort-core` while issuing every
//! load and store to a [`Hierarchy`], reproducing the paper's cache
//! arguments quantitatively:
//!
//! * [`traced_quicksort`] — the four §4 representations, so the miss-count
//!   ordering record ≫ pointer ≫ key ≫ key-prefix can be measured;
//! * [`traced_tournament_sort`] — replacement-selection with the naive heap
//!   layout (Figure 4's thrashing tree) and the *clustered* layout that
//!   packs parent/child node pairs into one cache line (§4's "reduces cache
//!   misses by a factor of two or three");
//! * [`traced_merge`] — the merge tournament itself, one node per run,
//!   "small … excellent cache behavior";
//! * [`traced_gather`] — the merge-phase gather, whose pseudo-random record
//!   reads have "terrible cache and TLB behavior".
//!
//! Synthetic memory map (nothing overlaps):
//! records at 256 MB, entry arrays at 1 GB, tree nodes at 2 GB, output
//! buffers at 3 GB.

use crate::hier::{HierStats, Hierarchy};

/// Base address of the record buffer (records are 100 bytes apart).
pub const RECORD_BASE: u64 = 0x1000_0000;
/// Base address of sort-entry arrays.
pub const ENTRY_BASE: u64 = 0x4000_0000;
/// Base address of tournament-tree nodes.
pub const TREE_BASE: u64 = 0x8000_0000;
/// Base address of the gather output buffer.
pub const OUT_BASE: u64 = 0xC000_0000;

/// Record length, matching the benchmark.
const RECORD_LEN: u64 = 100;
/// Key bytes read per full-key comparison.
const KEY_LEN: u64 = 10;

/// Outcome of one traced workload.
#[derive(Clone, Debug)]
pub struct TracedReport {
    /// Human label for tables.
    pub label: String,
    /// Elements processed (records sorted / gathered).
    pub elements: u64,
    /// Hierarchy counters for the workload.
    pub stats: HierStats,
}

impl TracedReport {
    /// D-cache misses per element.
    pub fn d_misses_per_elem(&self) -> f64 {
        self.stats.d_misses as f64 / self.elements.max(1) as f64
    }

    /// B-cache (board) misses per element.
    pub fn b_misses_per_elem(&self) -> f64 {
        self.stats.b_misses as f64 / self.elements.max(1) as f64
    }

    /// TLB misses per element.
    pub fn tlb_misses_per_elem(&self) -> f64 {
        self.stats.tlb_misses as f64 / self.elements.max(1) as f64
    }
}

/// Deterministic 64-bit mixer for synthetic keys (SplitMix64).
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which §4 representation the traced QuickSort models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuickSortVariant {
    /// Whole records in place: compares read keys in situ, exchanges move
    /// 2 × 100 bytes.
    Record,
    /// 4-byte pointers: tiny exchanges, but every compare dereferences two
    /// records.
    Pointer,
    /// (10-byte key, pointer) entries of 16 bytes: compares stay in the
    /// array.
    Key,
    /// (8-byte prefix, pointer) entries of 16 bytes: compares stay in the
    /// array and resolve as integer compares.
    KeyPrefix,
    /// Baer & Lin codewords: (4-byte code, pointer) entries of 8 bytes —
    /// twice the cache density of the prefix entries.
    Codeword,
}

impl QuickSortVariant {
    /// The paper's four representations plus the Baer & Lin codeword form.
    pub const ALL: [QuickSortVariant; 5] = [
        QuickSortVariant::Record,
        QuickSortVariant::Pointer,
        QuickSortVariant::Key,
        QuickSortVariant::KeyPrefix,
        QuickSortVariant::Codeword,
    ];

    /// Short label.
    pub fn name(self) -> &'static str {
        match self {
            QuickSortVariant::Record => "record",
            QuickSortVariant::Pointer => "pointer",
            QuickSortVariant::Key => "key",
            QuickSortVariant::KeyPrefix => "key-prefix",
            QuickSortVariant::Codeword => "codeword",
        }
    }

    /// Byte stride of one sort-array element.
    fn elem_size(self) -> u64 {
        match self {
            QuickSortVariant::Record => RECORD_LEN,
            QuickSortVariant::Pointer => 4,
            QuickSortVariant::Key | QuickSortVariant::KeyPrefix => 16,
            QuickSortVariant::Codeword => 8,
        }
    }
}

/// State of one traced QuickSort: the permutation being sorted plus the
/// memory model of where its bytes live.
struct TracedSort<'m> {
    variant: QuickSortVariant,
    /// slot → record index. Sorting permutes this.
    perm: Vec<u32>,
    /// Record keys (synthetic): key of record r is `keys[r]`.
    keys: Vec<u64>,
    mem: &'m mut Hierarchy,
}

impl TracedSort<'_> {
    /// Address of sort-array slot `s`.
    fn slot_addr(&self, s: usize) -> u64 {
        match self.variant {
            QuickSortVariant::Record => RECORD_BASE + s as u64 * RECORD_LEN,
            v => ENTRY_BASE + s as u64 * v.elem_size(),
        }
    }

    /// Address of record `r`'s bytes.
    fn record_addr(&self, r: u32) -> u64 {
        RECORD_BASE + u64::from(r) * RECORD_LEN
    }

    /// Load the comparison key of slot `s`, issuing its memory traffic.
    fn load_key(&mut self, s: usize) -> u64 {
        match self.variant {
            QuickSortVariant::Record => {
                // Key bytes live at the front of the record.
                self.mem.read(self.slot_addr(s), KEY_LEN);
            }
            QuickSortVariant::Pointer => {
                // Read the pointer, then the record's key through it.
                self.mem.read(self.slot_addr(s), 4);
                let r = self.perm[s];
                self.mem.read(self.record_addr(r), KEY_LEN);
            }
            QuickSortVariant::Key => {
                self.mem.read(self.slot_addr(s), KEY_LEN);
            }
            QuickSortVariant::KeyPrefix => {
                self.mem.read(self.slot_addr(s), 8);
            }
            QuickSortVariant::Codeword => {
                self.mem.read(self.slot_addr(s), 4);
            }
        }
        self.keys[self.perm[s] as usize]
    }

    /// Exchange slots `a` and `b`, issuing the representation's traffic.
    fn swap(&mut self, a: usize, b: usize) {
        let sz = self.variant.elem_size();
        // Read both elements, write both elements.
        self.mem.read(self.slot_addr(a), sz);
        self.mem.read(self.slot_addr(b), sz);
        self.mem.write(self.slot_addr(a), sz);
        self.mem.write(self.slot_addr(b), sz);
        self.perm.swap(a, b);
    }

    fn quicksort(&mut self, lo: usize, hi: usize) {
        const CUTOFF: usize = 24;
        let (mut lo, mut hi) = (lo, hi);
        loop {
            let n = hi - lo;
            if n <= CUTOFF {
                self.insertion(lo, hi);
                return;
            }
            let p = self.partition(lo, hi);
            // Recurse small side, loop large side.
            if p - lo < hi - p {
                self.quicksort(lo, p);
                lo = p + 1;
            } else {
                self.quicksort(p + 1, hi);
                hi = p;
            }
        }
    }

    fn partition(&mut self, lo: usize, hi: usize) -> usize {
        let mid = lo + (hi - lo) / 2;
        // Median-of-three into position.
        if self.load_key(mid) < self.load_key(lo) {
            self.swap(mid, lo);
        }
        if self.load_key(hi - 1) < self.load_key(mid) {
            self.swap(hi - 1, mid);
            if self.load_key(mid) < self.load_key(lo) {
                self.swap(mid, lo);
            }
        }
        self.swap(mid, hi - 2);
        let pivot = self.load_key(hi - 2); // pivot key rides in a register
        let mut i = lo;
        let mut j = hi - 2;
        loop {
            loop {
                i += 1;
                if self.load_key(i) >= pivot {
                    break;
                }
            }
            loop {
                j -= 1;
                if self.load_key(j) <= pivot {
                    break;
                }
            }
            if i >= j {
                break;
            }
            self.swap(i, j);
        }
        self.swap(i, hi - 2);
        i
    }

    fn insertion(&mut self, lo: usize, hi: usize) {
        for i in (lo + 1)..hi {
            let mut j = i;
            while j > lo && self.load_key(j) < self.load_key(j - 1) {
                self.swap(j, j - 1);
                j -= 1;
            }
        }
    }
}

/// Trace a QuickSort of `n` records under `variant`. Returns the report;
/// panics (in tests) if the result is unsorted.
pub fn traced_quicksort(
    n: usize,
    seed: u64,
    variant: QuickSortVariant,
    mem: &mut Hierarchy,
) -> TracedReport {
    let mut s = seed;
    let keys: Vec<u64> = (0..n).map(|_| mix(&mut s)).collect();
    let mut sorter = TracedSort {
        variant,
        perm: (0..n as u32).collect(),
        keys,
        mem,
    };
    // Entry extraction pass for the detached representations: stream the
    // records once to build the entry array (the paper's "pairs are
    // streamed into an array").
    match variant {
        QuickSortVariant::Record => {}
        v => {
            for i in 0..n {
                sorter
                    .mem
                    .read(RECORD_BASE + i as u64 * RECORD_LEN, KEY_LEN);
                sorter
                    .mem
                    .write(ENTRY_BASE + i as u64 * v.elem_size(), v.elem_size());
            }
        }
    }
    if n > 1 {
        sorter.quicksort(0, n);
    }
    debug_assert!(
        sorter
            .perm
            .windows(2)
            .all(|w| sorter.keys[w[0] as usize] <= sorter.keys[w[1] as usize]),
        "traced quicksort produced unsorted output"
    );
    TracedReport {
        label: format!("quicksort/{}", variant.name()),
        elements: n as u64,
        stats: mem.stats(),
    }
}

/// Tournament node layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TournamentLayout {
    /// Heap order: node `i` at `TREE_BASE + 8 i`. Parent and child are far
    /// apart except near the root — Figure 4's thrashing case.
    Naive,
    /// Height-2 subtree blocks: a parent and both children share one
    /// 32-byte-aligned block, so every odd-depth node is in its parent's
    /// cache line.
    Clustered,
}

impl TournamentLayout {
    /// Short label.
    pub fn name(self) -> &'static str {
        match self {
            TournamentLayout::Naive => "naive",
            TournamentLayout::Clustered => "clustered",
        }
    }
}

/// Bytes per tournament node: the paper's 8-byte (prefix, pointer) pair.
const NODE_SIZE: u64 = 8;

/// Map a 1-based heap node index to its address under `layout`.
pub fn node_addr(layout: TournamentLayout, node: usize) -> u64 {
    match layout {
        TournamentLayout::Naive => TREE_BASE + node as u64 * NODE_SIZE,
        TournamentLayout::Clustered => {
            // Anchors are nodes at even depth; an anchor owns the 32-byte
            // block {anchor, left child, right child} (3 × 8 = 24 B ≤ 32 B).
            let depth = node.ilog2();
            let (anchor, slot) = if depth.is_multiple_of(2) {
                (node, 0u64)
            } else {
                (node / 2, 1 + (node & 1) as u64)
            };
            // Rank of `anchor` among even-depth nodes in index order:
            // depths 0, 2, …: node ranges [4^k, 2·4^k) hold 4^k anchors.
            let k = anchor.ilog2() / 2;
            let base_rank = ((4u64.pow(k)) - 1) / 3; // 1 + 4 + 16 + …
            let rank = base_rank + (anchor as u64 - 4u64.pow(k));
            TREE_BASE + rank * 32 + slot * NODE_SIZE
        }
    }
}

/// Trace a replacement-selection sort of `n` records through a tournament
/// of `capacity` slots under the given node layout.
///
/// Each step: emit the winner's record (read 100 B, write 100 B to the
/// output), read the replacement record, and replay the leaf→root path
/// (read each node; write on swap). With `record_traffic = false` only the
/// tournament tree's own accesses are traced — the number §4's "reduces
/// cache misses by a factor of two or three" refers to.
pub fn traced_tournament_sort(
    n: usize,
    capacity: usize,
    seed: u64,
    layout: TournamentLayout,
    record_traffic: bool,
    mem: &mut Hierarchy,
) -> TracedReport {
    assert!(capacity >= 2 && n >= capacity);
    let mut s = seed;
    // Functional replacement-selection over synthetic keys; slot i's leaf
    // is heap node capacity + i (complete tree with `capacity` leaves,
    // capacity a power of two for address math).
    let cap = capacity.next_power_of_two();
    let mut slot_key: Vec<(u64, u64)> = Vec::with_capacity(cap); // (run, key)
    let mut slot_rec: Vec<u32> = Vec::with_capacity(cap);
    let mut next_rec = 0u32;
    for _ in 0..cap {
        if (next_rec as usize) < n {
            slot_key.push((0, mix(&mut s)));
            slot_rec.push(next_rec);
            if record_traffic {
                // Initial fill: read the record's key.
                mem.read(RECORD_BASE + u64::from(next_rec) * RECORD_LEN, KEY_LEN);
            }
            next_rec += 1;
        } else {
            slot_key.push((u64::MAX, u64::MAX));
            slot_rec.push(u32::MAX);
        }
    }

    // The loser tree over heap nodes 1..cap; node i holds a slot id.
    // Build bottom-up, writing each node once.
    let mut winners = vec![u32::MAX; 2 * cap];
    let mut loser = vec![u32::MAX; cap];
    for i in 0..cap {
        winners[cap + i] = i as u32;
    }
    for i in (1..cap).rev() {
        let (a, b) = (winners[2 * i], winners[2 * i + 1]);
        let (w, l) = if slot_key[a as usize] <= slot_key[b as usize] {
            (a, b)
        } else {
            (b, a)
        };
        winners[i] = w;
        loser[i] = l;
        mem.write(node_addr(layout, i), NODE_SIZE);
    }
    let mut winner = winners[1];

    let mut emitted = 0u64;
    let mut prev_out: Option<u64> = None;
    while emitted < n as u64 {
        let w = winner as usize;
        let (run, key) = slot_key[w];
        debug_assert!(run != u64::MAX);
        // Emit: read the winning record and copy it out.
        let rec = slot_rec[w];
        if record_traffic {
            mem.read(RECORD_BASE + u64::from(rec) * RECORD_LEN, RECORD_LEN);
            mem.write(OUT_BASE + emitted * RECORD_LEN, RECORD_LEN);
        }
        if let Some(p) = prev_out {
            if run == slot_key[w].0 {
                debug_assert!(p <= key || run > 0, "run order violated");
            }
        }
        prev_out = Some(key);
        emitted += 1;

        // Refill the slot.
        if (next_rec as usize) < n {
            let newkey = mix(&mut s);
            if record_traffic {
                mem.read(RECORD_BASE + u64::from(next_rec) * RECORD_LEN, KEY_LEN);
            }
            slot_key[w] = (if newkey < key { run + 1 } else { run }, newkey);
            slot_rec[w] = next_rec;
            next_rec += 1;
        } else {
            slot_key[w] = (u64::MAX, u64::MAX);
            slot_rec[w] = u32::MAX;
        }

        // Replay leaf → root, touching each node on the path.
        let mut cand = w as u32;
        let mut t = (cap + w) / 2;
        while t >= 1 {
            mem.read(node_addr(layout, t), NODE_SIZE);
            if slot_key[loser[t] as usize] < slot_key[cand as usize] {
                core::mem::swap(&mut loser[t], &mut cand);
                mem.write(node_addr(layout, t), NODE_SIZE);
            }
            if t == 1 {
                break;
            }
            t /= 2;
        }
        winner = cand;
    }

    TracedReport {
        label: format!("tournament/{}", layout.name()),
        elements: n as u64,
        stats: mem.stats(),
    }
}

/// Trace the merge phase proper: a tournament over `runs` sorted runs of
/// (prefix, pointer) entries, producing the ordered pointer string but NOT
/// touching the records (the gather does that; see [`traced_gather`]).
///
/// The tree has one node per *run* — "because the merge tree is small, it
/// has excellent cache behavior" (§4) — so misses per record should be near
/// zero, in contrast to the gather's.
pub fn traced_merge(n: usize, runs: usize, seed: u64, mem: &mut Hierarchy) -> TracedReport {
    assert!(runs >= 1 && n >= runs);
    let mut s = seed;
    let per = n / runs;
    let n = per * runs; // trim the remainder for even runs
                        // (current key, emitted) per run; keys ascend within each run.
    let mut heads: Vec<(u64, usize)> = (0..runs).map(|_| (mix(&mut s) >> 20, 0)).collect();
    let entry_addr = |run: usize, pos: usize| ENTRY_BASE + (run * per + pos) as u64 * 16;
    // Replay-path depth of a tournament with one leaf per run.
    let levels = (usize::BITS - runs.next_power_of_two().leading_zeros() - 1).max(1) as usize;
    let mut emitted = 0usize;
    while emitted < n {
        // The tournament's winner: the minimal live head.
        let w = (0..runs)
            .filter(|&r| heads[r].1 < per)
            .min_by_key(|&r| heads[r].0)
            .expect("some run live");
        // Replay path: touch one tree node per level (read, maybe write).
        let mut node = (runs.next_power_of_two() + w) / 2;
        for _ in 0..levels {
            mem.read(TREE_BASE + node as u64 * 8, 8);
            mem.write(TREE_BASE + node as u64 * 8, 8);
            node = (node / 2).max(1);
        }
        // Advance the winner: read its next entry (sequential in its run).
        mem.read(entry_addr(w, heads[w].1), 16);
        heads[w] = (heads[w].0 + mix(&mut s) % 1024, heads[w].1 + 1);
        emitted += 1;
    }
    TracedReport {
        label: format!("merge/{runs}-way"),
        elements: n as u64,
        stats: mem.stats(),
    }
}

/// Trace the merge-phase gather: `n` records read in pseudo-random order
/// from the input buffer and copied to a sequential output buffer.
pub fn traced_gather(n: usize, seed: u64, mem: &mut Hierarchy) -> TracedReport {
    // Fisher-Yates a permutation — the merged pointer string visits source
    // records in (approximately) uniform random order for random keys.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut s = seed;
    for i in (1..n).rev() {
        let j = (mix(&mut s) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    for (out_pos, &r) in perm.iter().enumerate() {
        mem.read(RECORD_BASE + u64::from(r) * RECORD_LEN, RECORD_LEN);
        mem.write(OUT_BASE + out_pos as u64 * RECORD_LEN, RECORD_LEN);
    }
    TracedReport {
        label: "gather".into(),
        elements: n as u64,
        stats: mem.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::Hierarchy;

    #[test]
    fn quicksort_variants_all_run_and_count() {
        for v in QuickSortVariant::ALL {
            let mut mem = Hierarchy::alpha_axp();
            let r = traced_quicksort(5_000, 1, v, &mut mem);
            assert_eq!(r.elements, 5_000);
            assert!(r.stats.accesses > 0, "{v:?} issued no accesses");
        }
    }

    #[test]
    fn key_prefix_has_fewest_d_misses() {
        // The §4 ordering: record ≫ pointer > key ≥ key-prefix.
        let n = 20_000;
        let mut misses = Vec::new();
        for v in QuickSortVariant::ALL {
            let mut mem = Hierarchy::alpha_axp();
            let r = traced_quicksort(n, 7, v, &mut mem);
            misses.push((v, r.stats.d_misses));
        }
        let rec = misses[0].1;
        let ptr = misses[1].1;
        let key = misses[2].1;
        let pfx = misses[3].1;
        assert!(rec > ptr, "record {rec} vs pointer {ptr}");
        assert!(ptr > key, "pointer {ptr} vs key {key}");
        assert!(key >= pfx, "key {key} vs prefix {pfx}");
        assert!(rec as f64 > 2.0 * pfx as f64, "record/prefix < 2:1");
    }

    #[test]
    fn clustered_addresses_share_lines_with_parents() {
        // Every odd-depth node must land in the same 32-byte line as its
        // parent.
        for node in 2..2048usize {
            let depth = node.ilog2();
            if depth % 2 == 1 {
                let a = node_addr(TournamentLayout::Clustered, node);
                let p = node_addr(TournamentLayout::Clustered, node / 2);
                assert_eq!(a / 32, p / 32, "node {node} not with parent");
            }
        }
    }

    #[test]
    fn clustered_addresses_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for node in 1..4096usize {
            let a = node_addr(TournamentLayout::Clustered, node);
            assert!(seen.insert(a), "node {node} collides at {a:#x}");
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn tournament_emits_all_records() {
        let mut mem = Hierarchy::alpha_axp();
        let r = traced_tournament_sort(4_096, 512, 3, TournamentLayout::Naive, true, &mut mem);
        assert_eq!(r.elements, 4_096);
    }

    #[test]
    fn clustering_reduces_tree_misses() {
        // Large tournament (working set ≫ D-cache): the clustered layout
        // must cut D-misses noticeably. Counts include the (identical)
        // record traffic of both variants, so the visible gap understates
        // the tree-only gap.
        let (n, w) = (60_000, 16_384);
        let mut m1 = Hierarchy::alpha_axp();
        let naive = traced_tournament_sort(n, w, 5, TournamentLayout::Naive, false, &mut m1);
        let mut m2 = Hierarchy::alpha_axp();
        let clus = traced_tournament_sort(n, w, 5, TournamentLayout::Clustered, false, &mut m2);
        assert!(
            (naive.stats.d_misses as f64) > 1.15 * clus.stats.d_misses as f64,
            "naive {} vs clustered {}",
            naive.stats.d_misses,
            clus.stats.d_misses
        );
    }

    #[test]
    fn quicksort_beats_tournament_on_misses() {
        // Figure 4's headline: for the same records sorted, the tournament
        // misses far more than the cache-resident QuickSort.
        let n = 30_000;
        let mut m1 = Hierarchy::alpha_axp();
        let t = traced_tournament_sort(n, 8_192, 9, TournamentLayout::Naive, true, &mut m1);
        let mut m2 = Hierarchy::alpha_axp();
        let q = traced_quicksort(n, 9, QuickSortVariant::KeyPrefix, &mut m2);
        // Exclude the output-copy traffic tournament does (quicksort's
        // gather is traced separately) by comparing per-element d-misses
        // with a generous factor.
        assert!(
            t.d_misses_per_elem() > 2.0 * q.d_misses_per_elem(),
            "tournament {} vs quicksort {}",
            t.d_misses_per_elem(),
            q.d_misses_per_elem()
        );
    }

    #[test]
    fn merge_tree_is_cache_resident() {
        // §4: "Because the merge tree is small, it has excellent cache
        // behavior." 10-way merge of 50k records: well under 1 D-miss per
        // record, and orders of magnitude below the gather's.
        let mut mem = Hierarchy::alpha_axp();
        let m = traced_merge(50_000, 10, 3, &mut mem);
        assert!(
            m.d_misses_per_elem() < 1.0,
            "merge d/elem {}",
            m.d_misses_per_elem()
        );
        let mut mem2 = Hierarchy::alpha_axp();
        let g = traced_gather(50_000, 3, &mut mem2);
        assert!(
            g.d_misses_per_elem() > 4.0 * m.d_misses_per_elem(),
            "gather {} vs merge {}",
            g.d_misses_per_elem(),
            m.d_misses_per_elem()
        );
    }

    #[test]
    fn merge_counts_all_records() {
        let mut mem = Hierarchy::alpha_axp();
        let m = traced_merge(10_000, 7, 1, &mut mem);
        // 10_000 trimmed to 7 × 1428.
        assert_eq!(m.elements, 7 * (10_000 / 7) as u64);
    }

    #[test]
    fn gather_has_terrible_tlb_behaviour() {
        let mut mem = Hierarchy::alpha_axp();
        // 50 k records = 5 MB, far over the TLB's 32 × 8 KB = 256 KB reach.
        let r = traced_gather(50_000, 11, &mut mem);
        assert!(
            r.tlb_misses_per_elem() > 0.5,
            "tlb/elem {}",
            r.tlb_misses_per_elem()
        );
        // Random 100-byte reads over 5 MB: most of the 4 lines per record
        // miss in D.
        assert!(
            r.d_misses_per_elem() > 3.0,
            "d/elem {}",
            r.d_misses_per_elem()
        );
    }
}
