//! The modeled memory hierarchy: D-cache → B-cache → memory, plus TLB.
//!
//! Geometry defaults to the DEC 7000 AXP of the paper: an 8 KB direct-mapped
//! on-chip data cache with 32-byte lines ("the entire cache line of 32 bytes
//! is brought into the on-chip cache"), a 4 MB unified board cache ("the
//! on-board cache (4MB in the case of the DEC 7000 AXP)"), and a small data
//! translation buffer whose misses the paper's PAL-code time (9%, "mostly
//! handling address translation buffer (DTB) misses") reflects.

use crate::cache::{Cache, CacheConfig};

/// Whether an access reads or writes (both fill lines identically in this
/// write-allocate model; the distinction is kept for reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// Hierarchy geometry.
#[derive(Clone, Copy, Debug)]
pub struct HierConfig {
    /// On-chip data cache.
    pub dcache: CacheConfig,
    /// Board cache.
    pub bcache: CacheConfig,
    /// Page size for the TLB, bytes.
    pub page: usize,
    /// TLB entries (fully associative).
    pub tlb_entries: usize,
}

impl HierConfig {
    /// The paper's DEC 7000 AXP (Alpha 21064) configuration.
    pub fn alpha_axp() -> Self {
        HierConfig {
            dcache: CacheConfig {
                size: 8 * 1024,
                line: 32,
                ways: 1,
            },
            bcache: CacheConfig {
                size: 4 * 1024 * 1024,
                line: 32,
                ways: 1,
            },
            page: 8 * 1024,
            tlb_entries: 32,
        }
    }
}

/// Per-level counters after a traced workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierStats {
    /// Total accesses (each may touch several lines).
    pub accesses: u64,
    /// Line probes that missed the D-cache (went to the B-cache).
    pub d_misses: u64,
    /// Line probes that also missed the B-cache (went to memory).
    pub b_misses: u64,
    /// Page probes that missed the TLB.
    pub tlb_misses: u64,
    /// Total line probes issued.
    pub line_probes: u64,
}

/// Stall-cycle weights. Defaults follow the paper's flavor of machine: a
/// D-miss serviced from the B-cache costs ~10 cycles, a B-miss from main
/// memory ~50, a DTB miss ~40 (PAL-code fill).
#[derive(Clone, Copy, Debug)]
pub struct CycleModel {
    /// Cycles per executed access when everything hits (issue cost).
    pub issue: f64,
    /// Extra cycles per D-cache miss serviced by the B-cache.
    pub d_miss: f64,
    /// Extra cycles per B-cache miss serviced by memory.
    pub b_miss: f64,
    /// Extra cycles per TLB miss.
    pub tlb_miss: f64,
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel {
            issue: 1.0,
            d_miss: 10.0,
            b_miss: 50.0,
            tlb_miss: 40.0,
        }
    }
}

impl CycleModel {
    /// Estimated cycles for a traced workload.
    pub fn cycles(&self, s: &HierStats) -> f64 {
        s.accesses as f64 * self.issue
            + s.d_misses as f64 * self.d_miss
            + s.b_misses as f64 * self.b_miss
            + s.tlb_misses as f64 * self.tlb_miss
    }

    /// Fraction of cycles spent stalled (everything but issue).
    pub fn stall_fraction(&self, s: &HierStats) -> f64 {
        let total = self.cycles(s);
        if total == 0.0 {
            return 0.0;
        }
        1.0 - (s.accesses as f64 * self.issue) / total
    }
}

/// The full modeled hierarchy.
pub struct Hierarchy {
    cfg: HierConfig,
    dcache: Cache,
    bcache: Cache,
    /// TLB modeled as a fully associative cache of pages.
    tlb: Cache,
    stats: HierStats,
}

impl Hierarchy {
    /// Build an empty hierarchy.
    pub fn new(cfg: HierConfig) -> Self {
        let tlb = Cache::new(CacheConfig {
            size: cfg.page * cfg.tlb_entries,
            line: cfg.page,
            ways: cfg.tlb_entries,
        });
        Hierarchy {
            dcache: Cache::new(cfg.dcache),
            bcache: Cache::new(cfg.bcache),
            tlb,
            stats: HierStats::default(),
            cfg,
        }
    }

    /// The paper's Alpha AXP hierarchy.
    pub fn alpha_axp() -> Self {
        Self::new(HierConfig::alpha_axp())
    }

    /// The geometry.
    pub fn config(&self) -> &HierConfig {
        &self.cfg
    }

    /// Issue one data access of `size` bytes at `addr`.
    pub fn access(&mut self, _kind: AccessKind, addr: u64, size: u64) {
        debug_assert!(size > 0);
        self.stats.accesses += 1;
        let line = self.cfg.dcache.line as u64;
        let first = addr / line;
        let last = (addr + size - 1) / line;
        for l in first..=last {
            let a = l * line;
            self.stats.line_probes += 1;
            if !self.dcache.access_line(a) {
                self.stats.d_misses += 1;
                if !self.bcache.access_line(a) {
                    self.stats.b_misses += 1;
                }
            }
        }
        // TLB: probe each page the access touches.
        let page = self.cfg.page as u64;
        let pfirst = addr / page;
        let plast = (addr + size - 1) / page;
        for p in pfirst..=plast {
            if !self.tlb.access_line(p * page) {
                self.stats.tlb_misses += 1;
            }
        }
    }

    /// Shorthand for a read.
    #[inline]
    pub fn read(&mut self, addr: u64, size: u64) {
        self.access(AccessKind::Read, addr, size);
    }

    /// Shorthand for a write.
    #[inline]
    pub fn write(&mut self, addr: u64, size: u64) {
        self.access(AccessKind::Write, addr, size);
    }

    /// Counters so far.
    pub fn stats(&self) -> HierStats {
        self.stats
    }

    /// Clear contents and counters.
    pub fn reset(&mut self) {
        self.dcache.reset();
        self.bcache.reset();
        self.tlb.reset();
        self.stats = HierStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_cascades_d_then_b() {
        let mut h = Hierarchy::alpha_axp();
        h.read(0, 8);
        let s = h.stats();
        assert_eq!(s.accesses, 1);
        assert_eq!(s.d_misses, 1);
        assert_eq!(s.b_misses, 1);
        assert_eq!(s.tlb_misses, 1);

        h.read(0, 8); // now resident everywhere
        let s = h.stats();
        assert_eq!(s.d_misses, 1);
        assert_eq!(s.b_misses, 1);
        assert_eq!(s.tlb_misses, 1);
    }

    #[test]
    fn working_set_between_caches_hits_b_only() {
        let mut h = Hierarchy::alpha_axp();
        // 64 KB working set: way over the 8 KB D-cache, well under 4 MB B.
        for pass in 0..2 {
            for i in 0..2048u64 {
                h.read(i * 32, 8);
            }
            if pass == 0 {
                let s = h.stats();
                assert_eq!(s.d_misses, 2048);
                assert_eq!(s.b_misses, 2048);
            }
        }
        let s = h.stats();
        // Second pass: D still misses (conflict), B all hits.
        assert_eq!(s.b_misses, 2048);
        assert_eq!(s.d_misses, 4096);
    }

    #[test]
    fn small_working_set_lives_in_dcache() {
        let mut h = Hierarchy::alpha_axp();
        for _ in 0..10 {
            for i in 0..128u64 {
                h.read(i * 32, 8); // 4 KB
            }
        }
        let s = h.stats();
        assert_eq!(s.d_misses, 128); // cold only
    }

    #[test]
    fn access_spanning_lines_probes_each() {
        let mut h = Hierarchy::alpha_axp();
        h.read(30, 8); // crosses a 32 B boundary
        assert_eq!(h.stats().line_probes, 2);
    }

    #[test]
    fn tlb_tracks_pages() {
        let mut h = Hierarchy::alpha_axp();
        // Touch 64 distinct pages: 32-entry TLB must miss on a second
        // round-robin pass too.
        for round in 0..2 {
            for p in 0..64u64 {
                h.read(p * 8192, 8);
            }
            let _ = round;
        }
        assert_eq!(h.stats().tlb_misses, 128);
    }

    #[test]
    fn cycle_model_breakdown() {
        let m = CycleModel::default();
        let s = HierStats {
            accesses: 100,
            d_misses: 10,
            b_misses: 5,
            tlb_misses: 1,
            line_probes: 100,
        };
        let cycles = m.cycles(&s);
        assert!((cycles - (100.0 + 100.0 + 250.0 + 40.0)).abs() < 1e-9);
        assert!((m.stall_fraction(&s) - (1.0 - 100.0 / cycles)).abs() < 1e-9);
    }
}
