//! Property tests for the cache model: the set-associative simulator must
//! agree with a naive reference implementation, and the hierarchy's
//! counters must obey their structural invariants. Cases are driven by a
//! seeded [`SplitMix64`] so every run is reproducible.

use alphasort_cachesim::{
    traced_gather, traced_merge, traced_quicksort, traced_tournament_sort, Cache, CacheConfig,
    Hierarchy, QuickSortVariant, TournamentLayout,
};
use alphasort_dmgen::SplitMix64;

/// A deliberately naive LRU cache to check the real one against.
struct ReferenceCache {
    line: u64,
    sets: usize,
    ways: usize,
    /// Per set: (tag, last-use tick).
    contents: Vec<Vec<(u64, u64)>>,
    tick: u64,
}

impl ReferenceCache {
    fn new(cfg: CacheConfig) -> Self {
        ReferenceCache {
            line: cfg.line as u64,
            sets: cfg.sets(),
            ways: cfg.ways,
            contents: vec![Vec::new(); cfg.sets()],
            tick: 0,
        }
    }

    fn access_line(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tag = addr / self.line;
        let set = &mut self.contents[(tag % self.sets as u64) as usize];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.tick;
            return true;
        }
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            set.remove(lru);
        }
        set.push((tag, self.tick));
        false
    }
}

fn any_config(r: &mut SplitMix64) -> CacheConfig {
    let line = 1usize << (3 + r.next_below(4)); // 8..64
    let sets = 1usize << r.next_below(4); // 1..8
    let ways = 1 + r.next_below(4) as usize;
    CacheConfig {
        size: line * sets * ways,
        line,
        ways,
    }
}

/// Hit/miss sequence matches the reference exactly, access by access.
#[test]
fn cache_matches_reference_lru() {
    let mut r = SplitMix64::new(0xCA1);
    for case in 0..256 {
        let cfg = any_config(&mut r);
        let addrs: Vec<u64> = (0..1 + r.next_below(299))
            .map(|_| r.next_below(1_024))
            .collect();
        let mut real = Cache::new(cfg);
        let mut reference = ReferenceCache::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let got = real.access_line(a);
            let expect = reference.access_line(a);
            assert_eq!(got, expect, "case {case}: access #{i} (addr {a}) diverged");
        }
    }
}

/// Accesses to a working set no larger than the cache never miss after the
/// first touch of each line.
#[test]
fn small_working_set_has_cold_misses_only() {
    let mut r = SplitMix64::new(0xCA2);
    for case in 0..256 {
        let cfg = any_config(&mut r);
        let seq: Vec<usize> = (0..1 + r.next_below(399))
            .map(|_| r.next_below(64) as usize)
            .collect();
        let mut cache = Cache::new(cfg);
        let lines = cfg.size / cfg.line; // exactly fills the cache
        let distinct: Vec<u64> = (0..lines as u64).map(|i| i * cfg.line as u64).collect();
        for &s in &seq {
            cache.access_line(distinct[s % distinct.len()]);
        }
        let touched: std::collections::HashSet<usize> =
            seq.iter().map(|s| s % distinct.len()).collect();
        assert!(cache.misses() as usize <= touched.len(), "case {case}");
    }
}

/// Hierarchy counter invariants: line probes ≥ accesses, misses can't
/// exceed probes, and B-misses can't exceed D-misses.
#[test]
fn hierarchy_counters_are_consistent() {
    let mut r = SplitMix64::new(0xCA3);
    for case in 0..128 {
        let ops: Vec<(u64, u64)> = (0..1 + r.next_below(199))
            .map(|_| (r.next_below(1_000_000), 1 + r.next_below(255)))
            .collect();
        let mut h = Hierarchy::alpha_axp();
        for &(addr, size) in &ops {
            h.read(addr, size);
        }
        let s = h.stats();
        assert_eq!(s.accesses, ops.len() as u64, "case {case}");
        assert!(s.line_probes >= s.accesses, "case {case}");
        assert!(s.d_misses <= s.line_probes, "case {case}");
        assert!(s.b_misses <= s.d_misses, "case {case}");
    }
}

/// Replaying the same trace twice gives identical counters (the model is
/// deterministic), and reset really clears.
#[test]
fn hierarchy_is_deterministic() {
    let mut r = SplitMix64::new(0xCA4);
    for case in 0..128 {
        let ops: Vec<(u64, u64)> = (0..1 + r.next_below(99))
            .map(|_| (r.next_below(100_000), 1 + r.next_below(63)))
            .collect();
        let run = |h: &mut Hierarchy| {
            for &(addr, size) in &ops {
                h.read(addr, size);
            }
            h.stats()
        };
        let mut h = Hierarchy::alpha_axp();
        let first = run(&mut h);
        h.reset();
        let second = run(&mut h);
        assert_eq!(first, second, "case {case}");
    }
}

/// Every traced kernel is deterministic: same seed, same counters.
#[test]
fn traced_kernels_are_deterministic() {
    const VARIANTS: [QuickSortVariant; 5] = [
        QuickSortVariant::Record,
        QuickSortVariant::Pointer,
        QuickSortVariant::Key,
        QuickSortVariant::KeyPrefix,
        QuickSortVariant::Codeword,
    ];
    let mut r = SplitMix64::new(0xCA5);
    for _ in 0..24 {
        let n = 256 + r.next_below(2_744) as usize;
        let seed = r.next_u64();
        let variant = VARIANTS[r.next_below(5) as usize];
        let run = |f: &dyn Fn(&mut Hierarchy)| {
            let mut h = Hierarchy::alpha_axp();
            f(&mut h);
            h.stats()
        };
        let q = |h: &mut Hierarchy| {
            traced_quicksort(n, seed, variant, h);
        };
        assert_eq!(run(&q), run(&q));
        let g = |h: &mut Hierarchy| {
            traced_gather(n, seed, h);
        };
        assert_eq!(run(&g), run(&g));
    }
}

/// Tournament and merge kernels count every record exactly once and issue
/// a sane number of accesses for arbitrary sizes/layouts.
#[test]
fn traced_tournament_and_merge_account_all_records() {
    let mut r = SplitMix64::new(0xCA6);
    for case in 0..24 {
        let n = 64 + r.next_below(1_936) as usize;
        let cap_pow = 1 + r.next_below(5) as u32;
        let runs = 1 + r.next_below(11) as usize;
        let seed = r.next_u64();
        let layout = if r.next_below(2) == 0 {
            TournamentLayout::Naive
        } else {
            TournamentLayout::Clustered
        };
        let capacity = (1usize << cap_pow).min(n / 2).max(2);
        if n < capacity {
            continue;
        }
        let mut h = Hierarchy::alpha_axp();
        let t = traced_tournament_sort(n, capacity, seed, layout, true, &mut h);
        assert_eq!(t.elements, n as u64, "case {case}");
        // Each emitted record reads+writes 100 B plus tree traffic.
        assert!(t.stats.accesses >= 2 * n as u64, "case {case}");

        if n < runs {
            continue;
        }
        let mut h2 = Hierarchy::alpha_axp();
        let m = traced_merge(n, runs, seed, &mut h2);
        assert_eq!(m.elements, (n / runs * runs) as u64, "case {case}");
    }
}
