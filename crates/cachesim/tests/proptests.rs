//! Property tests for the cache model: the set-associative simulator must
//! agree with a naive reference implementation, and the hierarchy's
//! counters must obey their structural invariants.

use alphasort_cachesim::{
    traced_gather, traced_merge, traced_quicksort, traced_tournament_sort, Cache, CacheConfig,
    Hierarchy, QuickSortVariant, TournamentLayout,
};
use proptest::prelude::*;

/// A deliberately naive LRU cache to check the real one against.
struct ReferenceCache {
    line: u64,
    sets: usize,
    ways: usize,
    /// Per set: (tag, last-use tick).
    contents: Vec<Vec<(u64, u64)>>,
    tick: u64,
}

impl ReferenceCache {
    fn new(cfg: CacheConfig) -> Self {
        ReferenceCache {
            line: cfg.line as u64,
            sets: cfg.sets(),
            ways: cfg.ways,
            contents: vec![Vec::new(); cfg.sets()],
            tick: 0,
        }
    }

    fn access_line(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tag = addr / self.line;
        let set = &mut self.contents[(tag % self.sets as u64) as usize];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.tick;
            return true;
        }
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            set.remove(lru);
        }
        set.push((tag, self.tick));
        false
    }
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (1usize..=4, 0usize..=3, 1usize..=4).prop_map(|(line_pow, sets_pow, ways)| {
        let line = 1usize << (line_pow + 2); // 8..64
        let sets = 1usize << sets_pow; // 1..8
        CacheConfig {
            size: line * sets * ways,
            line,
            ways,
        }
    })
}

proptest! {
    /// Hit/miss sequence matches the reference exactly, access by access.
    #[test]
    fn cache_matches_reference_lru(
        cfg in arb_config(),
        addrs in proptest::collection::vec(0u64..1_024, 1..300),
    ) {
        let mut real = Cache::new(cfg);
        let mut reference = ReferenceCache::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let r = real.access_line(a);
            let e = reference.access_line(a);
            prop_assert_eq!(r, e, "access #{} (addr {}) diverged", i, a);
        }
    }

    /// Accesses to a working set no larger than the cache never miss after
    /// the first touch of each line.
    #[test]
    fn small_working_set_has_cold_misses_only(
        cfg in arb_config(),
        seq in proptest::collection::vec(0usize..64, 1..400),
    ) {
        let mut cache = Cache::new(cfg);
        let lines = cfg.size / cfg.line; // exactly fills the cache
        let distinct: Vec<u64> = (0..lines as u64).map(|i| i * cfg.line as u64).collect();
        for &s in &seq {
            cache.access_line(distinct[s % distinct.len()]);
        }
        let touched: std::collections::HashSet<usize> =
            seq.iter().map(|s| s % distinct.len()).collect();
        prop_assert!(cache.misses() as usize <= touched.len());
    }

    /// Hierarchy counter invariants: line probes ≥ accesses, misses can't
    /// exceed probes, and B-misses can't exceed D-misses.
    #[test]
    fn hierarchy_counters_are_consistent(
        ops in proptest::collection::vec((0u64..1_000_000, 1u64..256), 1..200),
    ) {
        let mut h = Hierarchy::alpha_axp();
        for &(addr, size) in &ops {
            h.read(addr, size);
        }
        let s = h.stats();
        prop_assert_eq!(s.accesses, ops.len() as u64);
        prop_assert!(s.line_probes >= s.accesses);
        prop_assert!(s.d_misses <= s.line_probes);
        prop_assert!(s.b_misses <= s.d_misses);
    }

    /// Replaying the same trace twice gives identical counters (the model
    /// is deterministic), and reset really clears.
    #[test]
    fn hierarchy_is_deterministic(
        ops in proptest::collection::vec((0u64..100_000, 1u64..64), 1..100),
    ) {
        let run = |h: &mut Hierarchy| {
            for &(addr, size) in &ops {
                h.read(addr, size);
            }
            h.stats()
        };
        let mut h = Hierarchy::alpha_axp();
        let first = run(&mut h);
        h.reset();
        let second = run(&mut h);
        prop_assert_eq!(first, second);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every traced kernel is deterministic: same seed, same counters.
    #[test]
    fn traced_kernels_are_deterministic(
        n in 256usize..3_000,
        seed in any::<u64>(),
        variant in prop_oneof![
            Just(QuickSortVariant::Record),
            Just(QuickSortVariant::Pointer),
            Just(QuickSortVariant::Key),
            Just(QuickSortVariant::KeyPrefix),
            Just(QuickSortVariant::Codeword),
        ],
    ) {
        let run = |f: &dyn Fn(&mut Hierarchy)| {
            let mut h = Hierarchy::alpha_axp();
            f(&mut h);
            h.stats()
        };
        let q = |h: &mut Hierarchy| {
            traced_quicksort(n, seed, variant, h);
        };
        prop_assert_eq!(run(&q), run(&q));
        let g = |h: &mut Hierarchy| {
            traced_gather(n, seed, h);
        };
        prop_assert_eq!(run(&g), run(&g));
    }

    /// Tournament and merge kernels count every record exactly once and
    /// issue a sane number of accesses for arbitrary sizes/layouts.
    #[test]
    fn traced_tournament_and_merge_account_all_records(
        n in 64usize..2_000,
        cap_pow in 1u32..6,
        runs in 1usize..12,
        seed in any::<u64>(),
        layout in prop_oneof![Just(TournamentLayout::Naive), Just(TournamentLayout::Clustered)],
    ) {
        let capacity = (1usize << cap_pow).min(n / 2).max(2);
        prop_assume!(n >= capacity);
        let mut h = Hierarchy::alpha_axp();
        let t = traced_tournament_sort(n, capacity, seed, layout, true, &mut h);
        prop_assert_eq!(t.elements, n as u64);
        // Each emitted record reads+writes 100 B plus tree traffic.
        prop_assert!(t.stats.accesses >= 2 * n as u64);

        prop_assume!(n >= runs);
        let mut h2 = Hierarchy::alpha_axp();
        let m = traced_merge(n, runs, seed, &mut h2);
        prop_assert_eq!(m.elements, (n / runs * runs) as u64);
    }
}
