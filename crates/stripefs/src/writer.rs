//! Buffered sequential striped writing with write-behind.
//!
//! Full strides are issued asynchronously as soon as they are staged; up to
//! `depth` strides stay in flight (default 3), so the writer returns to the
//! caller while member disks drain — the output-side half of the paper's
//! triple buffering.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::Arc;

use alphasort_crc::{crc32c, Crc32c};
use alphasort_obs as obs;

use crate::file::{StripedFile, StripedWrite};
use crate::integrity::RunChecksums;

/// Accumulated fingerprints for a checksummed writer: one CRC per issued
/// physical segment (grouped by stride), plus the whole-stream CRC.
struct ChecksumState {
    strides: Vec<Vec<u32>>,
    total: Crc32c,
}

impl ChecksumState {
    /// Fingerprint one issued write (`chunk` at logical `pos`) before it
    /// leaves the staging buffer.
    fn record(&mut self, file: &StripedFile, pos: u64, chunk: &[u8]) {
        let segs = file
            .def()
            .plan(pos, chunk.len())
            .into_iter()
            .map(|seg| crc32c(&chunk[seg.buf_off..seg.buf_off + seg.len]))
            .collect();
        self.strides.push(segs);
        self.total.update(chunk);
    }
}

/// Sequential writer over a [`StripedFile`] with N-deep write-behind.
pub struct StripedWriter {
    file: Arc<StripedFile>,
    depth: usize,
    /// Logical offset of the next issued write.
    pos: u64,
    staging: Vec<u8>,
    inflight: VecDeque<StripedWrite>,
    finished: bool,
    /// Present when created via [`with_checksums`](Self::with_checksums).
    checks: Option<ChecksumState>,
}

impl StripedWriter {
    /// Default number of strides kept in flight.
    pub const DEFAULT_DEPTH: usize = 3;

    /// Start writing `file` at offset 0 with the default depth.
    pub fn new(file: Arc<StripedFile>) -> Self {
        Self::with_depth(file, Self::DEFAULT_DEPTH)
    }

    /// Start writing `file` at offset 0, keeping `depth` strides in flight.
    pub fn with_depth(file: Arc<StripedFile>, depth: usize) -> Self {
        assert!(depth > 0, "write-behind depth must be positive");
        StripedWriter {
            file,
            depth,
            pos: 0,
            staging: Vec::new(),
            inflight: VecDeque::new(),
            finished: false,
            checks: None,
        }
    }

    /// Like [`new`](Self::new), but every issued stride is fingerprinted
    /// (one CRC32C per physical segment) as it goes out; collect the result
    /// with [`finish_checksummed`](Self::finish_checksummed).
    pub fn with_checksums(file: Arc<StripedFile>) -> Self {
        let mut w = Self::new(file);
        w.checks = Some(ChecksumState {
            strides: Vec::new(),
            total: Crc32c::new(),
        });
        w
    }

    /// Bytes accepted so far (issued + staged).
    pub fn position(&self) -> u64 {
        self.pos + self.staging.len() as u64
    }

    fn reap(&mut self, down_to: usize) -> io::Result<()> {
        if self.inflight.len() <= down_to {
            return Ok(());
        }
        // The span is the write-behind back-pressure wait: how long the
        // caller stalls for issued strides to drain below `down_to`.
        let mut g = obs::span(obs::phase::STRIPE_WRITE);
        let mut reaped = 0u64;
        while self.inflight.len() > down_to {
            let Some(w) = self.inflight.pop_front() else {
                break;
            };
            w.wait()?;
            reaped += 1;
        }
        g.attr("writes", reaped);
        obs::metrics::counter_add("stripe.writes.reaped", reaped);
        Ok(())
    }

    fn issue_full_strides(&mut self) -> io::Result<()> {
        let stride = self.file.stride() as usize;
        let mut issued = 0;
        while self.staging.len() - issued >= stride {
            // Block if the pipeline is full (backpressure).
            self.reap(self.depth - 1)?;
            let chunk = &self.staging[issued..issued + stride];
            if let Some(cs) = &mut self.checks {
                cs.record(&self.file, self.pos, chunk);
            }
            let w = self.file.write_at_async(self.pos, chunk);
            obs::metrics::counter_add("stripe.write.bytes", stride as u64);
            self.inflight.push_back(w);
            self.pos += stride as u64;
            issued += stride;
        }
        if issued > 0 {
            self.staging.drain(..issued);
        }
        Ok(())
    }

    /// Append bytes; full strides are issued asynchronously behind the call.
    pub fn push(&mut self, data: &[u8]) -> io::Result<()> {
        assert!(!self.finished, "writer already finished");
        self.staging.extend_from_slice(data);
        self.issue_full_strides()
    }

    /// Flush the final partial stride and wait for everything in flight.
    /// Returns the total logical bytes written.
    pub fn finish(mut self) -> io::Result<u64> {
        self.finish_inner()
    }

    /// Like [`finish`](Self::finish), additionally returning the stride
    /// fingerprints accumulated since [`with_checksums`](Self::with_checksums).
    ///
    /// # Panics
    /// If the writer was not created with `with_checksums`.
    pub fn finish_checksummed(mut self) -> io::Result<(u64, RunChecksums)> {
        let bytes = self.finish_inner()?;
        let cs = self
            .checks
            .take()
            .expect("finish_checksummed on a writer created without with_checksums");
        Ok((
            bytes,
            RunChecksums {
                strides: cs.strides,
                total: cs.total.finish(),
                bytes,
            },
        ))
    }

    fn finish_inner(&mut self) -> io::Result<u64> {
        self.finished = true;
        self.issue_full_strides()?;
        if !self.staging.is_empty() {
            let tail = std::mem::take(&mut self.staging);
            if let Some(cs) = &mut self.checks {
                cs.record(&self.file, self.pos, &tail);
            }
            let w = self.file.write_at_async(self.pos, &tail);
            obs::metrics::counter_add("stripe.write.bytes", tail.len() as u64);
            self.pos += tail.len() as u64;
            self.inflight.push_back(w);
        }
        self.reap(0)?;
        Ok(self.pos)
    }
}

/// Dropping without [`finish`](StripedWriter::finish) must not leave
/// already-issued strides dangling: in-flight writes are reaped (waited
/// for, errors swallowed — there is nobody left to report them to) so the
/// data the caller was told is "behind the call" actually lands. A
/// non-empty staging buffer at that point is a partial tail the caller
/// abandoned; it is counted in `stripe.write.abandoned_bytes` rather than
/// silently discarded without trace. After a successful `finish` both
/// queues are empty and this is a no-op.
impl Drop for StripedWriter {
    fn drop(&mut self) {
        for w in self.inflight.drain(..) {
            let _ = w.wait();
        }
        if !self.staging.is_empty() {
            obs::metrics::counter_add("stripe.write.abandoned_bytes", self.staging.len() as u64);
        }
    }
}

impl Write for StripedWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.push(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Only whole-stride granularity is flushed here; the partial tail
        // goes out in `finish()`.
        self.issue_full_strides()?;
        self.reap(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StripedReader;
    use crate::volume::Volume;
    use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};

    fn volume(n: usize) -> Volume {
        let disks = (0..n)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        Volume::new(Arc::new(IoEngine::new(disks)))
    }

    #[test]
    fn write_read_roundtrip_via_streams() {
        let v = volume(4);
        let f = Arc::new(v.create_across_all("out", 128, 20_000));
        let data: Vec<u8> = (0..20_000).map(|i| (i % 253) as u8).collect();

        let mut w = StripedWriter::new(Arc::clone(&f));
        for chunk in data.chunks(777) {
            w.push(chunk).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 20_000);

        let mut r = StripedReader::new(f);
        let mut got = Vec::new();
        std::io::Read::read_to_end(&mut r, &mut got).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn tiny_pushes_coalesce_into_strides() {
        let v = volume(2);
        let f = Arc::new(v.create_across_all("tiny", 64, 1_000));
        let mut w = StripedWriter::new(Arc::clone(&f));
        for i in 0..1_000u32 {
            w.push(&[(i % 251) as u8]).unwrap();
        }
        w.finish().unwrap();
        let back = f.read_at(0, 1_000).unwrap();
        assert!(back.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
    }

    #[test]
    fn finish_flushes_partial_tail() {
        let v = volume(3);
        let f = Arc::new(v.create_across_all("tail", 100, 500));
        let mut w = StripedWriter::new(Arc::clone(&f));
        w.push(&[9u8; 50]).unwrap(); // less than one chunk
        assert_eq!(w.finish().unwrap(), 50);
        assert_eq!(f.read_at(0, 50).unwrap(), vec![9u8; 50]);
        assert_eq!(f.len(), 50);
    }

    #[test]
    fn position_tracks_accepted_bytes() {
        let v = volume(2);
        let f = Arc::new(v.create_across_all("pos", 64, 1024));
        let mut w = StripedWriter::new(f);
        w.push(&[0u8; 100]).unwrap();
        assert_eq!(w.position(), 100);
        w.push(&[0u8; 29]).unwrap();
        assert_eq!(w.position(), 129);
    }

    #[test]
    fn io_write_trait_works() {
        let v = volume(2);
        let f = Arc::new(v.create_across_all("wtrait", 64, 1024));
        let mut w = StripedWriter::new(Arc::clone(&f));
        std::io::Write::write_all(&mut w, &[5u8; 300]).unwrap();
        std::io::Write::flush(&mut w).unwrap();
        w.finish().unwrap();
        assert_eq!(f.read_at(0, 300).unwrap(), vec![5u8; 300]);
    }

    #[test]
    fn drop_without_finish_keeps_issued_strides() {
        // Regression: dropping the writer mid-stream used to abandon its
        // in-flight strides (and silently discard the staged tail). The
        // full strides were issued behind `push` — they must be durable
        // even if the caller forgets `finish`.
        let v = volume(2);
        let f = Arc::new(v.create_across_all("dropped", 100, 4_000));
        let data: Vec<u8> = (0..1_250).map(|i| (i % 241) as u8).collect();
        {
            let mut w = StripedWriter::new(Arc::clone(&f));
            w.push(&data).unwrap(); // 6 full 200-byte strides + 50-byte tail
        } // dropped without finish
        let strides = (data.len() / 200) * 200;
        assert_eq!(f.read_at(0, strides).unwrap(), data[..strides]);
        // The abandoned tail is visible in metrics, not silently lost.
        alphasort_obs::enable(alphasort_obs::DEFAULT_CAPACITY);
        let before = abandoned_bytes();
        {
            let mut w = StripedWriter::new(Arc::clone(&f));
            w.push(&[7u8; 30]).unwrap(); // all tail, nothing issued
        }
        assert_eq!(abandoned_bytes() - before, 30);
        alphasort_obs::disable();
    }

    fn abandoned_bytes() -> u64 {
        alphasort_obs::metrics_snapshot()
            .counters
            .get("stripe.write.abandoned_bytes")
            .copied()
            .unwrap_or(0)
    }

    #[test]
    fn empty_finish_is_zero_bytes() {
        let v = volume(2);
        let f = Arc::new(v.create_across_all("none", 64, 0));
        let w = StripedWriter::new(f);
        assert_eq!(w.finish().unwrap(), 0);
    }
}
