//! Bounded retry with backoff for transient member-disk errors, plus
//! per-disk health accounting.
//!
//! A striped file touches many disks per operation, so one flaky member
//! turns every stride into a coin flip. The paper's hardware era answered
//! this with controller retries; here the striping layer itself retries
//! member operations whose error kind looks *transient* — timeouts,
//! interrupts, short writes — up to a bounded attempt budget with linear
//! backoff. Persistent errors are not hidden: after the budget is spent the
//! original error kind is surfaced, wrapped with the disk, physical offset
//! and file it happened on, and the disk's health record takes a strike.
//! Enough consecutive strikes mark the disk *failed*, after which new IO to
//! it fails fast instead of burning the full retry budget per stride.
//!
//! Counters: `io.retry` (reissued member ops), `io.giveup` (budget
//! exhausted or non-transient), `stripe.disk_failed` (health transitions,
//! bumped once per disk).

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::Duration;

use alphasort_obs as obs;

/// How striped IO responds to transient member-disk errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per member operation, including the first
    /// (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff: attempt `k` (1-based) sleeps `backoff × k` before the
    /// reissue, so repeated failures back off linearly.
    pub backoff: Duration,
    /// Consecutive failed attempts on one disk before it is marked failed
    /// and further IO to it fails fast. `0` disables the health latch.
    pub disk_fail_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            disk_fail_threshold: 8,
        }
    }
}

impl RetryPolicy {
    /// No retries, no health latch: every member error surfaces immediately
    /// (the pre-retry behaviour, still useful for fault-injection tests
    /// that count operations).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            disk_fail_threshold: 0,
        }
    }
}

/// Whether an error kind is worth retrying: the class a real device clears
/// on reissue (timeouts, interrupted calls, short writes) as opposed to
/// deterministic failures (bad address, corrupt data, permissions).
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WriteZero
            | io::ErrorKind::WouldBlock
    )
}

/// Per-disk health: consecutive failed attempts and the failed latch.
#[derive(Debug, Default)]
struct DiskHealth {
    consecutive: AtomicU32,
    failed: AtomicBool,
}

/// A retry policy plus the per-disk health it drives, shared by every file
/// of a [`Volume`](crate::Volume) (an `Arc<IoPolicy>`): a disk that proves
/// bad while writing one run is already avoided when the next run opens.
#[derive(Debug)]
pub struct IoPolicy {
    /// The retry budget and backoff shape.
    pub retry: RetryPolicy,
    disks: Vec<DiskHealth>,
}

impl IoPolicy {
    /// A policy tracking `width` disks.
    pub fn new(retry: RetryPolicy, width: usize) -> Self {
        IoPolicy {
            retry,
            disks: (0..width).map(|_| DiskHealth::default()).collect(),
        }
    }

    /// Whether disk `d` has tripped the failure latch.
    pub fn is_failed(&self, d: usize) -> bool {
        self.disks
            .get(d)
            .is_some_and(|h| h.failed.load(Ordering::Acquire))
    }

    /// A successful member operation on disk `d` resets its strike count.
    pub fn record_success(&self, d: usize) {
        if let Some(h) = self.disks.get(d) {
            h.consecutive.store(0, Ordering::Release);
        }
    }

    /// A failed attempt on disk `d`; trips the failure latch (and bumps
    /// `stripe.disk_failed`, once) when strikes reach the threshold.
    pub fn record_failure(&self, d: usize) {
        let Some(h) = self.disks.get(d) else { return };
        let strikes = h.consecutive.fetch_add(1, Ordering::AcqRel) + 1;
        let threshold = self.retry.disk_fail_threshold;
        if threshold > 0 && strikes >= threshold && !h.failed.swap(true, Ordering::AcqRel) {
            obs::metrics::counter_add("stripe.disk_failed", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_kinds() {
        assert!(is_transient(io::ErrorKind::TimedOut));
        assert!(is_transient(io::ErrorKind::Interrupted));
        assert!(is_transient(io::ErrorKind::WriteZero));
        assert!(!is_transient(io::ErrorKind::PermissionDenied));
        assert!(!is_transient(io::ErrorKind::InvalidData));
        assert!(!is_transient(io::ErrorKind::NotFound));
    }

    #[test]
    fn latch_trips_at_threshold_and_success_resets() {
        let p = IoPolicy::new(
            RetryPolicy {
                disk_fail_threshold: 3,
                ..RetryPolicy::default()
            },
            2,
        );
        p.record_failure(0);
        p.record_failure(0);
        assert!(!p.is_failed(0));
        p.record_success(0); // strikes reset
        p.record_failure(0);
        p.record_failure(0);
        assert!(!p.is_failed(0));
        p.record_failure(0);
        assert!(p.is_failed(0));
        assert!(!p.is_failed(1)); // other disk untouched
    }

    #[test]
    fn zero_threshold_never_latches() {
        let p = IoPolicy::new(
            RetryPolicy {
                disk_fail_threshold: 0,
                ..RetryPolicy::default()
            },
            1,
        );
        for _ in 0..100 {
            p.record_failure(0);
        }
        assert!(!p.is_failed(0));
    }

    #[test]
    fn out_of_range_disk_is_harmless() {
        let p = IoPolicy::new(RetryPolicy::default(), 1);
        p.record_failure(9);
        p.record_success(9);
        assert!(!p.is_failed(9));
    }
}
