//! Software file striping, after §6 of the AlphaSort paper.
//!
//! "Disk striping spreads the input and output file across many disks. This
//! allows parallel disk reads and writes to give the sum of the individual
//! disk bandwidths." AlphaSort implements striping *in the application*,
//! above the file system, driven by a *stripe definition file* (`.str`) that
//! names the member files and the blocks-per-stride; `stripeopen()` opens
//! every member asynchronously and in parallel.
//!
//! This crate reproduces that layer over [`alphasort_iosim`] disks:
//!
//! * [`StripeDef`] — the stripe geometry: member extents and the chunk size
//!   each disk contributes to a stride ([`geometry`] has the address math).
//! * [`Volume`] — a minimal extent allocator over a disk array; creates and
//!   opens striped files, and persists stripe definitions as `.str`
//!   descriptor files (JSON instead of the paper's line format).
//! * [`StripedFile`] — random-access striped reads/writes, synchronous or
//!   asynchronous (each member request runs on its disk's IO thread, so a
//!   stride moves at the sum of the member disks' bandwidths — Figure 5).
//! * [`StripedReader`] / [`StripedWriter`] — sequential access keeping N
//!   strides in flight; N = 3 is the paper's triple buffering, which "keeps
//!   the disks transferring at their spiral read and write rates".
//!
//! ```
//! use std::sync::Arc;
//! use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
//! use alphasort_stripefs::{StripedReader, StripedWriter, Volume};
//!
//! // Four simulated disks behind an async engine, wrapped in a volume.
//! let disks = (0..4)
//!     .map(|i| SimDisk::new(
//!         format!("d{i}"), catalog::rz26(),
//!         Arc::new(MemStorage::new()), Pacing::Modeled, None,
//!     ))
//!     .collect();
//! let volume = Volume::new(Arc::new(IoEngine::new(disks)));
//!
//! // A file striped across all four disks with 4 KB chunks.
//! let file = Arc::new(volume.create_across_all("data", 4096, 1 << 20));
//! let mut w = StripedWriter::new(Arc::clone(&file));
//! w.push(&vec![7u8; 100_000])?;
//! w.finish()?;
//!
//! let mut r = StripedReader::new(file);
//! let mut total = 0;
//! while let Some(stride) = r.next_stride() {
//!     total += stride?.len();
//! }
//! assert_eq!(total, 100_000);
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod file;
pub mod geometry;
pub mod integrity;
pub mod reader;
pub mod retry;
pub mod volume;
pub mod writer;

pub use file::{StripedFile, StripedRead, StripedWrite};
pub use geometry::{Member, Segment, StripeDef};
pub use integrity::RunChecksums;
pub use reader::StripedReader;
pub use retry::RetryPolicy;
pub use volume::Volume;
pub use writer::StripedWriter;
