//! Stripe geometry: mapping logical file offsets to member-disk extents.
//!
//! A striped file's logical byte space is cut into `chunk` sized pieces and
//! dealt round-robin across the members: logical chunk `c` lives on member
//! `c % width` at member-relative chunk `c / width`. One *stride* is one
//! chunk from every member (Figure 5 of the paper) — `width × chunk` logical
//! bytes that can move in parallel at the sum of member bandwidths.

use alphasort_minijson::{Json, JsonError};

/// One member extent of a striped file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Member {
    /// Index of the disk (within the owning engine/array) holding this member.
    pub disk: usize,
    /// Physical byte offset of the member extent on that disk.
    pub base: u64,
}

impl Member {
    /// JSON form, for `.str` descriptor files.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("disk".into(), Json::from(self.disk)),
            ("base".into(), Json::from(self.base)),
        ])
    }

    /// Rebuild from the JSON form.
    pub fn from_json(v: &Json) -> Result<Member, JsonError> {
        Ok(Member {
            disk: v.field_u64("disk")? as usize,
            base: v.field_u64("base")?,
        })
    }
}

/// The geometry of one striped file.
#[derive(Clone, Debug, PartialEq)]
pub struct StripeDef {
    /// Human name of the file (the paper's descriptor-file name).
    pub name: String,
    /// Bytes each member contributes to one stride ("blocks per stride").
    pub chunk: u64,
    /// Member extents, in round-robin order.
    pub members: Vec<Member>,
    /// Current logical length in bytes.
    pub len: u64,
}

/// A physical segment some logical range maps onto.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Member index within [`StripeDef::members`].
    pub member: usize,
    /// Physical offset on the member's disk.
    pub phys: u64,
    /// Offset of this segment's bytes within the caller's buffer.
    pub buf_off: usize,
    /// Segment length in bytes.
    pub len: usize,
}

impl StripeDef {
    /// Create a fresh definition.
    pub fn new(name: impl Into<String>, chunk: u64, members: Vec<Member>) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(!members.is_empty(), "a stripe needs at least one member");
        StripeDef {
            name: name.into(),
            chunk,
            members,
            len: 0,
        }
    }

    /// Stripe width (number of member disks).
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Bytes in one full stride: `width × chunk`.
    pub fn stride(&self) -> u64 {
        self.chunk * self.width() as u64
    }

    /// Map one logical offset to (member index, physical disk offset).
    pub fn locate(&self, logical: u64) -> (usize, u64) {
        let chunk_no = logical / self.chunk;
        let within = logical % self.chunk;
        let member = (chunk_no % self.width() as u64) as usize;
        let member_chunk = chunk_no / self.width() as u64;
        let phys = self.members[member].base + member_chunk * self.chunk + within;
        (member, phys)
    }

    /// Break the logical range `[offset, offset + len)` into maximal
    /// physically-contiguous segments, in logical order.
    pub fn plan(&self, offset: u64, len: usize) -> Vec<Segment> {
        let mut segs = Vec::new();
        let mut logical = offset;
        let end = offset + len as u64;
        while logical < end {
            let (member, phys) = self.locate(logical);
            // A segment may not cross a chunk boundary.
            let room_in_chunk = self.chunk - logical % self.chunk;
            let seg_len = room_in_chunk.min(end - logical) as usize;
            segs.push(Segment {
                member,
                phys,
                buf_off: (logical - offset) as usize,
                len: seg_len,
            });
            logical += seg_len as u64;
        }
        segs
    }

    /// Bytes of member extent needed on each disk to hold `file_len` logical
    /// bytes (i.e. the per-member extent size to reserve).
    pub fn member_extent(&self, file_len: u64) -> u64 {
        let full_chunks = file_len / self.chunk;
        let tail = file_len % self.chunk;
        // The worst-loaded member holds ceil(chunks / width) chunks.
        let chunks = full_chunks + u64::from(tail > 0);
        chunks.div_ceil(self.width() as u64) * self.chunk
    }

    /// JSON form, for `.str` descriptor files.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("chunk".into(), Json::from(self.chunk)),
            (
                "members".into(),
                Json::Arr(self.members.iter().map(Member::to_json).collect()),
            ),
            ("len".into(), Json::from(self.len)),
        ])
    }

    /// Rebuild from the JSON form.
    pub fn from_json(v: &Json) -> Result<StripeDef, JsonError> {
        let members = v
            .field_arr("members")?
            .iter()
            .map(Member::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if members.is_empty() {
            return Err(JsonError::new("stripe descriptor has no members"));
        }
        let chunk = v.field_u64("chunk")?;
        if chunk == 0 {
            return Err(JsonError::new("stripe descriptor has zero chunk"));
        }
        let mut def = StripeDef::new(v.field_str("name")?, chunk, members);
        def.len = v.field_u64("len")?;
        Ok(def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def3() -> StripeDef {
        StripeDef::new(
            "t",
            10,
            vec![
                Member { disk: 0, base: 100 },
                Member { disk: 1, base: 200 },
                Member { disk: 2, base: 300 },
            ],
        )
    }

    #[test]
    fn locate_round_robins_chunks() {
        let d = def3();
        assert_eq!(d.locate(0), (0, 100)); // chunk 0 → member 0
        assert_eq!(d.locate(9), (0, 109));
        assert_eq!(d.locate(10), (1, 200)); // chunk 1 → member 1
        assert_eq!(d.locate(20), (2, 300)); // chunk 2 → member 2
        assert_eq!(d.locate(30), (0, 110)); // chunk 3 wraps to member 0, next chunk
        assert_eq!(d.locate(35), (0, 115));
    }

    #[test]
    fn stride_is_width_times_chunk() {
        assert_eq!(def3().stride(), 30);
    }

    #[test]
    fn plan_covers_range_without_gaps() {
        let d = def3();
        let segs = d.plan(5, 40); // crosses several chunks
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 40);
        // buf offsets are contiguous and ordered.
        let mut expect = 0;
        for s in &segs {
            assert_eq!(s.buf_off, expect);
            expect += s.len;
        }
        // First segment is the tail of chunk 0 on member 0.
        assert_eq!(
            segs[0],
            Segment {
                member: 0,
                phys: 105,
                buf_off: 0,
                len: 5
            }
        );
        // Then whole chunks on members 1, 2, 0…
        assert_eq!(segs[1].member, 1);
        assert_eq!(segs[2].member, 2);
        assert_eq!(segs[3].member, 0);
    }

    #[test]
    fn plan_within_one_chunk_is_single_segment() {
        let d = def3();
        let segs = d.plan(12, 5);
        assert_eq!(
            segs,
            vec![Segment {
                member: 1,
                phys: 202,
                buf_off: 0,
                len: 5
            }]
        );
    }

    #[test]
    fn member_extent_accounts_for_uneven_tail() {
        let d = def3();
        // 65 bytes = 7 chunks (last partial); ceil(7/3) = 3 chunks = 30 B.
        assert_eq!(d.member_extent(65), 30);
        assert_eq!(d.member_extent(0), 0);
        assert_eq!(d.member_extent(30), 10);
        assert_eq!(d.member_extent(31), 20);
    }

    #[test]
    fn serde_roundtrip() {
        let d = def3();
        let json = d.to_json().dump();
        let d2 = StripeDef::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn from_json_rejects_degenerate_descriptors() {
        let no_members = r#"{"name": "x", "chunk": 10, "members": [], "len": 0}"#;
        assert!(StripeDef::from_json(&Json::parse(no_members).unwrap()).is_err());
        let zero_chunk =
            r#"{"name": "x", "chunk": 0, "members": [{"disk": 0, "base": 0}], "len": 0}"#;
        assert!(StripeDef::from_json(&Json::parse(zero_chunk).unwrap()).is_err());
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        StripeDef::new("bad", 0, vec![Member { disk: 0, base: 0 }]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_members_rejected() {
        StripeDef::new("bad", 10, vec![]);
    }
}
