//! Buffered sequential striped reading with read-ahead.
//!
//! Keeps `depth` stride-sized reads in flight (default 3 — the paper's
//! triple buffering), so member disks stream at their spiral rate instead of
//! stalling between requests.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::sync::Arc;

use alphasort_obs as obs;

use crate::file::{StripedFile, StripedRead};

/// Sequential reader over a [`StripedFile`] with N-deep read-ahead.
pub struct StripedReader {
    file: Arc<StripedFile>,
    depth: usize,
    /// Next logical offset to *issue* a read for.
    issue_pos: u64,
    /// Logical length snapshot taken at construction.
    len: u64,
    inflight: VecDeque<(u64, StripedRead)>,
    /// Left-over bytes for the `Read` impl.
    spill: Vec<u8>,
    spill_off: usize,
}

impl StripedReader {
    /// Default number of strides kept in flight.
    pub const DEFAULT_DEPTH: usize = 3;

    /// Start reading `file` from offset 0 with the default depth.
    pub fn new(file: Arc<StripedFile>) -> Self {
        Self::with_depth(file, Self::DEFAULT_DEPTH)
    }

    /// Start reading `file` from offset 0, keeping `depth` strides in flight.
    pub fn with_depth(file: Arc<StripedFile>, depth: usize) -> Self {
        assert!(depth > 0, "read-ahead depth must be positive");
        let len = file.len();
        let mut r = StripedReader {
            file,
            depth,
            issue_pos: 0,
            len,
            inflight: VecDeque::new(),
            spill: Vec::new(),
            spill_off: 0,
        };
        r.pump();
        r
    }

    fn pump(&mut self) {
        while self.inflight.len() < self.depth && self.issue_pos < self.len {
            let stride = self.file.stride();
            let n = stride.min(self.len - self.issue_pos) as usize;
            let rd = self.file.read_at_async(self.issue_pos, n);
            self.inflight.push_back((self.issue_pos, rd));
            self.issue_pos += n as u64;
        }
    }

    /// Total logical bytes this reader will deliver.
    pub fn total_len(&self) -> u64 {
        self.len
    }

    /// Fetch the next stride's bytes, or `None` at end of file.
    ///
    /// Strides arrive in order; while the caller processes one, up to
    /// `depth - 1` more are already moving on the disks.
    pub fn next_stride(&mut self) -> Option<io::Result<Vec<u8>>> {
        let (off, rd) = self.inflight.pop_front()?;
        // The span covers only the wait for the already-issued read to
        // land — with read-ahead working, it should be near zero.
        let mut g = obs::span(obs::phase::STRIPE_READ);
        g.attr("offset", off);
        let data = rd.wait();
        if let Ok(d) = &data {
            g.attr("bytes", d.len() as u64);
            obs::metrics::counter_add("stripe.read.bytes", d.len() as u64);
        }
        drop(g);
        self.pump();
        Some(data)
    }
}

impl Read for StripedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.spill_off >= self.spill.len() {
            match self.next_stride() {
                None => return Ok(0),
                Some(stride) => {
                    self.spill = stride?;
                    self.spill_off = 0;
                }
            }
        }
        let avail = &self.spill[self.spill_off..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.spill_off += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::Volume;
    use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};

    fn volume(n: usize) -> Volume {
        let disks = (0..n)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        Volume::new(Arc::new(IoEngine::new(disks)))
    }

    fn filled_file(v: &Volume, len: usize, chunk: u64) -> (Arc<StripedFile>, Vec<u8>) {
        let f = v.create_across_all("data", chunk, len as u64);
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        f.write_at(0, &data).unwrap();
        (Arc::new(f), data)
    }

    #[test]
    fn strides_arrive_in_order_and_complete() {
        let v = volume(4);
        let (f, data) = filled_file(&v, 10_000, 256); // stride = 1024
        let mut r = StripedReader::new(Arc::clone(&f));
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            got.extend_from_slice(&s.unwrap());
        }
        assert_eq!(got, data);
    }

    #[test]
    fn final_partial_stride_is_clamped() {
        let v = volume(2);
        let (f, data) = filled_file(&v, 1000, 128); // stride 256; 1000 = 3×256 + 232
        let mut r = StripedReader::new(f);
        let mut sizes = Vec::new();
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            let s = s.unwrap();
            sizes.push(s.len());
            got.extend_from_slice(&s);
        }
        assert_eq!(sizes, vec![256, 256, 256, 232]);
        assert_eq!(got, data);
    }

    #[test]
    fn read_trait_delivers_identical_bytes() {
        let v = volume(3);
        let (f, data) = filled_file(&v, 5_000, 100);
        let mut r = StripedReader::new(f);
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn depth_one_still_correct() {
        let v = volume(2);
        let (f, data) = filled_file(&v, 3_000, 64);
        let mut r = StripedReader::with_depth(f, 1);
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            got.extend_from_slice(&s.unwrap());
        }
        assert_eq!(got, data);
    }

    #[test]
    fn empty_file_yields_nothing() {
        let v = volume(2);
        let f = Arc::new(v.create_across_all("empty", 64, 0));
        let mut r = StripedReader::new(f);
        assert!(r.next_stride().is_none());
    }

    #[test]
    fn read_ahead_keeps_multiple_requests_outstanding() {
        // With paced disks, reading N strides with depth 3 must beat
        // depth 1 because transfers overlap with the caller's "processing".
        let spec = alphasort_iosim::DiskSpec {
            name: "slow".into(),
            read_mbps: 5.0,
            write_mbps: 5.0,
            seek_ms: 0.0,
            capacity_gb: 1.0,
            price_dollars: 0.0,
        };
        let disks: Vec<_> = (0..2)
            .map(|i| {
                SimDisk::new(
                    format!("s{i}"),
                    spec.clone(),
                    Arc::new(MemStorage::new()),
                    Pacing::RealTime { speedup: 1.0 },
                    None,
                )
            })
            .collect();
        let v = Volume::new(Arc::new(IoEngine::new(disks)));
        let (f, _) = {
            let f = v.create_across_all("paced", 64 * 1024, 2_000_000);
            let data = vec![3u8; 2_000_000];
            f.write_at(0, &data).unwrap();
            (Arc::new(f), data)
        };
        // Warm: drain token-bucket burst credit.
        let mut warm = StripedReader::with_depth(Arc::clone(&f), 1);
        while warm.next_stride().is_some() {}

        let t0 = std::time::Instant::now();
        let mut r = StripedReader::with_depth(Arc::clone(&f), 3);
        let mut strides = 0;
        while let Some(s) = r.next_stride() {
            s.unwrap();
            strides += 1;
            // Simulate per-stride compute.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let with_overlap = t0.elapsed();
        assert!(strides > 10);
        // 2 MB over 2×5 MB/s = ~0.2 s of IO; ~0.08 s of compute. Overlapped
        // total must stay well under the serial sum plus slack.
        assert!(
            with_overlap.as_secs_f64() < 0.5,
            "no overlap: {with_overlap:?}"
        );
    }
}
