//! Buffered sequential striped reading with read-ahead.
//!
//! Keeps `depth` stride-sized reads in flight (default 3 — the paper's
//! triple buffering), so member disks stream at their spiral rate instead of
//! stalling between requests.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::sync::Arc;

use alphasort_crc::crc32c;
use alphasort_obs as obs;

use crate::file::{StripedFile, StripedRead};
use crate::integrity::RunChecksums;

/// Sequential reader over a [`StripedFile`] with N-deep read-ahead.
pub struct StripedReader {
    file: Arc<StripedFile>,
    depth: usize,
    /// Next logical offset to *issue* a read for.
    issue_pos: u64,
    /// First logical offset this reader covers (0 for whole-file readers).
    start: u64,
    /// Exclusive logical end offset (the file length snapshot for
    /// whole-file readers; a stride boundary for ranged ones).
    len: u64,
    inflight: VecDeque<(u64, StripedRead)>,
    /// Left-over bytes for the `Read` impl.
    spill: Vec<u8>,
    spill_off: usize,
    /// Expected stride fingerprints; every delivered stride is verified
    /// against them when present.
    checks: Option<RunChecksums>,
}

impl StripedReader {
    /// Default number of strides kept in flight.
    pub const DEFAULT_DEPTH: usize = 3;

    /// Start reading `file` from offset 0 with the default depth.
    pub fn new(file: Arc<StripedFile>) -> Self {
        Self::with_depth(file, Self::DEFAULT_DEPTH)
    }

    /// Start reading `file` from offset 0, keeping `depth` strides in flight.
    pub fn with_depth(file: Arc<StripedFile>, depth: usize) -> Self {
        let len = file.len();
        Self::ranged_with_depth(file, 0, len, depth)
    }

    /// Read only the logical range `[start, end)` of `file` with the
    /// default depth. `start` must be stride-aligned; `end` is rounded up
    /// to the next stride boundary (capped at the file length) so every
    /// delivered stride keeps its whole-stride checksum index — callers
    /// wanting a byte-exact window trim the first and last strides
    /// themselves.
    ///
    /// # Panics
    /// If `start` is not stride-aligned or the range is outside the file.
    pub fn ranged(file: Arc<StripedFile>, start: u64, end: u64) -> Self {
        Self::ranged_with_depth(file, start, end, Self::DEFAULT_DEPTH)
    }

    /// [`ranged`](Self::ranged) with an explicit read-ahead depth.
    pub fn ranged_with_depth(file: Arc<StripedFile>, start: u64, end: u64, depth: usize) -> Self {
        assert!(depth > 0, "read-ahead depth must be positive");
        let stride = file.stride();
        let flen = file.len();
        assert!(
            start.is_multiple_of(stride),
            "range start {start} not aligned to stride {stride}"
        );
        assert!(
            start <= end && end <= flen,
            "range {start}..{end} outside file of {flen} bytes"
        );
        let end = if end.is_multiple_of(stride) {
            end
        } else {
            ((end / stride + 1) * stride).min(flen)
        };
        let mut r = StripedReader {
            file,
            depth,
            issue_pos: start,
            start,
            len: end,
            inflight: VecDeque::new(),
            spill: Vec::new(),
            spill_off: 0,
            checks: None,
        };
        r.pump();
        r
    }

    /// Like [`ranged`](Self::ranged), verifying every delivered stride
    /// against `checks` (a whole-file manifest — stride checksums are
    /// indexed by absolute offset, so a range verifies with the same
    /// fingerprints as a full read).
    pub fn verified_ranged(
        file: Arc<StripedFile>,
        checks: RunChecksums,
        start: u64,
        end: u64,
    ) -> io::Result<Self> {
        if checks.bytes != file.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checksum manifest for file '{}' covers {} bytes but the file has {}",
                    file.def().name,
                    checks.bytes,
                    file.len()
                ),
            ));
        }
        let mut r = Self::ranged(file, start, end);
        r.checks = Some(checks);
        Ok(r)
    }

    /// Like [`new`](Self::new), but every delivered stride is verified
    /// against `checks` (recorded at write time by
    /// [`StripedWriter::with_checksums`](crate::StripedWriter::with_checksums)).
    /// A mismatching segment surfaces as [`io::ErrorKind::InvalidData`]
    /// naming the member disk, physical offset and logical position.
    ///
    /// Fails up front if `checks` does not cover the file's current length
    /// (a truncated or over-extended file is corruption too).
    pub fn verified(file: Arc<StripedFile>, checks: RunChecksums) -> io::Result<Self> {
        if checks.bytes != file.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checksum manifest for file '{}' covers {} bytes but the file has {}",
                    file.def().name,
                    checks.bytes,
                    file.len()
                ),
            ));
        }
        let mut r = Self::new(file);
        r.checks = Some(checks);
        Ok(r)
    }

    /// Verify one delivered stride against the recorded fingerprints.
    fn verify_stride(&self, off: u64, data: &[u8]) -> io::Result<()> {
        let Some(checks) = &self.checks else {
            return Ok(());
        };
        let def = self.file.def();
        let idx = (off / def.stride()) as usize;
        let expected = checks.strides.get(idx).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "file '{}' has no recorded checksums for stride {idx} \
                     (logical offset {off}); manifest is truncated",
                    def.name
                ),
            )
        })?;
        let plan = def.plan(off, data.len());
        if plan.len() != expected.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "file '{}' stride {idx}: {} segments planned but {} checksums recorded",
                    def.name,
                    plan.len(),
                    expected.len()
                ),
            ));
        }
        for (seg, &want) in plan.iter().zip(expected) {
            let got = crc32c(&data[seg.buf_off..seg.buf_off + seg.len]);
            if got != want {
                let disk = def.members[seg.member].disk;
                obs::metrics::counter_add("stripe.crc_error", 1);
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "checksum mismatch on disk {disk} ({}) at phys offset {}: \
                         file '{}' stride {idx}, logical offset {}: \
                         expected {want:#010x}, got {got:#010x}",
                        self.file.engine().disks()[disk].name(),
                        seg.phys,
                        def.name,
                        off + seg.buf_off as u64,
                    ),
                ));
            }
        }
        Ok(())
    }

    fn pump(&mut self) {
        while self.inflight.len() < self.depth && self.issue_pos < self.len {
            let stride = self.file.stride();
            let n = stride.min(self.len - self.issue_pos) as usize;
            let rd = self.file.read_at_async(self.issue_pos, n);
            self.inflight.push_back((self.issue_pos, rd));
            self.issue_pos += n as u64;
        }
    }

    /// Total logical bytes this reader will deliver.
    pub fn total_len(&self) -> u64 {
        self.len - self.start
    }

    /// Fetch the next stride's bytes, or `None` at end of file.
    ///
    /// Strides arrive in order; while the caller processes one, up to
    /// `depth - 1` more are already moving on the disks.
    pub fn next_stride(&mut self) -> Option<io::Result<Vec<u8>>> {
        let (off, rd) = self.inflight.pop_front()?;
        // The span covers only the wait for the already-issued read to
        // land — with read-ahead working, it should be near zero.
        let mut g = obs::span(obs::phase::STRIPE_READ);
        g.attr("offset", off);
        let data = rd.wait().and_then(|d| {
            self.verify_stride(off, &d)?;
            Ok(d)
        });
        if let Ok(d) = &data {
            g.attr("bytes", d.len() as u64);
            obs::metrics::counter_add("stripe.read.bytes", d.len() as u64);
        }
        drop(g);
        self.pump();
        Some(data)
    }
}

impl Read for StripedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.spill_off >= self.spill.len() {
            match self.next_stride() {
                None => return Ok(0),
                Some(stride) => {
                    self.spill = stride?;
                    self.spill_off = 0;
                }
            }
        }
        let avail = &self.spill[self.spill_off..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.spill_off += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::Volume;
    use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};

    fn volume(n: usize) -> Volume {
        let disks = (0..n)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        Volume::new(Arc::new(IoEngine::new(disks)))
    }

    fn filled_file(v: &Volume, len: usize, chunk: u64) -> (Arc<StripedFile>, Vec<u8>) {
        let f = v.create_across_all("data", chunk, len as u64);
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        f.write_at(0, &data).unwrap();
        (Arc::new(f), data)
    }

    #[test]
    fn strides_arrive_in_order_and_complete() {
        let v = volume(4);
        let (f, data) = filled_file(&v, 10_000, 256); // stride = 1024
        let mut r = StripedReader::new(Arc::clone(&f));
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            got.extend_from_slice(&s.unwrap());
        }
        assert_eq!(got, data);
    }

    #[test]
    fn final_partial_stride_is_clamped() {
        let v = volume(2);
        let (f, data) = filled_file(&v, 1000, 128); // stride 256; 1000 = 3×256 + 232
        let mut r = StripedReader::new(f);
        let mut sizes = Vec::new();
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            let s = s.unwrap();
            sizes.push(s.len());
            got.extend_from_slice(&s);
        }
        assert_eq!(sizes, vec![256, 256, 256, 232]);
        assert_eq!(got, data);
    }

    #[test]
    fn read_trait_delivers_identical_bytes() {
        let v = volume(3);
        let (f, data) = filled_file(&v, 5_000, 100);
        let mut r = StripedReader::new(f);
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn depth_one_still_correct() {
        let v = volume(2);
        let (f, data) = filled_file(&v, 3_000, 64);
        let mut r = StripedReader::with_depth(f, 1);
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            got.extend_from_slice(&s.unwrap());
        }
        assert_eq!(got, data);
    }

    #[test]
    fn empty_file_yields_nothing() {
        let v = volume(2);
        let f = Arc::new(v.create_across_all("empty", 64, 0));
        let mut r = StripedReader::new(f);
        assert!(r.next_stride().is_none());
    }

    #[test]
    fn ranged_reader_delivers_exactly_the_aligned_window() {
        let v = volume(4);
        let (f, data) = filled_file(&v, 10_000, 256); // stride = 1024
        // Aligned start, unaligned end: rounded up to the next stride.
        let mut r = StripedReader::ranged(Arc::clone(&f), 2_048, 5_000);
        assert_eq!(r.total_len(), 5_120 - 2_048);
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            got.extend_from_slice(&s.unwrap());
        }
        assert_eq!(got, data[2_048..5_120]);
        // End at the file's (partial-stride) tail stays capped to the file.
        let mut r = StripedReader::ranged(Arc::clone(&f), 8_192, 10_000);
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            got.extend_from_slice(&s.unwrap());
        }
        assert_eq!(got, data[8_192..]);
        // Empty range.
        let mut r = StripedReader::ranged(f, 1_024, 1_024);
        assert!(r.next_stride().is_none());
        assert_eq!(r.total_len(), 0);
    }

    #[test]
    #[should_panic(expected = "not aligned to stride")]
    fn ranged_reader_rejects_unaligned_start() {
        let v = volume(2);
        let (f, _) = filled_file(&v, 1_000, 128);
        let _ = StripedReader::ranged(f, 100, 500);
    }

    #[test]
    fn verified_ranged_reader_checks_mid_file_strides() {
        let v = volume(3);
        let f = Arc::new(v.create_across_all("vr", 64, 5_000));
        let data: Vec<u8> = (0..5_000).map(|i| (i % 247) as u8).collect();
        let mut w = crate::StripedWriter::with_checksums(Arc::clone(&f));
        w.push(&data).unwrap();
        let (_, checks) = w.finish_checksummed().unwrap();
        let stride = f.stride();

        // A clean mid-file range verifies with the whole-file manifest.
        let (s, e) = (stride * 3, stride * 7);
        let mut r =
            StripedReader::verified_ranged(Arc::clone(&f), checks.clone(), s, e).unwrap();
        let mut got = Vec::new();
        while let Some(x) = r.next_stride() {
            got.extend_from_slice(&x.unwrap());
        }
        assert_eq!(got, data[s as usize..e as usize]);

        // Corrupt a byte inside the range: the ranged read catches it.
        let base = f.def().members[0].base;
        v.engine()
            .write(0, base + stride * 4 / 3, vec![0xEE])
            .wait()
            .unwrap();
        let mut r = StripedReader::verified_ranged(f, checks, s, e).unwrap();
        let mut saw_err = false;
        while let Some(x) = r.next_stride() {
            if x.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err, "corruption inside the range went unnoticed");
    }

    #[test]
    fn verified_reader_accepts_clean_data() {
        let v = volume(3);
        let f = Arc::new(v.create_across_all("ok", 64, 5_000));
        let data: Vec<u8> = (0..5_000).map(|i| (i % 249) as u8).collect();
        let mut w = crate::StripedWriter::with_checksums(Arc::clone(&f));
        w.push(&data).unwrap();
        let (n, checks) = w.finish_checksummed().unwrap();
        assert_eq!(n, 5_000);
        assert_eq!(checks.bytes, 5_000);
        assert!(!checks.strides.is_empty());

        let mut r = StripedReader::verified(Arc::clone(&f), checks).unwrap();
        let mut got = Vec::new();
        while let Some(s) = r.next_stride() {
            got.extend_from_slice(&s.unwrap());
        }
        assert_eq!(got, data);
    }

    #[test]
    fn verified_reader_names_the_corrupt_disk() {
        let v = volume(2);
        let f = Arc::new(v.create_across_all("tamper", 64, 2_000));
        let data = vec![0x33u8; 2_000];
        let mut w = crate::StripedWriter::with_checksums(Arc::clone(&f));
        w.push(&data).unwrap();
        let (_, checks) = w.finish_checksummed().unwrap();

        // Flip one byte on disk 1 behind the stripe layer's back (stride =
        // 128, so logical offset 64 lives in chunk 1 → disk 1 at phys base).
        let base = f.def().members[1].base;
        v.engine().write(1, base, vec![0xCC]).wait().unwrap();

        let mut r = StripedReader::verified(Arc::clone(&f), checks).unwrap();
        let err = r.next_stride().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("checksum mismatch on disk 1 (d1)"), "{msg}");
        assert!(msg.contains("file 'tamper'"), "{msg}");
        assert!(msg.contains("stride 0"), "{msg}");
    }

    #[test]
    fn verified_reader_rejects_wrong_length_up_front() {
        let v = volume(2);
        let f = Arc::new(v.create_across_all("short", 64, 1_000));
        let mut w = crate::StripedWriter::with_checksums(Arc::clone(&f));
        w.push(&[1u8; 500]).unwrap();
        let (_, mut checks) = w.finish_checksummed().unwrap();
        checks.bytes = 400; // manifest lies about coverage
        let err = match StripedReader::verified(f, checks) {
            Ok(_) => panic!("expected length mismatch"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("covers 400 bytes"), "{err}");
    }

    #[test]
    fn read_ahead_keeps_multiple_requests_outstanding() {
        // With paced disks, reading N strides with depth 3 must beat
        // depth 1 because transfers overlap with the caller's "processing".
        let spec = alphasort_iosim::DiskSpec {
            name: "slow".into(),
            read_mbps: 5.0,
            write_mbps: 5.0,
            seek_ms: 0.0,
            capacity_gb: 1.0,
            price_dollars: 0.0,
        };
        let disks: Vec<_> = (0..2)
            .map(|i| {
                SimDisk::new(
                    format!("s{i}"),
                    spec.clone(),
                    Arc::new(MemStorage::new()),
                    Pacing::RealTime { speedup: 1.0 },
                    None,
                )
            })
            .collect();
        let v = Volume::new(Arc::new(IoEngine::new(disks)));
        let (f, _) = {
            let f = v.create_across_all("paced", 64 * 1024, 2_000_000);
            let data = vec![3u8; 2_000_000];
            f.write_at(0, &data).unwrap();
            (Arc::new(f), data)
        };
        // Warm: drain token-bucket burst credit.
        let mut warm = StripedReader::with_depth(Arc::clone(&f), 1);
        while warm.next_stride().is_some() {}

        let t0 = std::time::Instant::now();
        let mut r = StripedReader::with_depth(Arc::clone(&f), 3);
        let mut strides = 0;
        while let Some(s) = r.next_stride() {
            s.unwrap();
            strides += 1;
            // Simulate per-stride compute.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let with_overlap = t0.elapsed();
        assert!(strides > 10);
        // 2 MB over 2×5 MB/s = ~0.2 s of IO; ~0.08 s of compute. Overlapped
        // total must stay well under the serial sum plus slack.
        assert!(
            with_overlap.as_secs_f64() < 0.5,
            "no overlap: {with_overlap:?}"
        );
    }
}
