//! A minimal extent allocator and stripe-descriptor store over a disk array.
//!
//! The paper's striping layer sits on the OpenVMS file system: member files
//! live wherever the FS puts them and the `.str` descriptor names them. Our
//! disks are raw byte spaces, so the [`Volume`] supplies the one FS facility
//! striping needs — allocating a contiguous extent per member disk — with a
//! simple bump allocator, and persists [`StripeDef`] descriptors as JSON
//! `.str` files on the *host* file system, playing the descriptor role.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use alphasort_iosim::IoEngine;
use alphasort_minijson::Json;

use crate::file::StripedFile;
use crate::geometry::{Member, StripeDef};
use crate::retry::{IoPolicy, RetryPolicy};

/// Extent allocator + file factory over an engine's disks.
///
/// Allocation is bump-with-free-list: fresh extents come off each disk's
/// watermark; [`Volume::delete`] returns a file's extents to per-disk free
/// lists, and later creations reuse a freed extent when one is big enough
/// (first-fit). Two-pass sorts with cascade merges recycle scratch space
/// this way instead of growing the disks level after level.
///
/// All files a volume creates or opens share its [`RetryPolicy`] and the
/// per-disk health accounting behind it: a member disk that keeps failing
/// while one file retries is already avoided when the next file opens.
pub struct Volume {
    engine: Arc<IoEngine>,
    /// Next free byte on each disk.
    next_free: Vec<AtomicU64>,
    /// Freed extents per disk: (base, size), unordered, first-fit reuse.
    free: Vec<Mutex<Vec<(u64, u64)>>>,
    /// Per-disk allocation ceiling; [`allocate`](Self::allocate) fails with
    /// [`io::ErrorKind::StorageFull`] past it. `None` = unbounded.
    disk_limit: Option<u64>,
    /// Retry budget + per-disk health shared by this volume's files.
    policy: Arc<IoPolicy>,
}

/// Mutex lock that survives a poisoned peer (an IO thread that panicked
/// mid-allocation must not wedge every later create on this volume).
fn lock_free(m: &Mutex<Vec<(u64, u64)>>) -> std::sync::MutexGuard<'_, Vec<(u64, u64)>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Volume {
    /// Wrap an engine; all disks start empty.
    pub fn new(engine: Arc<IoEngine>) -> Self {
        let next_free = (0..engine.width()).map(|_| AtomicU64::new(0)).collect();
        let free = (0..engine.width())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let policy = Arc::new(IoPolicy::new(RetryPolicy::default(), engine.width()));
        Volume {
            engine,
            next_free,
            free,
            disk_limit: None,
            policy,
        }
    }

    /// Replace the volume's retry policy (fresh per-disk health). Applies
    /// to files created or opened afterwards.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.policy = Arc::new(IoPolicy::new(retry, self.engine.width()));
    }

    /// Builder form of [`set_retry_policy`](Self::set_retry_policy).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.set_retry_policy(retry);
        self
    }

    /// The volume's current retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy.retry
    }

    /// Cap every disk at `limit` bytes of allocated extents; allocations
    /// that would cross it fail with [`io::ErrorKind::StorageFull`].
    pub fn set_disk_limit(&mut self, limit: Option<u64>) {
        self.disk_limit = limit;
    }

    /// Builder form of [`set_disk_limit`](Self::set_disk_limit).
    pub fn with_disk_limit(mut self, limit: u64) -> Self {
        self.disk_limit = Some(limit);
        self
    }

    /// Allocate `extent` bytes on disk `d`: reuse a freed extent when one
    /// fits (first-fit, splitting the remainder back), else bump — failing
    /// with `StorageFull` if the bump would cross the disk limit.
    fn allocate(&self, d: usize, extent: u64) -> io::Result<u64> {
        {
            let mut free = lock_free(&self.free[d]);
            if let Some(i) = free.iter().position(|&(_, size)| size >= extent) {
                let (base, size) = free[i];
                if size == extent {
                    free.remove(i);
                } else {
                    free[i] = (base + extent, size - extent);
                }
                return Ok(base);
            }
        }
        match self.disk_limit {
            None => Ok(self.next_free[d].fetch_add(extent, Ordering::AcqRel)),
            Some(limit) => self.next_free[d]
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                    cur.checked_add(extent).filter(|&end| end <= limit)
                })
                .map_err(|cur| {
                    io::Error::new(
                        io::ErrorKind::StorageFull,
                        format!(
                            "disk {d} ({}) full: needed {extent} bytes, had {}",
                            self.engine.disks()[d].name(),
                            limit.saturating_sub(cur),
                        ),
                    )
                }),
        }
    }

    /// Return a file's member extents to the free lists, coalescing with
    /// adjacent free extents (consecutive same-size files — e.g. a cascade
    /// level's runs — merge back into one big block a bigger later file can
    /// use). The caller must be done with the file: reads of freed space
    /// see whatever a later file writes there.
    pub fn delete(&self, file: &StripedFile) {
        let def = file.def();
        let per_member = match file.capacity() {
            Some(cap) => cap / def.width() as u64,
            // Opened files (no recorded reservation): free what the length
            // implies.
            None => def.member_extent(file.len()),
        };
        if per_member == 0 {
            return;
        }
        for m in &def.members {
            let mut free = lock_free(&self.free[m.disk]);
            let (mut base, mut size) = (m.base, per_member);
            // Merge any free neighbour touching the new extent, repeatedly
            // (kept simple: the lists are short).
            while let Some(i) = free
                .iter()
                .position(|&(b, s)| b + s == base || base + size == b)
            {
                let (b, s) = free.remove(i);
                base = base.min(b);
                size += s;
            }
            free.push((base, size));
        }
    }

    /// Total bytes currently sitting on free lists (diagnostics).
    pub fn free_bytes(&self) -> u64 {
        self.free
            .iter()
            .map(|f| lock_free(f).iter().map(|&(_, s)| s).sum::<u64>())
            .sum()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Arc<IoEngine> {
        &self.engine
    }

    /// Number of disks in the volume.
    pub fn width(&self) -> usize {
        self.engine.width()
    }

    /// Create a striped file across `disks` with the given chunk size,
    /// reserving member extents big enough for `size_hint` logical bytes
    /// (the paper pre-extends the output file the same way).
    ///
    /// # Panics
    /// If `disks` is empty, repeats a disk, references an unknown disk, or
    /// a disk limit is set and the allocation does not fit (use
    /// [`try_create`](Self::try_create) to handle full disks as an error).
    pub fn create(
        &self,
        name: impl Into<String>,
        disks: &[usize],
        chunk: u64,
        size_hint: u64,
    ) -> StripedFile {
        self.try_create(name, disks, chunk, size_hint)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`create`](Self::create), but a full disk surfaces as
    /// [`io::ErrorKind::StorageFull`] naming the disk and the shortfall,
    /// instead of panicking. Partially allocated member extents are
    /// returned to the free lists on failure.
    ///
    /// # Panics
    /// Still panics on caller bugs: an empty, duplicated or unknown disk
    /// set.
    pub fn try_create(
        &self,
        name: impl Into<String>,
        disks: &[usize],
        chunk: u64,
        size_hint: u64,
    ) -> io::Result<StripedFile> {
        let name = name.into();
        assert!(!disks.is_empty(), "striped file needs at least one disk");
        {
            let mut sorted = disks.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), disks.len(), "duplicate disk in stripe set");
        }
        // Geometry first (bases filled below) to size the member extents.
        let probe = StripeDef::new(
            name.clone(),
            chunk,
            disks.iter().map(|&d| Member { disk: d, base: 0 }).collect(),
        );
        let extent = probe.member_extent(size_hint).max(chunk);
        let mut members: Vec<Member> = Vec::with_capacity(disks.len());
        for &d in disks {
            assert!(d < self.width(), "unknown disk {d}");
            match self.allocate(d, extent) {
                Ok(base) => members.push(Member { disk: d, base }),
                Err(e) => {
                    // Roll back the extents already taken for this file.
                    for m in &members {
                        lock_free(&self.free[m.disk]).push((m.base, extent));
                    }
                    return Err(e);
                }
            }
        }
        let capacity = extent * disks.len() as u64;
        let mut file = StripedFile::with_capacity(
            StripeDef::new(name, chunk, members),
            Arc::clone(&self.engine),
            capacity,
        );
        file.attach_policy(Arc::clone(&self.policy));
        Ok(file)
    }

    /// Create a file striped across *all* the volume's disks.
    pub fn create_across_all(
        &self,
        name: impl Into<String>,
        chunk: u64,
        size_hint: u64,
    ) -> StripedFile {
        let disks: Vec<usize> = (0..self.width()).collect();
        self.create(name, &disks, chunk, size_hint)
    }

    /// Fallible form of [`create_across_all`](Self::create_across_all).
    pub fn try_create_across_all(
        &self,
        name: impl Into<String>,
        chunk: u64,
        size_hint: u64,
    ) -> io::Result<StripedFile> {
        let disks: Vec<usize> = (0..self.width()).collect();
        self.try_create(name, &disks, chunk, size_hint)
    }

    /// Open a file from a previously obtained definition.
    pub fn open(&self, def: StripeDef) -> StripedFile {
        // Openers must not allocate over the file: bump each member's
        // watermark past its extent's in-use region.
        for m in &def.members {
            let used = m.base + def.member_extent(def.len);
            self.next_free[m.disk].fetch_max(used, Ordering::AcqRel);
        }
        let mut file = StripedFile::new(def, Arc::clone(&self.engine));
        file.attach_policy(Arc::clone(&self.policy));
        file
    }

    /// Persist a stripe definition as a `.str` descriptor file (JSON).
    pub fn save_descriptor(def: &StripeDef, path: &Path) -> io::Result<()> {
        std::fs::write(path, def.to_json().dump_pretty())
    }

    /// Load a stripe definition from a `.str` descriptor file.
    pub fn load_descriptor(path: &Path) -> io::Result<StripeDef> {
        let json = std::fs::read_to_string(path)?;
        let parsed =
            Json::parse(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        StripeDef::from_json(&parsed).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Open a striped file via its host-side `.str` descriptor, like the
    /// paper's `stripeopen()`.
    pub fn stripe_open(&self, path: &Path) -> io::Result<StripedFile> {
        Ok(self.open(Self::load_descriptor(path)?))
    }

    /// Persist a stripe definition in the paper's line-oriented text form:
    /// "For every file in the stripe, the definition file includes a line
    /// with the file name and number of file blocks per stride" (§6). Here
    /// each member line is `disk-index base-offset`, after a header with
    /// the logical name, chunk size and length.
    pub fn save_descriptor_text(def: &StripeDef, path: &Path) -> io::Result<()> {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# alphasort stripe definition");
        let _ = writeln!(out, "name {}", def.name);
        let _ = writeln!(out, "chunk {}", def.chunk);
        let _ = writeln!(out, "len {}", def.len);
        for m in &def.members {
            let _ = writeln!(out, "member {} {}", m.disk, m.base);
        }
        std::fs::write(path, out)
    }

    /// Load a text-form descriptor written by
    /// [`save_descriptor_text`](Self::save_descriptor_text).
    pub fn load_descriptor_text(path: &Path) -> io::Result<StripeDef> {
        let text = std::fs::read_to_string(path)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut name = None;
        let mut chunk = None;
        let mut len = 0u64;
        let mut members = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("name") => name = Some(parts.next().ok_or_else(|| bad("name"))?.to_string()),
                Some("chunk") => {
                    chunk = Some(
                        parts
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad("chunk"))?,
                    )
                }
                Some("len") => {
                    len = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("len"))?
                }
                Some("member") => {
                    let disk = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("member disk"))?;
                    let base = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("member base"))?;
                    members.push(Member { disk, base });
                }
                _ => return Err(bad("unknown descriptor line")),
            }
        }
        let name = name.ok_or_else(|| bad("missing name"))?;
        let chunk = chunk.ok_or_else(|| bad("missing chunk"))?;
        if members.is_empty() {
            return Err(bad("no members"));
        }
        let mut def = StripeDef::new(name, chunk, members);
        def.len = len;
        Ok(def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_iosim::{catalog, MemStorage, Pacing, SimDisk};

    fn volume(n: usize) -> Volume {
        let disks = (0..n)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        Volume::new(Arc::new(IoEngine::new(disks)))
    }

    #[test]
    fn two_files_on_shared_disks_do_not_overlap() {
        let v = volume(4);
        let a = v.create("a", &[0, 1, 2, 3], 64, 4096);
        let b = v.create("b", &[0, 1, 2, 3], 64, 4096);
        a.write_at(0, &vec![0xAA; 4096]).unwrap();
        b.write_at(0, &vec![0xBB; 4096]).unwrap();
        assert_eq!(a.read_at(0, 4096).unwrap(), vec![0xAA; 4096]);
        assert_eq!(b.read_at(0, 4096).unwrap(), vec![0xBB; 4096]);
    }

    #[test]
    fn subset_striping() {
        let v = volume(4);
        let f = v.create("half", &[1, 3], 32, 1024);
        f.write_at(0, &vec![7u8; 1024]).unwrap();
        let stats: Vec<u64> = v
            .engine()
            .disks()
            .iter()
            .map(|d| d.stats().bytes_written)
            .collect();
        assert_eq!(stats[0], 0);
        assert_eq!(stats[2], 0);
        assert_eq!(stats[1], 512);
        assert_eq!(stats[3], 512);
    }

    #[test]
    fn descriptor_roundtrip_via_host_fs() {
        let v = volume(3);
        let f = v.create("persisted", &[0, 1, 2], 128, 10_000);
        f.write_at(0, b"alpha sort strides").unwrap();

        let dir = std::env::temp_dir().join(format!("stripefs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persisted.str");
        Volume::save_descriptor(&f.def_snapshot(), &path).unwrap();

        let f2 = v.stripe_open(&path).unwrap();
        assert_eq!(f2.len(), 18);
        assert_eq!(f2.read_at(0, 18).unwrap(), b"alpha sort strides");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_bumps_allocator_past_existing_data() {
        let v = volume(2);
        let f = v.create("old", &[0, 1], 16, 256);
        f.write_at(0, &vec![1u8; 256]).unwrap();
        let def = f.def_snapshot();

        // A second volume over the same engine (fresh allocator) must not
        // allocate over the opened file.
        let v2 = Volume::new(Arc::clone(v.engine()));
        let reopened = v2.open(def);
        let newfile = v2.create("new", &[0, 1], 16, 256);
        newfile.write_at(0, &vec![2u8; 256]).unwrap();
        assert_eq!(reopened.read_at(0, 256).unwrap(), vec![1u8; 256]);
    }

    #[test]
    fn deleted_extents_are_reused() {
        let v = volume(2);
        let a = v.create("a", &[0, 1], 64, 1_024);
        let a_bases: Vec<u64> = a.def().members.iter().map(|m| m.base).collect();
        a.write_at(0, &[1u8; 1_024]).unwrap();
        v.delete(&a);
        assert!(v.free_bytes() > 0);

        // Same-size file lands on the freed extents.
        let b = v.create("b", &[0, 1], 64, 1_024);
        let b_bases: Vec<u64> = b.def().members.iter().map(|m| m.base).collect();
        assert_eq!(a_bases, b_bases);
        assert_eq!(v.free_bytes(), 0);
        b.write_at(0, &[2u8; 1_024]).unwrap();
        assert_eq!(b.read_at(0, 1_024).unwrap(), vec![2u8; 1_024]);
    }

    #[test]
    fn smaller_reuse_splits_the_extent() {
        let v = volume(1);
        let big = v.create("big", &[0], 64, 4_096);
        v.delete(&big);
        let free_before = v.free_bytes();
        let small = v.create("small", &[0], 64, 128);
        // Small file carved from the freed extent; remainder stays free.
        assert_eq!(small.def().members[0].base, big.def().members[0].base);
        assert!(v.free_bytes() < free_before);
        assert!(v.free_bytes() > 0);
        // A fresh big file must NOT overlap the small one.
        let big2 = v.create("big2", &[0], 64, 4_096);
        small.write_at(0, &[7u8; 128]).unwrap();
        big2.write_at(0, &[9u8; 4_096]).unwrap();
        assert_eq!(small.read_at(0, 128).unwrap(), vec![7u8; 128]);
    }

    #[test]
    fn writes_past_reserved_capacity_are_rejected() {
        // Files allocate back-to-back on the member disks; overflowing one
        // would corrupt the next, so it must error instead (the bug class
        // the cascade merge hit before size hints were threaded through).
        let v = volume(2);
        let small = v.create("small", &[0, 1], 64, 256);
        let neighbour = v.create("neighbour", &[0, 1], 64, 256);
        neighbour.write_at(0, &[0xEE; 256]).unwrap();

        let cap = small.capacity().unwrap();
        assert!(cap >= 256);
        let err = small.write_at(0, &vec![1u8; cap as usize + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // The neighbour is untouched.
        assert_eq!(neighbour.read_at(0, 256).unwrap(), vec![0xEE; 256]);
    }

    #[test]
    fn text_descriptor_roundtrip() {
        let v = volume(3);
        let f = v.create("paperform", &[0, 2], 128, 2_048);
        f.write_at(0, b"line oriented like 1993").unwrap();

        let dir = std::env::temp_dir().join(format!("stripefs-txt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paperform.str");
        Volume::save_descriptor_text(&f.def_snapshot(), &path).unwrap();

        let def = Volume::load_descriptor_text(&path).unwrap();
        assert_eq!(def, f.def_snapshot());
        let f2 = v.open(def);
        assert_eq!(f2.read_at(0, 23).unwrap(), b"line oriented like 1993");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn text_descriptor_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("stripefs-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.str");
        std::fs::write(&path, "name x\nchunk zero\nmember 0 0\n").unwrap();
        assert!(Volume::load_descriptor_text(&path).is_err());
        std::fs::write(&path, "name x\nchunk 64\n").unwrap();
        assert!(Volume::load_descriptor_text(&path).is_err()); // no members
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_limit_surfaces_storage_full() {
        let mut v = volume(2);
        v.set_disk_limit(Some(1_024));
        let a = v.try_create("fits", &[0, 1], 64, 1_024).unwrap();
        assert!(a.capacity().unwrap() >= 1_024);
        let err = match v.try_create("toobig", &[0, 1], 64, 4_096) {
            Ok(_) => panic!("expected StorageFull"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        let msg = err.to_string();
        assert!(msg.contains("full: needed"), "{msg}");
        assert!(msg.contains("had"), "{msg}");
    }

    #[test]
    fn failed_try_create_rolls_back_partial_allocations() {
        // Disk 0 has freed space but disk 1 is full: the file cannot be
        // created, and disk 0's extent must return to the free list.
        let mut v = volume(2);
        v.set_disk_limit(Some(512));
        let _fill1 = v.try_create("fill1", &[1], 64, 512).unwrap(); // disk 1 full
        let a = v.try_create("a", &[0], 64, 512).unwrap();
        v.delete(&a); // disk 0: 512 B on the free list, watermark at limit
        let free_before = v.free_bytes();
        // Needs 512 B per member: disk 0 reuses the freed extent, disk 1
        // has nothing left → the whole create fails and rolls back.
        let err = match v.try_create("b", &[0, 1], 64, 1_024) {
            Ok(_) => panic!("expected StorageFull"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        assert_eq!(v.free_bytes(), free_before);
        // The rolled-back extent is still usable.
        v.try_create("c", &[0], 64, 512).unwrap();
    }

    #[test]
    fn volume_files_share_the_retry_policy() {
        use crate::retry::RetryPolicy;
        let mut v = volume(2);
        v.set_retry_policy(RetryPolicy {
            max_attempts: 5,
            backoff: std::time::Duration::ZERO,
            disk_fail_threshold: 0,
        });
        assert_eq!(v.retry_policy().max_attempts, 5);
        // Files created after the change carry it (smoke: IO still works).
        let f = v.create("p", &[0, 1], 64, 256);
        f.write_at(0, &[9u8; 256]).unwrap();
        assert_eq!(f.read_at(0, 256).unwrap(), vec![9u8; 256]);
    }

    #[test]
    #[should_panic(expected = "duplicate disk")]
    fn duplicate_disks_rejected() {
        let v = volume(2);
        v.create("dup", &[0, 0], 16, 64);
    }

    #[test]
    fn create_across_all_uses_every_disk() {
        let v = volume(5);
        let f = v.create_across_all("wide", 16, 0);
        assert_eq!(f.width(), 5);
    }
}
