//! Stride checksums: end-to-end integrity for striped scratch runs.
//!
//! Every stride a [`StripedWriter`](crate::StripedWriter) issues in
//! checksummed mode is fingerprinted per *physical segment* (one CRC32C per
//! member-disk chunk, in plan order), so a later verified read can say not
//! just "this stride is corrupt" but *which disk* returned bad bytes and at
//! which physical offset. The whole-stream CRC doubles as a cheap identity
//! for run manifests.
//!
//! The checksums live host-side (in the run manifest JSON), not on the
//! simulated disks: like the paper's stripe descriptor files, they are
//! metadata *about* the disk array, kept where the recovery code can read
//! them even when a member disk is lying.

use alphasort_minijson::{Json, JsonError};

/// Per-stride, per-segment CRC32C fingerprints of one written stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunChecksums {
    /// For each stride (in order from logical offset 0): the CRC32C of each
    /// planned physical segment, in [`StripeDef::plan`](crate::StripeDef::plan)
    /// order. The final entry may cover a partial stride.
    pub strides: Vec<Vec<u32>>,
    /// CRC32C of the entire logical byte stream.
    pub total: u32,
    /// Logical bytes covered.
    pub bytes: u64,
}

impl RunChecksums {
    /// JSON form, for run manifests.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bytes".into(), Json::from(self.bytes)),
            ("total".into(), Json::from(u64::from(self.total))),
            (
                "strides".into(),
                Json::Arr(
                    self.strides
                        .iter()
                        .map(|segs| {
                            Json::Arr(segs.iter().map(|&c| Json::from(u64::from(c))).collect())
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild from the JSON form.
    pub fn from_json(v: &Json) -> Result<RunChecksums, JsonError> {
        let crc = |j: &Json| -> Result<u32, JsonError> {
            j.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::new("checksum entry is not a u32"))
        };
        let strides = v
            .field_arr("strides")?
            .iter()
            .map(|row| match row {
                Json::Arr(segs) => segs.iter().map(crc).collect::<Result<Vec<_>, _>>(),
                _ => Err(JsonError::new("stride checksum row is not an array")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunChecksums {
            strides,
            total: crc(v
                .get("total")
                .ok_or_else(|| JsonError::new("missing field `total`"))?)?,
            bytes: v.field_u64("bytes")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let c = RunChecksums {
            strides: vec![vec![1, 0xFFFF_FFFF], vec![42]],
            total: 0xDEAD_BEEF,
            bytes: 12_345,
        };
        let json = c.to_json().dump();
        let back = RunChecksums::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_malformed_rows() {
        let bad = r#"{"bytes": 1, "total": 2, "strides": [3]}"#;
        assert!(RunChecksums::from_json(&Json::parse(bad).unwrap()).is_err());
        let overflow = r#"{"bytes": 1, "total": 5000000000, "strides": []}"#;
        assert!(RunChecksums::from_json(&Json::parse(overflow).unwrap()).is_err());
    }
}
