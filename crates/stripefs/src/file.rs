//! Random-access striped file IO.
//!
//! Member operations that fail with a *transient* error kind (see
//! [`crate::retry::is_transient`]) are reissued up to the file's
//! [`RetryPolicy`] budget with linear backoff; errors that survive the
//! budget come back wrapped with the disk, physical offset, file name and
//! logical offset they happened at, preserving the original error kind.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alphasort_iosim::{IoEngine, IoHandle};
use alphasort_obs as obs;

use crate::geometry::{Segment, StripeDef};
use crate::retry::{is_transient, IoPolicy, RetryPolicy};

/// An open striped file: geometry plus the engine that reaches its disks.
pub struct StripedFile {
    def: StripeDef,
    engine: Arc<IoEngine>,
    len: AtomicU64,
    /// Reserved logical capacity, if known (files created through a
    /// [`Volume`](crate::Volume) know their extent reservation). Writes
    /// past it fail instead of silently bleeding into a neighbouring
    /// file's extents.
    capacity: Option<u64>,
    /// Retry budget and per-disk health, shared volume-wide for files a
    /// [`Volume`](crate::Volume) creates.
    policy: Arc<IoPolicy>,
}

/// Completion context one in-flight striped op needs to retry and to
/// attribute errors: the engine to reissue on, the policy to consult, and
/// the identity (file name + logical base offset) to name in messages.
struct OpCtx {
    engine: Arc<IoEngine>,
    policy: Arc<IoPolicy>,
    file: String,
    base: u64,
}

impl OpCtx {
    fn attribute(
        &self,
        e: io::Error,
        verb: &str,
        seg: &Segment,
        disk: usize,
        attempts: u32,
    ) -> io::Error {
        let dname = self.engine.disks()[disk].name().to_string();
        io::Error::new(
            e.kind(),
            format!(
                "{verb} on disk {disk} ({dname}) failed at phys offset {} \
                 (file '{}', logical offset {}, {attempts} attempt(s)): {e}",
                seg.phys,
                self.file,
                self.base + seg.buf_off as u64,
            ),
        )
    }

    /// Wait for one member read, retrying transient errors in place.
    fn complete_read(
        &self,
        seg: &Segment,
        disk: usize,
        h: IoHandle<Vec<u8>>,
    ) -> io::Result<Vec<u8>> {
        let max = self.policy.retry.max_attempts.max(1);
        let mut attempt = 1u32;
        let mut res = h.wait();
        loop {
            match res {
                Ok(data) => {
                    self.policy.record_success(disk);
                    return Ok(data);
                }
                Err(e) => {
                    self.policy.record_failure(disk);
                    if is_transient(e.kind()) && attempt < max {
                        obs::metrics::counter_add("io.retry", 1);
                        std::thread::sleep(self.policy.retry.backoff.saturating_mul(attempt));
                        attempt += 1;
                        res = self.engine.read(disk, seg.phys, seg.len).wait();
                    } else {
                        obs::metrics::counter_add("io.giveup", 1);
                        return Err(self.attribute(e, "read", seg, disk, attempt));
                    }
                }
            }
        }
    }

    /// Wait for one member write, retrying transient errors (including
    /// short writes) in place. `data` is the op's full logical buffer, kept
    /// for reissue; `None` means retries were disabled at issue time.
    fn complete_write(
        &self,
        seg: &Segment,
        disk: usize,
        h: IoHandle<usize>,
        data: Option<&[u8]>,
    ) -> io::Result<usize> {
        let max = self.policy.retry.max_attempts.max(1);
        let short = |n: usize| {
            io::Error::new(
                io::ErrorKind::WriteZero,
                format!("short write ({n} of {} bytes)", seg.len),
            )
        };
        let mut attempt = 1u32;
        let mut res = h.wait();
        loop {
            match res {
                Ok(n) if n == seg.len => {
                    self.policy.record_success(disk);
                    return Ok(n);
                }
                Ok(n) => res = Err(short(n)),
                Err(e) => {
                    self.policy.record_failure(disk);
                    if let Some(data) = data.filter(|_| is_transient(e.kind()) && attempt < max) {
                        obs::metrics::counter_add("io.retry", 1);
                        std::thread::sleep(self.policy.retry.backoff.saturating_mul(attempt));
                        attempt += 1;
                        let payload = data[seg.buf_off..seg.buf_off + seg.len].to_vec();
                        res = self.engine.write(disk, seg.phys, payload).wait();
                    } else {
                        obs::metrics::counter_add("io.giveup", 1);
                        return Err(self.attribute(e, "write", seg, disk, attempt));
                    }
                }
            }
        }
    }
}

/// An in-flight striped read: per-segment handles plus assembly information.
pub struct StripedRead {
    ctx: OpCtx,
    segs: Vec<(Segment, usize, IoHandle<Vec<u8>>)>,
    total: usize,
    /// Immediate rejection (e.g. a failed member disk), reported at wait().
    early_error: Option<io::Error>,
}

impl StripedRead {
    /// Wait for all member reads and assemble the logical buffer.
    /// Transient member errors are retried per the file's [`RetryPolicy`].
    pub fn wait(self) -> io::Result<Vec<u8>> {
        let StripedRead {
            ctx,
            segs,
            total,
            early_error,
        } = self;
        if let Some(e) = early_error {
            return Err(e);
        }
        let mut out = vec![0u8; total];
        for (seg, disk, h) in segs {
            let data = ctx.complete_read(&seg, disk, h)?;
            out[seg.buf_off..seg.buf_off + seg.len].copy_from_slice(&data);
        }
        Ok(out)
    }

    /// Whether every member read has completed.
    pub fn is_ready(&self) -> bool {
        self.segs.iter().all(|(_, _, h)| h.is_ready())
    }
}

/// An in-flight striped write.
pub struct StripedWrite {
    ctx: OpCtx,
    segs: Vec<(Segment, usize, IoHandle<usize>)>,
    /// Retained logical buffer for reissuing failed segments; absent when
    /// the policy allows only one attempt (no copy needed).
    data: Option<Vec<u8>>,
    total: usize,
    /// Immediate rejection (e.g. capacity overflow), reported at wait().
    early_error: Option<io::Error>,
}

impl StripedWrite {
    /// Wait for all member writes; returns the logical byte count written.
    /// Transient member errors are retried per the file's [`RetryPolicy`].
    pub fn wait(self) -> io::Result<usize> {
        let StripedWrite {
            ctx,
            segs,
            data,
            total,
            early_error,
        } = self;
        if let Some(e) = early_error {
            return Err(e);
        }
        for (seg, disk, h) in segs {
            ctx.complete_write(&seg, disk, h, data.as_deref())?;
        }
        Ok(total)
    }

    /// Whether every member write has completed.
    pub fn is_ready(&self) -> bool {
        self.segs.iter().all(|(_, _, h)| h.is_ready())
    }
}

impl StripedFile {
    /// Open a file from its definition over `engine`.
    ///
    /// # Panics
    /// If a member references a disk index the engine does not have.
    pub fn new(def: StripeDef, engine: Arc<IoEngine>) -> Self {
        for m in &def.members {
            assert!(
                m.disk < engine.width(),
                "member references disk {} but engine has {}",
                m.disk,
                engine.width()
            );
        }
        let len = AtomicU64::new(def.len);
        let policy = Arc::new(IoPolicy::new(RetryPolicy::default(), engine.width()));
        StripedFile {
            def,
            engine,
            len,
            capacity: None,
            policy,
        }
    }

    /// Like [`new`](Self::new), but with a reserved logical capacity that
    /// writes may not exceed.
    pub fn with_capacity(def: StripeDef, engine: Arc<IoEngine>, capacity: u64) -> Self {
        let mut f = Self::new(def, engine);
        f.capacity = Some(capacity);
        f
    }

    /// The reserved logical capacity, if known.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Replace this file's retry policy (fresh per-disk health). Files
    /// opened through a [`Volume`](crate::Volume) share the volume's
    /// policy instead; prefer configuring retries there.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.policy = Arc::new(IoPolicy::new(retry, self.engine.width()));
    }

    /// Attach a shared (volume-wide) policy.
    pub(crate) fn attach_policy(&mut self, policy: Arc<IoPolicy>) {
        self.policy = policy;
    }

    /// The engine driving this file's member disks.
    pub(crate) fn engine(&self) -> &Arc<IoEngine> {
        &self.engine
    }

    fn op_ctx(&self, base: u64) -> OpCtx {
        OpCtx {
            engine: Arc::clone(&self.engine),
            policy: Arc::clone(&self.policy),
            file: self.def.name.clone(),
            base,
        }
    }

    /// If any member disk the planned segments touch has tripped the
    /// failure latch, the error to fail fast with.
    fn failed_disk_error(&self, verb: &str, plan: &[Segment], offset: u64) -> Option<io::Error> {
        for seg in plan {
            let d = self.def.members[seg.member].disk;
            if self.policy.is_failed(d) {
                return Some(io::Error::other(format!(
                    "{verb} of file '{}' at logical offset {offset} refused: disk {d} ({}) \
                     marked failed after repeated errors",
                    self.def.name,
                    self.engine.disks()[d].name(),
                )));
            }
        }
        None
    }

    /// The stripe definition (geometry).
    pub fn def(&self) -> &StripeDef {
        &self.def
    }

    /// Stripe width.
    pub fn width(&self) -> usize {
        self.def.width()
    }

    /// One full stride in bytes (`width × chunk`).
    pub fn stride(&self) -> u64 {
        self.def.stride()
    }

    /// Current logical length.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the definition with the current length (for persisting).
    pub fn def_snapshot(&self) -> StripeDef {
        let mut d = self.def.clone();
        d.len = self.len();
        d
    }

    /// Start an asynchronous read of `len` bytes at logical `offset`.
    /// Member requests are issued to every involved disk before returning,
    /// so they proceed in parallel (the paper's Figure 5).
    pub fn read_at_async(&self, offset: u64, len: usize) -> StripedRead {
        let plan = self.def.plan(offset, len);
        if let Some(e) = self.failed_disk_error("read", &plan, offset) {
            return StripedRead {
                ctx: self.op_ctx(offset),
                segs: Vec::new(),
                total: 0,
                early_error: Some(e),
            };
        }
        let segs = plan
            .into_iter()
            .map(|seg| {
                let disk = self.def.members[seg.member].disk;
                let h = self.engine.read(disk, seg.phys, seg.len);
                (seg, disk, h)
            })
            .collect();
        StripedRead {
            ctx: self.op_ctx(offset),
            segs,
            total: len,
            early_error: None,
        }
    }

    /// Synchronous striped read.
    pub fn read_at(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.read_at_async(offset, len).wait()
    }

    /// Start an asynchronous write of `data` at logical `offset`.
    ///
    /// Writing past a known reserved capacity fails (at `wait()`): extents
    /// on the member disks are allocated back-to-back, so overflowing one
    /// file would corrupt its neighbour.
    pub fn write_at_async(&self, offset: u64, data: &[u8]) -> StripedWrite {
        let reject = |e: io::Error| StripedWrite {
            ctx: self.op_ctx(offset),
            segs: Vec::new(),
            data: None,
            total: 0,
            early_error: Some(e),
        };
        if let Some(cap) = self.capacity {
            let end = offset + data.len() as u64;
            if end > cap {
                return reject(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "write to {} past reserved capacity ({} > {} bytes); \
                         create the file with a larger size hint",
                        self.def.name, end, cap
                    ),
                ));
            }
        }
        let plan = self.def.plan(offset, data.len());
        if let Some(e) = self.failed_disk_error("write", &plan, offset) {
            return reject(e);
        }
        let segs = plan
            .into_iter()
            .map(|seg| {
                let disk = self.def.members[seg.member].disk;
                let h = self.engine.write(
                    disk,
                    seg.phys,
                    data[seg.buf_off..seg.buf_off + seg.len].to_vec(),
                );
                (seg, disk, h)
            })
            .collect();
        // Extend logical length eagerly; failed writes surface at wait().
        let end = offset + data.len() as u64;
        self.len.fetch_max(end, Ordering::AcqRel);
        // Keep one copy of the logical buffer only if retries can reissue.
        let retained = (self.policy.retry.max_attempts > 1).then(|| data.to_vec());
        StripedWrite {
            ctx: self.op_ctx(offset),
            segs,
            data: retained,
            total: data.len(),
            early_error: None,
        }
    }

    /// Synchronous striped write.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<usize> {
        self.write_at_async(offset, data).wait()
    }

    /// Flush every member disk.
    pub fn sync(&self) -> io::Result<()> {
        let handles: Vec<_> = self
            .member_disks()
            .into_iter()
            .map(|d| self.engine.sync(d))
            .collect();
        for h in handles {
            h.wait()?;
        }
        Ok(())
    }

    fn member_disks(&self) -> Vec<usize> {
        let mut ds: Vec<usize> = self.def.members.iter().map(|m| m.disk).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Member;
    use alphasort_iosim::{catalog, MemStorage, Pacing, SimDisk};

    fn make_engine(n: usize) -> Arc<IoEngine> {
        let disks = (0..n)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        Arc::new(IoEngine::new(disks))
    }

    fn file(width: usize, chunk: u64) -> (StripedFile, Arc<IoEngine>) {
        let engine = make_engine(width);
        let members = (0..width).map(|i| Member { disk: i, base: 0 }).collect();
        let def = StripeDef::new("f", chunk, members);
        (StripedFile::new(def, Arc::clone(&engine)), engine)
    }

    #[test]
    fn roundtrip_across_stripes() {
        let (f, _e) = file(4, 16);
        let data: Vec<u8> = (0..200u8).collect();
        f.write_at(0, &data).unwrap();
        assert_eq!(f.read_at(0, 200).unwrap(), data);
        assert_eq!(f.len(), 200);
    }

    #[test]
    fn unaligned_reads_and_writes() {
        let (f, _e) = file(3, 10);
        let data: Vec<u8> = (0..=255u8).cycle().take(97).collect();
        f.write_at(7, &data).unwrap();
        assert_eq!(f.read_at(7, 97).unwrap(), data);
        // A sub-range of the write.
        assert_eq!(f.read_at(30, 20).unwrap(), data[23..43]);
    }

    #[test]
    fn data_actually_spreads_across_disks() {
        let (f, e) = file(4, 8);
        f.write_at(0, &[1u8; 64]).unwrap(); // 8 chunks over 4 disks
        for d in e.disks() {
            let st = d.stats();
            assert_eq!(st.bytes_written, 16, "disk {} got {st:?}", d.name());
        }
    }

    #[test]
    fn async_read_overlaps_members() {
        let (f, _e) = file(4, 8);
        f.write_at(0, &[9u8; 64]).unwrap();
        let r = f.read_at_async(0, 64);
        assert_eq!(r.wait().unwrap(), vec![9u8; 64]);
    }

    #[test]
    fn width_one_degenerates_to_plain_file() {
        let (f, _e) = file(1, 32);
        let data = vec![5u8; 100];
        f.write_at(0, &data).unwrap();
        assert_eq!(f.read_at(0, 100).unwrap(), data);
    }

    #[test]
    fn len_tracks_high_water_mark() {
        let (f, _e) = file(2, 10);
        f.write_at(50, &[1u8; 10]).unwrap();
        assert_eq!(f.len(), 60);
        f.write_at(0, &[1u8; 5]).unwrap();
        assert_eq!(f.len(), 60); // earlier write does not shrink
    }

    fn faulty_engine(width: usize, plans: Vec<alphasort_iosim::FaultPlan>) -> Arc<IoEngine> {
        let disks = plans
            .into_iter()
            .enumerate()
            .map(|(i, plan)| {
                let storage = Arc::new(alphasort_iosim::FaultyStorage::new(
                    Arc::new(MemStorage::new()),
                    plan,
                ));
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    storage,
                    Pacing::Modeled,
                    None,
                )
            })
            .collect::<Vec<_>>();
        assert_eq!(disks.len(), width);
        Arc::new(IoEngine::new(disks))
    }

    fn two_disk_file(plans: Vec<alphasort_iosim::FaultPlan>) -> StripedFile {
        let engine = faulty_engine(2, plans);
        let members = (0..2).map(|i| Member { disk: i, base: 0 }).collect();
        StripedFile::new(StripeDef::new("chaos", 16, members), engine)
    }

    #[test]
    fn transient_read_fault_is_retried_to_success() {
        use alphasort_iosim::FaultPlan;
        let f = two_disk_file(vec![
            FaultPlan::new().fail_read(0, io::ErrorKind::TimedOut),
            FaultPlan::new(),
        ]);
        let data: Vec<u8> = (0..96u8).collect();
        f.write_at(0, &data).unwrap();
        // Disk 0's first read faults transiently; the default policy
        // reissues and the striped read still completes.
        assert_eq!(f.read_at(0, 96).unwrap(), data);
    }

    #[test]
    fn transient_write_fault_is_retried_to_success() {
        use alphasort_iosim::FaultPlan;
        let f = two_disk_file(vec![
            FaultPlan::new().fail_write(0, io::ErrorKind::WriteZero),
            FaultPlan::new(),
        ]);
        let data: Vec<u8> = (0..96u8).collect();
        f.write_at(0, &data).unwrap();
        assert_eq!(f.read_at(0, 96).unwrap(), data);
    }

    #[test]
    fn recurring_fault_exhausts_budget_with_attribution() {
        use alphasort_iosim::FaultPlan;
        let f = two_disk_file(vec![
            FaultPlan::new().fail_read_every(1, io::ErrorKind::TimedOut),
            FaultPlan::new(),
        ]);
        f.write_at(0, &[7u8; 64]).unwrap();
        let err = f.read_at(0, 64).unwrap_err();
        // Original kind preserved; disk, file and offsets named.
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let msg = err.to_string();
        assert!(msg.contains("disk 0 (d0)"), "{msg}");
        assert!(msg.contains("file 'chaos'"), "{msg}");
        assert!(msg.contains("3 attempt(s)"), "{msg}");
    }

    #[test]
    fn non_transient_fault_is_not_retried() {
        use alphasort_iosim::FaultPlan;
        let f = two_disk_file(vec![
            FaultPlan::new().fail_read(0, io::ErrorKind::PermissionDenied),
            FaultPlan::new(),
        ]);
        f.write_at(0, &[1u8; 64]).unwrap();
        let err = f.read_at(0, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert!(err.to_string().contains("1 attempt(s)"), "{err}");
        // The one-shot fault was the only one; an undisturbed reissue
        // would have succeeded — proof the budget was not spent on it.
        assert_eq!(f.read_at(0, 64).unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn failing_disk_trips_latch_and_fails_fast() {
        use crate::retry::RetryPolicy;
        use alphasort_iosim::FaultPlan;
        let mut f = two_disk_file(vec![
            FaultPlan::new().fail_read_after(0, io::ErrorKind::TimedOut),
            FaultPlan::new(),
        ]);
        f.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            backoff: std::time::Duration::ZERO,
            disk_fail_threshold: 3,
        });
        f.write_at(0, &[2u8; 64]).unwrap();
        // Two striped reads × 2 attempts each = 4 strikes ≥ threshold 3.
        assert!(f.read_at(0, 64).is_err());
        assert!(f.read_at(0, 64).is_err());
        // The latch now rejects before reaching the disk.
        let err = f.read_at(0, 64).unwrap_err();
        assert!(err.to_string().contains("marked failed"), "{err}");
        let err = f.write_at(0, &[0u8; 64]).unwrap_err();
        assert!(err.to_string().contains("marked failed"), "{err}");
    }

    #[test]
    fn members_with_bases_do_not_collide() {
        // Two files on the same disks at different bases.
        let engine = make_engine(2);
        let f1 = StripedFile::new(
            StripeDef::new(
                "a",
                8,
                vec![Member { disk: 0, base: 0 }, Member { disk: 1, base: 0 }],
            ),
            Arc::clone(&engine),
        );
        let f2 = StripedFile::new(
            StripeDef::new(
                "b",
                8,
                vec![
                    Member {
                        disk: 0,
                        base: 1024,
                    },
                    Member {
                        disk: 1,
                        base: 1024,
                    },
                ],
            ),
            Arc::clone(&engine),
        );
        f1.write_at(0, &[0xAA; 64]).unwrap();
        f2.write_at(0, &[0xBB; 64]).unwrap();
        assert_eq!(f1.read_at(0, 64).unwrap(), vec![0xAA; 64]);
        assert_eq!(f2.read_at(0, 64).unwrap(), vec![0xBB; 64]);
    }
}
