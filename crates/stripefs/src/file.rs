//! Random-access striped file IO.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alphasort_iosim::{IoEngine, IoHandle};

use crate::geometry::{Segment, StripeDef};

/// An open striped file: geometry plus the engine that reaches its disks.
pub struct StripedFile {
    def: StripeDef,
    engine: Arc<IoEngine>,
    len: AtomicU64,
    /// Reserved logical capacity, if known (files created through a
    /// [`Volume`](crate::Volume) know their extent reservation). Writes
    /// past it fail instead of silently bleeding into a neighbouring
    /// file's extents.
    capacity: Option<u64>,
}

/// An in-flight striped read: per-segment handles plus assembly information.
pub struct StripedRead {
    segs: Vec<(Segment, IoHandle<Vec<u8>>)>,
    total: usize,
}

impl StripedRead {
    /// Wait for all member reads and assemble the logical buffer.
    pub fn wait(self) -> io::Result<Vec<u8>> {
        let mut out = vec![0u8; self.total];
        for (seg, h) in self.segs {
            let data = h.wait()?;
            out[seg.buf_off..seg.buf_off + seg.len].copy_from_slice(&data);
        }
        Ok(out)
    }

    /// Whether every member read has completed.
    pub fn is_ready(&self) -> bool {
        self.segs.iter().all(|(_, h)| h.is_ready())
    }
}

/// An in-flight striped write.
pub struct StripedWrite {
    handles: Vec<IoHandle<usize>>,
    total: usize,
    /// Immediate rejection (e.g. capacity overflow), reported at wait().
    early_error: Option<io::Error>,
}

impl StripedWrite {
    /// Wait for all member writes; returns the logical byte count written.
    pub fn wait(self) -> io::Result<usize> {
        if let Some(e) = self.early_error {
            return Err(e);
        }
        for h in self.handles {
            h.wait()?;
        }
        Ok(self.total)
    }

    /// Whether every member write has completed.
    pub fn is_ready(&self) -> bool {
        self.handles.iter().all(|h| h.is_ready())
    }
}

impl StripedFile {
    /// Open a file from its definition over `engine`.
    ///
    /// # Panics
    /// If a member references a disk index the engine does not have.
    pub fn new(def: StripeDef, engine: Arc<IoEngine>) -> Self {
        for m in &def.members {
            assert!(
                m.disk < engine.width(),
                "member references disk {} but engine has {}",
                m.disk,
                engine.width()
            );
        }
        let len = AtomicU64::new(def.len);
        StripedFile {
            def,
            engine,
            len,
            capacity: None,
        }
    }

    /// Like [`new`](Self::new), but with a reserved logical capacity that
    /// writes may not exceed.
    pub fn with_capacity(def: StripeDef, engine: Arc<IoEngine>, capacity: u64) -> Self {
        let mut f = Self::new(def, engine);
        f.capacity = Some(capacity);
        f
    }

    /// The reserved logical capacity, if known.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// The stripe definition (geometry).
    pub fn def(&self) -> &StripeDef {
        &self.def
    }

    /// Stripe width.
    pub fn width(&self) -> usize {
        self.def.width()
    }

    /// One full stride in bytes (`width × chunk`).
    pub fn stride(&self) -> u64 {
        self.def.stride()
    }

    /// Current logical length.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the definition with the current length (for persisting).
    pub fn def_snapshot(&self) -> StripeDef {
        let mut d = self.def.clone();
        d.len = self.len();
        d
    }

    /// Start an asynchronous read of `len` bytes at logical `offset`.
    /// Member requests are issued to every involved disk before returning,
    /// so they proceed in parallel (the paper's Figure 5).
    pub fn read_at_async(&self, offset: u64, len: usize) -> StripedRead {
        let segs = self
            .def
            .plan(offset, len)
            .into_iter()
            .map(|seg| {
                let disk = self.def.members[seg.member].disk;
                let h = self.engine.read(disk, seg.phys, seg.len);
                (seg, h)
            })
            .collect();
        StripedRead { segs, total: len }
    }

    /// Synchronous striped read.
    pub fn read_at(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.read_at_async(offset, len).wait()
    }

    /// Start an asynchronous write of `data` at logical `offset`.
    ///
    /// Writing past a known reserved capacity fails (at `wait()`): extents
    /// on the member disks are allocated back-to-back, so overflowing one
    /// file would corrupt its neighbour.
    pub fn write_at_async(&self, offset: u64, data: &[u8]) -> StripedWrite {
        if let Some(cap) = self.capacity {
            let end = offset + data.len() as u64;
            if end > cap {
                return StripedWrite {
                    handles: Vec::new(),
                    total: 0,
                    early_error: Some(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "write to {} past reserved capacity ({} > {} bytes); \
                             create the file with a larger size hint",
                            self.def.name, end, cap
                        ),
                    )),
                };
            }
        }
        let handles = self
            .def
            .plan(offset, data.len())
            .into_iter()
            .map(|seg| {
                let disk = self.def.members[seg.member].disk;
                self.engine.write(
                    disk,
                    seg.phys,
                    data[seg.buf_off..seg.buf_off + seg.len].to_vec(),
                )
            })
            .collect();
        // Extend logical length eagerly; failed writes surface at wait().
        let end = offset + data.len() as u64;
        self.len.fetch_max(end, Ordering::AcqRel);
        StripedWrite {
            handles,
            total: data.len(),
            early_error: None,
        }
    }

    /// Synchronous striped write.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<usize> {
        self.write_at_async(offset, data).wait()
    }

    /// Flush every member disk.
    pub fn sync(&self) -> io::Result<()> {
        let handles: Vec<_> = self
            .member_disks()
            .into_iter()
            .map(|d| self.engine.sync(d))
            .collect();
        for h in handles {
            h.wait()?;
        }
        Ok(())
    }

    fn member_disks(&self) -> Vec<usize> {
        let mut ds: Vec<usize> = self.def.members.iter().map(|m| m.disk).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Member;
    use alphasort_iosim::{catalog, MemStorage, Pacing, SimDisk};

    fn make_engine(n: usize) -> Arc<IoEngine> {
        let disks = (0..n)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        Arc::new(IoEngine::new(disks))
    }

    fn file(width: usize, chunk: u64) -> (StripedFile, Arc<IoEngine>) {
        let engine = make_engine(width);
        let members = (0..width).map(|i| Member { disk: i, base: 0 }).collect();
        let def = StripeDef::new("f", chunk, members);
        (StripedFile::new(def, Arc::clone(&engine)), engine)
    }

    #[test]
    fn roundtrip_across_stripes() {
        let (f, _e) = file(4, 16);
        let data: Vec<u8> = (0..200u8).collect();
        f.write_at(0, &data).unwrap();
        assert_eq!(f.read_at(0, 200).unwrap(), data);
        assert_eq!(f.len(), 200);
    }

    #[test]
    fn unaligned_reads_and_writes() {
        let (f, _e) = file(3, 10);
        let data: Vec<u8> = (0..=255u8).cycle().take(97).collect();
        f.write_at(7, &data).unwrap();
        assert_eq!(f.read_at(7, 97).unwrap(), data);
        // A sub-range of the write.
        assert_eq!(f.read_at(30, 20).unwrap(), data[23..43]);
    }

    #[test]
    fn data_actually_spreads_across_disks() {
        let (f, e) = file(4, 8);
        f.write_at(0, &[1u8; 64]).unwrap(); // 8 chunks over 4 disks
        for d in e.disks() {
            let st = d.stats();
            assert_eq!(st.bytes_written, 16, "disk {} got {st:?}", d.name());
        }
    }

    #[test]
    fn async_read_overlaps_members() {
        let (f, _e) = file(4, 8);
        f.write_at(0, &[9u8; 64]).unwrap();
        let r = f.read_at_async(0, 64);
        assert_eq!(r.wait().unwrap(), vec![9u8; 64]);
    }

    #[test]
    fn width_one_degenerates_to_plain_file() {
        let (f, _e) = file(1, 32);
        let data = vec![5u8; 100];
        f.write_at(0, &data).unwrap();
        assert_eq!(f.read_at(0, 100).unwrap(), data);
    }

    #[test]
    fn len_tracks_high_water_mark() {
        let (f, _e) = file(2, 10);
        f.write_at(50, &[1u8; 10]).unwrap();
        assert_eq!(f.len(), 60);
        f.write_at(0, &[1u8; 5]).unwrap();
        assert_eq!(f.len(), 60); // earlier write does not shrink
    }

    #[test]
    fn members_with_bases_do_not_collide() {
        // Two files on the same disks at different bases.
        let engine = make_engine(2);
        let f1 = StripedFile::new(
            StripeDef::new(
                "a",
                8,
                vec![Member { disk: 0, base: 0 }, Member { disk: 1, base: 0 }],
            ),
            Arc::clone(&engine),
        );
        let f2 = StripedFile::new(
            StripeDef::new(
                "b",
                8,
                vec![
                    Member {
                        disk: 0,
                        base: 1024,
                    },
                    Member {
                        disk: 1,
                        base: 1024,
                    },
                ],
            ),
            Arc::clone(&engine),
        );
        f1.write_at(0, &[0xAA; 64]).unwrap();
        f2.write_at(0, &[0xBB; 64]).unwrap();
        assert_eq!(f1.read_at(0, 64).unwrap(), vec![0xAA; 64]);
        assert_eq!(f2.read_at(0, 64).unwrap(), vec![0xBB; 64]);
    }
}
