//! Property tests for stripe geometry and striped IO, driven by a seeded
//! [`SplitMix64`] so every case is reproducible.

use std::sync::Arc;

use alphasort_dmgen::SplitMix64;
use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
use alphasort_stripefs::{Member, StripeDef, StripedFile, StripedReader, StripedWriter, Volume};

fn any_def(r: &mut SplitMix64) -> StripeDef {
    let chunk = 1 + r.next_below(63);
    let width = 1 + r.next_below(7) as usize;
    let members = (0..width)
        .map(|i| Member {
            disk: i,
            base: (i as u64) * 1_000_000,
        })
        .collect();
    StripeDef::new("p", chunk, members)
}

fn uncapped_disks(width: usize) -> Vec<Arc<SimDisk>> {
    (0..width)
        .map(|i| {
            SimDisk::new(
                format!("d{i}"),
                catalog::uncapped(),
                Arc::new(MemStorage::new()),
                Pacing::Modeled,
                None,
            )
        })
        .collect()
}

/// plan() covers the requested range exactly: contiguous buffer offsets,
/// each segment inside one chunk, total length preserved.
#[test]
fn plan_partitions_range() {
    let mut r = SplitMix64::new(0x5F1);
    for case in 0..256 {
        let def = any_def(&mut r);
        let offset = r.next_below(10_000);
        let len = r.next_below(5_000) as usize;
        let segs = def.plan(offset, len);
        let mut expect_buf = 0usize;
        for s in &segs {
            assert_eq!(s.buf_off, expect_buf, "case {case}");
            assert!(s.len > 0, "case {case}");
            assert!(s.len as u64 <= def.chunk, "case {case}");
            expect_buf += s.len;
        }
        assert_eq!(expect_buf, len, "case {case}");
    }
}

/// locate() agrees with plan(): single-byte plans land where locate says.
#[test]
fn locate_matches_plan() {
    let mut r = SplitMix64::new(0x5F2);
    for case in 0..256 {
        let def = any_def(&mut r);
        let offset = r.next_below(10_000);
        let (member, phys) = def.locate(offset);
        let segs = def.plan(offset, 1);
        assert_eq!(segs.len(), 1, "case {case}");
        assert_eq!(segs[0].member, member, "case {case}");
        assert_eq!(segs[0].phys, phys, "case {case}");
    }
}

/// Distinct logical offsets never map to the same physical byte.
#[test]
fn no_two_offsets_collide() {
    let mut r = SplitMix64::new(0x5F3);
    for case in 0..256 {
        let def = any_def(&mut r);
        let a = r.next_below(2_000);
        let b = r.next_below(2_000);
        if a == b {
            continue;
        }
        let (ma, pa) = def.locate(a);
        let (mb, pb) = def.locate(b);
        assert!(
            (ma, pa) != (mb, pb),
            "case {case}: offsets {a} and {b} collide"
        );
    }
}

/// Writing then reading arbitrary ranges through a striped file is an
/// identity, for arbitrary geometry.
#[test]
fn striped_io_roundtrip() {
    let mut r = SplitMix64::new(0x5F4);
    for case in 0..64 {
        let chunk = 1 + r.next_below(127);
        let width = 1 + r.next_below(5) as usize;
        let len = r.next_below(4_000) as usize;
        let offset = r.next_below(1_000);
        let engine = Arc::new(IoEngine::new(uncapped_disks(width)));
        let members = (0..width).map(|i| Member { disk: i, base: 0 }).collect();
        let f = StripedFile::new(StripeDef::new("io", chunk, members), engine);

        let mut data = vec![0u8; len];
        r.fill_bytes(&mut data);
        f.write_at(offset, &data).unwrap();
        assert_eq!(f.read_at(offset, len).unwrap(), data, "case {case}");
    }
}

/// Streaming writer + reader is an identity for arbitrary chunking of the
/// pushes.
#[test]
fn stream_roundtrip() {
    let mut r = SplitMix64::new(0x5F5);
    for case in 0..64 {
        let chunk = 16 + r.next_below(240);
        let width = 1 + r.next_below(4) as usize;
        let pieces: Vec<usize> = (0..r.next_below(12))
            .map(|_| r.next_below(700) as usize)
            .collect();
        let v = Volume::new(Arc::new(IoEngine::new(uncapped_disks(width))));
        let total: usize = pieces.iter().sum();
        let f = Arc::new(v.create_across_all("s", chunk, total as u64));

        let mut data = Vec::new();
        let mut w = StripedWriter::new(Arc::clone(&f));
        let mut b: u8 = 0;
        for &p in &pieces {
            let piece: Vec<u8> = (0..p)
                .map(|_| {
                    b = b.wrapping_add(17);
                    b
                })
                .collect();
            w.push(&piece).unwrap();
            data.extend_from_slice(&piece);
        }
        assert_eq!(w.finish().unwrap(), total as u64, "case {case}");

        let mut rd = StripedReader::new(f);
        let mut got = Vec::new();
        std::io::Read::read_to_end(&mut rd, &mut got).unwrap();
        assert_eq!(got, data, "case {case}");
    }
}
