//! Property tests for stripe geometry and striped IO.

use std::sync::Arc;

use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
use alphasort_stripefs::{Member, StripeDef, StripedFile, StripedReader, StripedWriter, Volume};
use proptest::prelude::*;

fn arb_def() -> impl Strategy<Value = StripeDef> {
    (1u64..64, 1usize..8).prop_map(|(chunk, width)| {
        let members = (0..width)
            .map(|i| Member {
                disk: i,
                base: (i as u64) * 1_000_000,
            })
            .collect();
        StripeDef::new("p", chunk, members)
    })
}

proptest! {
    /// plan() covers the requested range exactly: contiguous buffer offsets,
    /// each segment inside one chunk, total length preserved.
    #[test]
    fn plan_partitions_range(def in arb_def(), offset in 0u64..10_000, len in 0usize..5_000) {
        let segs = def.plan(offset, len);
        let mut expect_buf = 0usize;
        for s in &segs {
            prop_assert_eq!(s.buf_off, expect_buf);
            prop_assert!(s.len > 0);
            prop_assert!(s.len as u64 <= def.chunk);
            expect_buf += s.len;
        }
        prop_assert_eq!(expect_buf, len);
    }

    /// locate() agrees with plan(): single-byte plans land where locate says.
    #[test]
    fn locate_matches_plan(def in arb_def(), offset in 0u64..10_000) {
        let (member, phys) = def.locate(offset);
        let segs = def.plan(offset, 1);
        prop_assert_eq!(segs.len(), 1);
        prop_assert_eq!(segs[0].member, member);
        prop_assert_eq!(segs[0].phys, phys);
    }

    /// Distinct logical offsets never map to the same physical byte.
    #[test]
    fn no_two_offsets_collide(def in arb_def(), a in 0u64..2_000, b in 0u64..2_000) {
        prop_assume!(a != b);
        let (ma, pa) = def.locate(a);
        let (mb, pb) = def.locate(b);
        prop_assert!((ma, pa) != (mb, pb), "offsets {a} and {b} collide");
    }

    /// Writing then reading arbitrary ranges through a striped file is an
    /// identity, for arbitrary geometry.
    #[test]
    fn striped_io_roundtrip(
        chunk in 1u64..128,
        width in 1usize..6,
        len in 0usize..4_000,
        offset in 0u64..1_000,
        seed in any::<u64>(),
    ) {
        let disks = (0..width)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        let engine = Arc::new(IoEngine::new(disks));
        let members = (0..width).map(|i| Member { disk: i, base: 0 }).collect();
        let f = StripedFile::new(StripeDef::new("io", chunk, members), engine);

        let mut state = seed;
        let data: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        f.write_at(offset, &data).unwrap();
        prop_assert_eq!(f.read_at(offset, len).unwrap(), data);
    }

    /// Streaming writer + reader is an identity for arbitrary chunking of
    /// the pushes.
    #[test]
    fn stream_roundtrip(
        chunk in 16u64..256,
        width in 1usize..5,
        pieces in proptest::collection::vec(0usize..700, 0..12),
    ) {
        let disks = (0..width)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        let v = Volume::new(Arc::new(IoEngine::new(disks)));
        let total: usize = pieces.iter().sum();
        let f = Arc::new(v.create_across_all("s", chunk, total as u64));

        let mut data = Vec::new();
        let mut w = StripedWriter::new(Arc::clone(&f));
        let mut b: u8 = 0;
        for &p in &pieces {
            let piece: Vec<u8> = (0..p)
                .map(|_| {
                    b = b.wrapping_add(17);
                    b
                })
                .collect();
            w.push(&piece).unwrap();
            data.extend_from_slice(&piece);
        }
        prop_assert_eq!(w.finish().unwrap(), total as u64);

        let mut r = StripedReader::new(f);
        let mut got = Vec::new();
        std::io::Read::read_to_end(&mut r, &mut got).unwrap();
        prop_assert_eq!(got, data);
    }
}
