//! Table 1 / Graph 2: published Datamation sort results, 1985–1993.
//!
//! These are the paper's literature data; `exp_table1` prints them next to
//! the reproduction's own measured results so the trend lines of Graph 2
//! (time falling, price-performance improving) can be regenerated.

/// One published result (a Table 1 row).
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryRow {
    /// System / implementation.
    pub system: &'static str,
    /// Year of the result (chronological order of Table 1).
    pub year: u32,
    /// Elapsed seconds for the 100 MB benchmark.
    pub time_s: f64,
    /// $/sort (5-year prorated; `*` rows estimated by the paper).
    pub dollars_per_sort: f64,
    /// Approximate system cost, millions of dollars.
    pub cost_millions: f64,
    /// CPUs used.
    pub cpus: u32,
    /// Disks used.
    pub disks: u32,
}

/// The rows of Table 1 in chronological order.
pub fn table1() -> Vec<HistoryRow> {
    vec![
        HistoryRow {
            system: "Tandem (Tsukerman et al.)",
            year: 1985,
            time_s: 3600.0,
            dollars_per_sort: 4.61,
            cost_millions: 0.2,
            cpus: 2,
            disks: 2,
        },
        HistoryRow {
            system: "Beck",
            year: 1986,
            time_s: 980.0,
            dollars_per_sort: 1.92,
            cost_millions: 0.1,
            cpus: 4,
            disks: 4,
        },
        HistoryRow {
            system: "Tsukerman + Tandem",
            year: 1986,
            time_s: 320.0,
            dollars_per_sort: 1.25,
            cost_millions: 0.2,
            cpus: 3,
            disks: 6,
        },
        HistoryRow {
            system: "Weinberger + Cray",
            year: 1986,
            time_s: 26.0,
            dollars_per_sort: 1.25,
            cost_millions: 7.5,
            cpus: 1,
            disks: 1,
        },
        HistoryRow {
            system: "Kitsuregawa (hardware sorter)",
            year: 1989,
            time_s: 180.0,
            dollars_per_sort: 0.41,
            cost_millions: 0.2,
            cpus: 1,
            disks: 1,
        },
        HistoryRow {
            system: "Baugsto (16 cpu)",
            year: 1989,
            time_s: 83.0,
            dollars_per_sort: 0.23,
            cost_millions: 0.2,
            cpus: 16,
            disks: 16,
        },
        HistoryRow {
            system: "Graefe + Sequent",
            year: 1990,
            time_s: 40.0,
            dollars_per_sort: 0.27,
            cost_millions: 0.5,
            cpus: 8,
            disks: 4,
        },
        HistoryRow {
            system: "Baugsto (100 cpu)",
            year: 1990,
            time_s: 40.0,
            dollars_per_sort: 0.26,
            cost_millions: 1.0,
            cpus: 100,
            disks: 100,
        },
        HistoryRow {
            system: "DeWitt + Intel iPSC/2",
            year: 1992,
            time_s: 58.0,
            dollars_per_sort: 0.37,
            cost_millions: 1.0,
            cpus: 32,
            disks: 32,
        },
        HistoryRow {
            system: "AlphaSort, DEC 7000 AXP (1 cpu)",
            year: 1993,
            time_s: 9.1,
            dollars_per_sort: 0.022,
            cost_millions: 0.4,
            cpus: 1,
            disks: 16,
        },
        HistoryRow {
            system: "AlphaSort, DEC 4000 AXP",
            year: 1993,
            time_s: 8.2,
            dollars_per_sort: 0.011,
            cost_millions: 0.2,
            cpus: 2,
            disks: 14,
        },
        HistoryRow {
            system: "AlphaSort, DEC 7000 AXP (3 cpu)",
            year: 1993,
            time_s: 7.0,
            dollars_per_sort: 0.014,
            cost_millions: 0.5,
            cpus: 3,
            disks: 28,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chronological_and_complete() {
        let rows = table1();
        assert_eq!(rows.len(), 12);
        assert!(rows.windows(2).all(|w| w[0].year <= w[1].year));
    }

    #[test]
    fn alphasort_beats_cray_by_about_4x_and_hypercube_by_8x() {
        let rows = table1();
        let cray = rows.iter().find(|r| r.system.contains("Cray")).unwrap();
        let cube = rows.iter().find(|r| r.system.contains("iPSC")).unwrap();
        let best = rows.iter().map(|r| r.time_s).fold(f64::INFINITY, f64::min);
        assert!((cray.time_s / best - 3.7).abs() < 0.5); // "about 4x"
        assert!((cube.time_s / best - 8.3).abs() < 0.5); // "8:1"
    }

    #[test]
    fn alphasort_is_about_100x_cheaper_than_cray() {
        let rows = table1();
        let cray = rows.iter().find(|r| r.system.contains("Cray")).unwrap();
        let a1 = rows
            .iter()
            .find(|r| r.system.contains("AXP (1 cpu)"))
            .unwrap();
        assert!(cray.dollars_per_sort / a1.dollars_per_sort > 50.0);
    }
}
