//! Plain-text table rendering for the experiment binaries.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are padded/truncated to the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a header rule, and trailing newline.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with sensible precision.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format dollars with sensible precision.
pub fn dollars(x: f64) -> String {
    if x >= 1000.0 {
        format!("{:.0}k$", x / 1000.0)
    } else if x >= 1.0 {
        format!("{x:.2}$")
    } else {
        format!("{x:.3}$")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "time"]);
        t.row(["short", "1.0"]);
        t.row(["a-much-longer-name", "22.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "time" values start at the same offset.
        let off = lines[2].find("1.0").unwrap();
        assert_eq!(lines[3].find("22.5").unwrap(), off);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(dollars(38400.0), "38k$");
        assert_eq!(dollars(4.61), "4.61$");
        assert_eq!(dollars(0.014), "0.014$");
    }
}
