//! The benchmark metrics: Datamation $/sort, MinuteSort, DollarSort (§8).

use crate::prices::{FIVE_YEARS_SECS, MINUTES_PER_DOLLAR_DIVISOR};

/// Datamation price metric: the 5-year system cost prorated over the sort's
/// elapsed time. "A one minute sort on a machine with a 5-year cost of a
/// million dollars would cost 38 cents."
///
/// ```
/// use alphasort_perfmodel::metrics::datamation_dollars_per_sort;
/// let cents = datamation_dollars_per_sort(1_000_000.0, 60.0) * 100.0;
/// assert!((cents - 38.0).abs() < 0.5);
/// ```
pub fn datamation_dollars_per_sort(system_price: f64, elapsed_s: f64) -> f64 {
    system_price * elapsed_s / FIVE_YEARS_SECS
}

/// MinuteSort results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinuteSortResult {
    /// Gigabytes sorted in the minute.
    pub sorted_gb: f64,
    /// Cost of the minute, dollars (price / 1M: 3-year depreciation with
    /// the built-in ~30% software inflator).
    pub minute_cost: f64,
    /// Price-performance, $/sorted GB.
    pub dollars_per_gb: f64,
}

/// Score a MinuteSort run: `sorted_bytes` sorted within the minute on a
/// system with the given list price.
pub fn minutesort(system_price: f64, sorted_bytes: u64) -> MinuteSortResult {
    let sorted_gb = sorted_bytes as f64 / 1e9;
    let minute_cost = system_price / MINUTES_PER_DOLLAR_DIVISOR;
    MinuteSortResult {
        sorted_gb,
        minute_cost,
        dollars_per_gb: if sorted_gb > 0.0 {
            minute_cost / sorted_gb
        } else {
            f64::INFINITY
        },
    }
}

/// DollarSort results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DollarSortResult {
    /// The time budget one dollar buys on this system, seconds.
    pub budget_s: f64,
    /// Gigabytes sorted within the budget.
    pub sorted_gb: f64,
    /// Elapsed time actually used, seconds.
    pub elapsed_s: f64,
}

/// The elapsed-time budget one dollar buys: "each minute of computer time
/// costs about one millionth of the system list price", so a million-dollar
/// system gets one minute and a 10,000$ system gets 100 minutes.
pub fn dollarsort_budget_s(system_price: f64) -> f64 {
    assert!(system_price > 0.0, "system price must be positive");
    60.0 * MINUTES_PER_DOLLAR_DIVISOR / system_price
}

/// Score a DollarSort run.
pub fn dollarsort(system_price: f64, sorted_bytes: u64, elapsed_s: f64) -> DollarSortResult {
    DollarSortResult {
        budget_s: dollarsort_budget_s(system_price),
        sorted_gb: sorted_bytes as f64 / 1e9,
        elapsed_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_38_cent_example() {
        // 1 M$ machine, one-minute sort → 38 cents.
        let d = datamation_dollars_per_sort(1_000_000.0, 60.0);
        assert!((d - 0.38).abs() < 0.005, "{d}");
    }

    #[test]
    fn paper_table8_dollars_per_sort() {
        // DEC 7000 3-cpu: 312 k$, 7.0 s → 0.014 $.
        let d = datamation_dollars_per_sort(312_000.0, 7.0);
        assert!((d - 0.014).abs() < 0.001, "{d}");
        // DEC 3000: 97 k$, 13.7 s → 0.009 $ (the price-performance leader).
        let d = datamation_dollars_per_sort(97_000.0, 13.7);
        assert!((d - 0.009).abs() < 0.001, "{d}");
    }

    #[test]
    fn paper_minutesort_example() {
        // 512 k$ system sorting 1.08 GB: 51 cents, 0.47 $/GB.
        let r = minutesort(512_000.0, 1_080_000_000);
        assert!((r.minute_cost - 0.512).abs() < 0.001);
        assert!(
            (r.dollars_per_gb - 0.474).abs() < 0.01,
            "{}",
            r.dollars_per_gb
        );
    }

    #[test]
    fn dollarsort_budgets() {
        assert!((dollarsort_budget_s(1_000_000.0) - 60.0).abs() < 1e-9);
        assert!((dollarsort_budget_s(10_000.0) - 6_000.0).abs() < 1e-9);
    }

    #[test]
    fn minutesort_zero_bytes_is_infinite_price() {
        assert!(minutesort(100_000.0, 0).dollars_per_gb.is_infinite());
    }
}
