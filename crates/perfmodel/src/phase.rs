//! The analytic phase model: §7's walk-through as arithmetic.
//!
//! The one-pass sort's schedule is:
//!
//! ```text
//! startup | read ∥ quicksort | last-run sort | write ∥ merge+gather | shutdown
//! ```
//!
//! Each overlapped phase takes the *max* of its IO time and its CPU time
//! (divided across CPUs), because AlphaSort triple-buffers and hands chores
//! to workers. CPU constants are calibrated on the paper's own numbers for
//! the 200 MHz (5 ns) uniprocessor: ~2.1 s of QuickSort + extraction,
//! ~3.9 s of merge+gather ("it takes almost four seconds of processor and
//! memory time"), 0.12 s to sort the last run, and ~0.3 s of startup plus
//! shutdown (§6 itemizes 0.19 s of opens/closes on top of 0.11 s of load).

use crate::machines::MachineConfig;

/// CPU seconds to extract + QuickSort 100 MB of entries on one 5 ns CPU.
const SORT_CPU_100MB_5NS: f64 = 2.1;
/// CPU seconds to merge + gather 100 MB on one 5 ns CPU.
const MERGE_GATHER_CPU_100MB_5NS: f64 = 3.9;
/// Seconds to sort the final run after input completes (no IO overlap).
const LAST_RUN_SORT_5NS: f64 = 0.12;
/// Launch + opens + creates (before data flows).
const STARTUP_S: f64 = 0.2;
/// Closes + return to shell.
const SHUTDOWN_S: f64 = 0.15;

/// Where the modeled time goes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseBreakdown {
    /// Launch, opens, creates.
    pub startup: f64,
    /// Read phase (overlapped with QuickSorting): its elapsed time.
    pub read_phase: f64,
    /// Of the read phase, how much was pure IO wait vs CPU-bound.
    pub read_io_bound: bool,
    /// Sorting the last run (input finished, output not started).
    pub last_run_sort: f64,
    /// Write phase (overlapped with merge+gather): its elapsed time.
    pub write_phase: f64,
    /// Whether the write phase was IO bound.
    pub write_io_bound: bool,
    /// Closes, return to shell.
    pub shutdown: f64,
    /// QuickSort CPU consumed (across all CPUs).
    pub sort_cpu: f64,
    /// Merge+gather CPU consumed (across all CPUs).
    pub merge_gather_cpu: f64,
}

impl PhaseBreakdown {
    /// Total elapsed seconds.
    pub fn total(&self) -> f64 {
        self.startup + self.read_phase + self.last_run_sort + self.write_phase + self.shutdown
    }
}

/// Model a one-pass Datamation-style sort of `input_mb` megabytes on `m`.
pub fn datamation_model(m: &MachineConfig, input_mb: f64) -> PhaseBreakdown {
    let clock_scale = m.clock_ns / 5.0;
    let size_scale = input_mb / 100.0;
    let cpus = f64::from(m.cpus.max(1));

    let sort_cpu = SORT_CPU_100MB_5NS * clock_scale * size_scale;
    let merge_gather_cpu = MERGE_GATHER_CPU_100MB_5NS * clock_scale * size_scale;
    let read_io = input_mb / m.read_mbps;
    let write_io = input_mb / m.write_mbps;

    let read_phase = read_io.max(sort_cpu / cpus);
    let write_phase = write_io.max(merge_gather_cpu / cpus);

    PhaseBreakdown {
        startup: STARTUP_S,
        read_phase,
        read_io_bound: read_io >= sort_cpu / cpus,
        last_run_sort: LAST_RUN_SORT_5NS * clock_scale,
        write_phase,
        write_io_bound: write_io >= merge_gather_cpu / cpus,
        shutdown: SHUTDOWN_S,
        sort_cpu,
        merge_gather_cpu,
    }
}

/// One slice of the Figure 7 pie: where the 9-second sort's clock ticks go,
/// as the paper's hardware monitor reported them.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure7Slice {
    /// Component name.
    pub component: &'static str,
    /// Fraction of total cycles.
    pub fraction: f64,
}

/// The paper's Figure 7 / §7 processor-time breakdown for the DEC 7000
/// uniprocessor run: 29% of clocks issue instructions; 56% stall on
/// D-stream misses (12% serviced by the B-cache, 44% by memory); 11% stall
/// on I-stream misses; 4% on branch mispredicts.
pub fn figure7_paper() -> Vec<Figure7Slice> {
    vec![
        Figure7Slice {
            component: "issuing instructions",
            fraction: 0.29,
        },
        Figure7Slice {
            component: "D-stream miss, D-to-B",
            fraction: 0.12,
        },
        Figure7Slice {
            component: "D-stream miss, B-to-memory",
            fraction: 0.44,
        },
        Figure7Slice {
            component: "I-stream miss",
            fraction: 0.11,
        },
        Figure7Slice {
            component: "branch mispredict",
            fraction: 0.04,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{minutesort_machine, table8};

    #[test]
    fn uniprocessor_walkthrough_lands_on_9_1_seconds() {
        let m = &table8()[2]; // 1-cpu DEC 7000
        let b = datamation_model(m, 100.0);
        // §7: read 3.87 s, last run 0.12 s, write 4.9 s, ~9.1 s total.
        assert!((b.read_phase - 3.87).abs() < 0.05, "read {}", b.read_phase);
        assert!(
            (b.write_phase - 4.9).abs() < 0.05,
            "write {}",
            b.write_phase
        );
        assert!((b.total() - 9.1).abs() < 0.25, "total {}", b.total());
        assert!(b.read_io_bound && b.write_io_bound);
    }

    #[test]
    fn every_table8_row_within_ten_percent_of_paper() {
        for m in table8() {
            let b = datamation_model(&m, 100.0);
            let err = (b.total() - m.paper_time_s).abs() / m.paper_time_s;
            assert!(
                err < 0.10,
                "{}: modeled {:.2} vs paper {:.2}",
                m.name,
                b.total(),
                m.paper_time_s
            );
        }
    }

    #[test]
    fn more_cpus_help_only_cpu_bound_phases() {
        let mut m = table8()[2].clone();
        let one = datamation_model(&m, 100.0);
        m.cpus = 3;
        let three = datamation_model(&m, 100.0);
        // Both phases were IO bound on this machine: no change.
        assert_eq!(one.total(), three.total());

        // Starve the IO so the merge+gather becomes CPU bound.
        m.read_mbps = 200.0;
        m.write_mbps = 200.0;
        m.cpus = 1;
        let cpu_bound = datamation_model(&m, 100.0);
        assert!(!cpu_bound.write_io_bound);
        m.cpus = 3;
        let cpu_bound_3 = datamation_model(&m, 100.0);
        assert!(cpu_bound_3.total() < cpu_bound.total());
    }

    #[test]
    fn minutesort_machine_sorts_about_a_gigabyte_per_minute() {
        // The paper: 1.08 GB in a minute on the 3-cpu 36-disk DEC 7000.
        let m = minutesort_machine();
        let b = datamation_model(&m, 1_080.0);
        assert!(
            (b.total() - 60.0).abs() < 8.0,
            "modeled {:.1} s for 1.08 GB",
            b.total()
        );
    }

    #[test]
    fn figure7_fractions_sum_to_one() {
        let total: f64 = figure7_paper().iter().map(|s| s.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_disk_hits_the_one_minute_barrier() {
        // §6: one 1993 SCSI disk (4.5 read / 3.5 write) ≈ one minute.
        let m = MachineConfig {
            name: "one disk".into(),
            cpus: 1,
            clock_ns: 5.0,
            controllers: "1 SCSI".into(),
            drives: "1".into(),
            memory_mb: 256,
            read_mbps: 4.5,
            write_mbps: 3.5,
            system_price: 100_000.0,
            disk_ctlr_price: 2_400.0,
            paper_time_s: 60.0,
            paper_dollars_per_sort: 0.0,
        };
        let b = datamation_model(&m, 100.0);
        assert!(b.total() > 48.0 && b.total() < 60.0, "total {}", b.total());
    }
}
