//! 1993 price constants from the paper.

/// Memory price, dollars per megabyte (§6: "At 100$/MB this is 10k$").
pub const MEMORY_PER_MB: f64 = 100.0;

/// A commodity disk plus its share of a controller (§6: "a disk and its
/// controller costs about 2400$").
pub const DISK_PLUS_CONTROLLER: f64 = 2400.0;

/// Seconds in the TPC's 5-year depreciation window (Datamation $/sort).
pub const FIVE_YEARS_SECS: f64 = 5.0 * 365.25 * 24.0 * 3600.0;

/// Minutes in 3 years — the paper rounds 1.58 M to 1 M to fold in a ~30%
/// software/maintenance inflator ("dividing the price by 1M gives a slight
/// (30%) inflator").
pub const MINUTES_PER_DOLLAR_DIVISOR: f64 = 1.0e6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_100mb_memory_cost() {
        // §6: 100 MB of memory at 100 $/MB = 10 k$.
        assert_eq!(100.0 * MEMORY_PER_MB, 10_000.0);
    }

    #[test]
    fn paper_16_scratch_disks_cost() {
        // §6: 16 scratch disks = 38.4 k$ ("a total price of 36k$" in the
        // text's rounding).
        assert_eq!(16.0 * DISK_PLUS_CONTROLLER, 38_400.0);
    }

    #[test]
    fn three_years_is_about_1_58m_minutes() {
        let minutes: f64 = 3.0 * 365.25 * 24.0 * 60.0;
        assert!((minutes / 1.0e6 - 1.58).abs() < 0.01);
    }
}
