//! Minimal ASCII charting for Graph 2-style log-scale scatter plots.
//!
//! Graph 2 of the paper plots sort time and $/sort on log scales against
//! chronology. [`LogChart`] renders the same thing in a terminal: one row
//! per decade of the value axis, points labelled by a caller-chosen glyph.

/// One point: x position (column bucket), y value (log-scaled), glyph.
#[derive(Clone, Debug)]
pub struct ChartPoint {
    /// Column label (e.g. the year); points bucket by equal labels.
    pub x_label: String,
    /// Value; must be positive (log scale).
    pub value: f64,
    /// Single-character marker.
    pub glyph: char,
}

/// A log-scale scatter chart rendered to text.
pub struct LogChart {
    title: String,
    points: Vec<ChartPoint>,
    rows: usize,
}

impl LogChart {
    /// New chart with a title and a vertical resolution (rows per chart,
    /// spread across the data's log range).
    pub fn new(title: impl Into<String>, rows: usize) -> Self {
        LogChart {
            title: title.into(),
            points: Vec::new(),
            rows: rows.max(4),
        }
    }

    /// Add a point.
    ///
    /// # Panics
    /// If `value` is not positive (log scale).
    pub fn point(&mut self, x_label: impl Into<String>, value: f64, glyph: char) -> &mut Self {
        assert!(value > 0.0, "log chart values must be positive");
        self.points.push(ChartPoint {
            x_label: x_label.into(),
            value,
            glyph,
        });
        self
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        if self.points.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            lo = lo.min(p.value.log10());
            hi = hi.max(p.value.log10());
        }
        if (hi - lo).abs() < 1e-12 {
            hi = lo + 1.0;
        }

        // Distinct x labels in first-seen order.
        let mut columns: Vec<String> = Vec::new();
        for p in &self.points {
            if !columns.contains(&p.x_label) {
                columns.push(p.x_label.clone());
            }
        }
        let col_w = columns.iter().map(|c| c.len()).max().unwrap_or(4).max(4) + 1;

        let mut grid = vec![vec![' '; columns.len() * col_w]; self.rows];
        for p in &self.points {
            let row =
                ((hi - p.value.log10()) / (hi - lo) * (self.rows - 1) as f64).round() as usize;
            let col = columns
                .iter()
                .position(|c| *c == p.x_label)
                .expect("column exists");
            // Nudge right if the cell is taken, so coincident points show.
            let base = col * col_w;
            let mut slot = base;
            while slot < base + col_w - 1 && grid[row][slot] != ' ' {
                slot += 1;
            }
            grid[row][slot] = p.glyph;
        }

        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (i, row) in grid.iter().enumerate() {
            // Left axis: the log10 value at this row.
            let v = hi - (hi - lo) * i as f64 / (self.rows - 1) as f64;
            let line: String = row.iter().collect();
            out.push_str(&format!(
                "{:>9} |{}\n",
                format_axis(10f64.powf(v)),
                line.trim_end()
            ));
        }
        out.push_str(&format!(
            "{:>9} +{}\n",
            "",
            "-".repeat(columns.len() * col_w)
        ));
        out.push_str(&format!("{:>9}  ", ""));
        for c in &columns {
            out.push_str(&format!("{c:<col_w$}"));
        }
        out.push('\n');
        out
    }
}

fn format_axis(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.0}", v)
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_on_log_scale() {
        let mut c = LogChart::new("times", 8);
        c.point("1985", 3600.0, 'o');
        c.point("1993", 7.0, '*');
        let s = c.render();
        assert!(s.contains("times"));
        assert!(s.contains('o'));
        assert!(s.contains('*'));
        // The big value must appear on an earlier (higher) line.
        let o_line = s.lines().position(|l| l.contains('o')).unwrap();
        let star_line = s.lines().position(|l| l.contains('*')).unwrap();
        assert!(o_line < star_line);
        // X labels on the final line.
        assert!(s.lines().last().unwrap().contains("1985"));
    }

    #[test]
    fn coincident_points_both_visible() {
        let mut c = LogChart::new("t", 6);
        c.point("1990", 40.0, 'a');
        c.point("1990", 40.0, 'b');
        let s = c.render();
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        assert!(LogChart::new("t", 5).render().contains("no data"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_value_rejected() {
        LogChart::new("t", 5).point("x", 0.0, '?');
    }
}
