//! Prices, metrics, and the analytic performance model.
//!
//! The paper's elapsed-time tables are bandwidth-and-overlap arithmetic over
//! 1993 hardware, and its price-performance numbers are that arithmetic
//! times 1993 list prices. This crate holds both:
//!
//! * [`prices`] — 1993 constants ($100/MB memory, ~$2,400 disk+controller)
//!   and the depreciation rules of the Datamation, MinuteSort and
//!   DollarSort metrics ([`metrics`]),
//! * [`machines`] — the five Alpha AXP configurations of Table 8,
//! * [`phase`] — the phase/overlap model that regenerates §7's 9.1-second
//!   walk-through, Table 8's times, and Figure 7's breakdown,
//! * [`economics`] — §6's one-pass vs. two-pass buy-memory-or-disks
//!   analysis,
//! * [`history`] — Table 1 / Graph 2's published-results data,
//! * [`table`] — plain-text table rendering shared by the experiments.

pub mod chart;
pub mod economics;
pub mod history;
pub mod machines;
pub mod metrics;
pub mod phase;
pub mod prices;
pub mod table;

pub use chart::LogChart;
pub use machines::MachineConfig;
pub use metrics::{
    datamation_dollars_per_sort, dollarsort, minutesort, DollarSortResult, MinuteSortResult,
};
pub use phase::{datamation_model, PhaseBreakdown};
pub use table::Table;
