//! §6's one-pass vs. two-pass economics: buy memory or buy scratch disks?
//!
//! "The question becomes: What is the relative price of those scratch disks
//! and their controllers versus the price of the memory needed to allow a
//! one-pass sort?" The paper's two anchor points: a 100 MB sort needs
//! 16 dedicated scratch disks (38.4 k$) against 10 k$ of memory — one-pass
//! wins 3.6:1; a 1 GB sort needs ~36 scratch disks (86.4 k$) against
//! ~100 k$ of memory — two-pass is ~15% cheaper. The crossover sits just
//! under a gigabyte, matching "multi-gigabyte sorts should be done as
//! two-pass sorts, but for things much smaller than that, one-pass sorts
//! are more economical."

use crate::prices::{DISK_PLUS_CONTROLLER, MEMORY_PER_MB};

/// Cost comparison at one sort size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PassEconomics {
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Scratch disks a two-pass sort dedicates.
    pub scratch_disks: u32,
    /// Price of the extra memory a one-pass sort needs, dollars.
    pub memory_cost: f64,
    /// Price of the scratch disks + controllers, dollars.
    pub scratch_cost: f64,
}

impl PassEconomics {
    /// True when buying memory (one-pass) is the cheaper option.
    pub fn one_pass_wins(&self) -> bool {
        self.memory_cost <= self.scratch_cost
    }
}

/// Scratch-stripe width for an input of `bytes`.
///
/// Anchored on the paper's two data points — 16 disks at 100 MB and 36 at
/// 1 GB — and interpolated with the power law they imply
/// (36/16 = 2.25 per decade ⇒ exponent log₁₀ 2.25 ≈ 0.352): the scratch
/// stripe must carry the doubled bandwidth of the bigger sort, but the
/// bigger sort also tolerates proportionally more elapsed time.
pub fn scratch_disks_for(bytes: u64) -> u32 {
    const EXP: f64 = 0.352_18; // log10(36/16)
    let scale = (bytes as f64 / 1e8).powf(EXP);
    (16.0 * scale).round().max(1.0) as u32
}

/// Evaluate the §6 comparison at one input size.
pub fn pass_economics(input_bytes: u64) -> PassEconomics {
    let disks = scratch_disks_for(input_bytes);
    PassEconomics {
        input_bytes,
        scratch_disks: disks,
        memory_cost: input_bytes as f64 / 1e6 * MEMORY_PER_MB,
        scratch_cost: f64::from(disks) * DISK_PLUS_CONTROLLER,
    }
}

/// Disks needed to move `input_mb` through a read phase and a write phase
/// within `target_s` seconds, given per-disk rates.
///
/// The §6 footnote's write-cache question: "SCSI-II discs support write
/// cache enabled (WCE)… If WCE were used, 20% fewer discs would be needed."
/// With WCE a drive acknowledges writes at its streaming (read) rate, so
/// compare `disks_needed(r, w, …)` against `disks_needed(r, r, …)`.
pub fn disks_needed(read_mbps: f64, write_mbps: f64, input_mb: f64, target_s: f64) -> u32 {
    assert!(read_mbps > 0.0 && write_mbps > 0.0 && target_s > 0.0);
    let per_disk_time = input_mb / read_mbps + input_mb / write_mbps;
    (per_disk_time / target_s).ceil() as u32
}

/// Fraction of disks saved by enabling WCE (write at the read rate).
pub fn wce_disk_saving(read_mbps: f64, write_mbps: f64) -> f64 {
    let without = 1.0 / read_mbps + 1.0 / write_mbps;
    let with = 2.0 / read_mbps;
    1.0 - with / without
}

/// Find the crossover size (bytes) where scratch disks become cheaper than
/// memory, by bisection over [lo, hi].
pub fn crossover_bytes() -> u64 {
    let (mut lo, mut hi) = (1u64 << 20, 1u64 << 40);
    // memory_cost grows linearly, scratch sub-linearly: one crossover.
    for _ in 0..60 {
        let mid = lo + (hi - lo) / 2;
        if pass_economics(mid).one_pass_wins() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_100mb() {
        let e = pass_economics(100_000_000);
        assert_eq!(e.scratch_disks, 16);
        assert!((e.memory_cost - 10_000.0).abs() < 1.0);
        assert!((e.scratch_cost - 38_400.0).abs() < 1.0);
        assert!(e.one_pass_wins());
        // §6: "360% more expensive to buy the disks".
        assert!((e.scratch_cost / e.memory_cost - 3.84).abs() < 0.1);
    }

    #[test]
    fn paper_anchor_1gb() {
        let e = pass_economics(1_000_000_000);
        assert_eq!(e.scratch_disks, 36);
        assert!((e.memory_cost - 100_000.0).abs() < 1.0);
        assert!((e.scratch_cost - 86_400.0).abs() < 1.0);
        assert!(!e.one_pass_wins());
        // §6: "15% less expensive to buy 36 extra disks".
        assert!((1.0 - e.scratch_cost / e.memory_cost - 0.14).abs() < 0.03);
    }

    #[test]
    fn crossover_is_just_under_a_gigabyte() {
        let x = crossover_bytes();
        assert!(
            (500_000_000..1_000_000_000).contains(&x),
            "crossover at {x}"
        );
    }

    #[test]
    fn wce_saves_roughly_the_papers_20_percent() {
        // The paper's write-integrity footnote: RZ26-class drives write
        // ~25–30% below their read rate, so WCE saves ~12–20% of disks.
        let saving = wce_disk_saving(1.8, 1.4);
        assert!((0.10..0.25).contains(&saving), "saving {saving}");
        // A drive whose writes are at half its read rate would save 1/3.
        assert!((wce_disk_saving(4.0, 2.0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn disks_needed_for_the_8_second_sort() {
        // §6: the 100 MB sort at ~8–9 s on RZ26-class arrays used 16 disks.
        let n = disks_needed(1.8, 1.4, 100.0, 8.0);
        assert!((15..=18).contains(&n), "disks {n}");
        // With WCE, fewer.
        let n_wce = disks_needed(1.8, 1.8, 100.0, 8.0);
        assert!(n_wce < n);
    }

    #[test]
    fn tiny_sorts_always_one_pass() {
        assert!(pass_economics(1_000_000).one_pass_wins());
    }

    #[test]
    fn terabyte_sorts_always_two_pass() {
        assert!(!pass_economics(1_000_000_000_000).one_pass_wins());
    }
}
