//! The Alpha AXP configurations of Table 8 (October 1993).
//!
//! Stripe read/write rates are not printed in Table 8 itself; they are set
//! from the paper's measured numbers where given (§7: the 16-drive DEC 7000
//! read at ~25.8 MB/s and wrote at ~20.4 MB/s; §6: 8-wide striping gave
//! 27 MB/s read / 22 MB/s write) and scaled by drive count for the other
//! rows so the modeled elapsed times land on Table 8's.

use alphasort_minijson::{Json, JsonError};

/// One machine configuration (a Table 8 row).
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// System name.
    pub name: String,
    /// Number of CPUs.
    pub cpus: u32,
    /// CPU clock period in nanoseconds (5 ns = 200 MHz).
    pub clock_ns: f64,
    /// Controller description (for the table).
    pub controllers: String,
    /// Drive description (for the table).
    pub drives: String,
    /// Memory in megabytes.
    pub memory_mb: u32,
    /// Aggregate striped read bandwidth, MB/s.
    pub read_mbps: f64,
    /// Aggregate striped write bandwidth, MB/s.
    pub write_mbps: f64,
    /// Total system list price, dollars.
    pub system_price: f64,
    /// Disks + controllers portion of the price, dollars.
    pub disk_ctlr_price: f64,
    /// Elapsed seconds the paper reports (for comparison).
    pub paper_time_s: f64,
    /// $/sort the paper reports.
    pub paper_dollars_per_sort: f64,
}

impl MachineConfig {
    /// JSON form, for host-side machine tables.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("cpus".into(), Json::from(self.cpus)),
            ("clock_ns".into(), Json::from(self.clock_ns)),
            ("controllers".into(), Json::from(self.controllers.as_str())),
            ("drives".into(), Json::from(self.drives.as_str())),
            ("memory_mb".into(), Json::from(self.memory_mb)),
            ("read_mbps".into(), Json::from(self.read_mbps)),
            ("write_mbps".into(), Json::from(self.write_mbps)),
            ("system_price".into(), Json::from(self.system_price)),
            ("disk_ctlr_price".into(), Json::from(self.disk_ctlr_price)),
            ("paper_time_s".into(), Json::from(self.paper_time_s)),
            (
                "paper_dollars_per_sort".into(),
                Json::from(self.paper_dollars_per_sort),
            ),
        ])
    }

    /// Rebuild from the JSON form.
    pub fn from_json(v: &Json) -> Result<MachineConfig, JsonError> {
        Ok(MachineConfig {
            name: v.field_str("name")?.to_string(),
            cpus: v.field_u64("cpus")? as u32,
            clock_ns: v.field_f64("clock_ns")?,
            controllers: v.field_str("controllers")?.to_string(),
            drives: v.field_str("drives")?.to_string(),
            memory_mb: v.field_u64("memory_mb")? as u32,
            read_mbps: v.field_f64("read_mbps")?,
            write_mbps: v.field_f64("write_mbps")?,
            system_price: v.field_f64("system_price")?,
            disk_ctlr_price: v.field_f64("disk_ctlr_price")?,
            paper_time_s: v.field_f64("paper_time_s")?,
            paper_dollars_per_sort: v.field_f64("paper_dollars_per_sort")?,
        })
    }
}

/// The five rows of Table 8.
pub fn table8() -> Vec<MachineConfig> {
    vec![
        MachineConfig {
            name: "DEC 7000 AXP (3 cpu)".into(),
            cpus: 3,
            clock_ns: 5.0,
            controllers: "7 fast-SCSI".into(),
            drives: "28 RZ26".into(),
            memory_mb: 256,
            read_mbps: 38.0,
            write_mbps: 31.0,
            system_price: 312_000.0,
            disk_ctlr_price: 123_000.0,
            paper_time_s: 7.0,
            paper_dollars_per_sort: 0.014,
        },
        MachineConfig {
            name: "DEC 4000 AXP (2 cpu)".into(),
            cpus: 2,
            clock_ns: 6.25,
            controllers: "4 SCSI, 3 IPI".into(),
            drives: "12 scsi + 6 ipi".into(),
            memory_mb: 256,
            read_mbps: 30.0,
            write_mbps: 24.0,
            system_price: 312_000.0,
            disk_ctlr_price: 95_000.0,
            paper_time_s: 8.2,
            paper_dollars_per_sort: 0.016,
        },
        MachineConfig {
            name: "DEC 7000 AXP (1 cpu)".into(),
            cpus: 1,
            clock_ns: 5.0,
            controllers: "6 fast-SCSI".into(),
            drives: "16 RZ74".into(),
            memory_mb: 256,
            read_mbps: 25.8,
            write_mbps: 20.4,
            system_price: 247_000.0,
            disk_ctlr_price: 65_000.0,
            paper_time_s: 9.1,
            paper_dollars_per_sort: 0.014,
        },
        MachineConfig {
            name: "DEC 4000 AXP (1 cpu)".into(),
            cpus: 1,
            clock_ns: 6.25,
            controllers: "4 fast-SCSI".into(),
            drives: "12 RZ26".into(),
            memory_mb: 384,
            read_mbps: 21.0,
            write_mbps: 17.0,
            system_price: 166_000.0,
            disk_ctlr_price: 48_000.0,
            paper_time_s: 11.3,
            paper_dollars_per_sort: 0.014,
        },
        MachineConfig {
            name: "DEC 3000 AXP (1 cpu)".into(),
            cpus: 1,
            clock_ns: 6.6,
            controllers: "5 SCSI".into(),
            drives: "10 RZ26".into(),
            memory_mb: 256,
            read_mbps: 17.0,
            write_mbps: 14.0,
            system_price: 97_000.0,
            disk_ctlr_price: 48_000.0,
            paper_time_s: 13.7,
            paper_dollars_per_sort: 0.009,
        },
    ]
}

/// The 3-CPU, 36-disk DEC 7000 the paper's MinuteSort ran on
/// (1.25 GB memory, 512 k$ list).
///
/// Rates here are *effective* for the full sort, not Table 6's peak stripe
/// rates (64 read / 49 write): moving 2 × 1.08 GB in ~60 s implies ~36 MB/s
/// aggregate — the gigabyte run pays for address-space zeroing, file-system
/// overhead and imperfect overlap that the 100 MB sprint hides.
pub fn minutesort_machine() -> MachineConfig {
    MachineConfig {
        name: "DEC 7000 AXP (3 cpu, MinuteSort)".into(),
        cpus: 3,
        clock_ns: 5.0,
        controllers: "9 SCSI".into(),
        drives: "36 RZ26".into(),
        memory_mb: 1_250,
        read_mbps: 40.0,
        write_mbps: 31.0,
        system_price: 512_000.0,
        disk_ctlr_price: 85_000.0,
        paper_time_s: 60.0,
        paper_dollars_per_sort: 0.51,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rows_ordered_by_paper_time() {
        let rows = table8();
        assert_eq!(rows.len(), 5);
        assert!(rows
            .windows(2)
            .all(|w| w[0].paper_time_s < w[1].paper_time_s));
    }

    #[test]
    fn minutesort_machine_is_the_many_slow_array() {
        let m = minutesort_machine();
        assert_eq!(m.disk_ctlr_price, 85_000.0); // Table 6 list price
        assert_eq!(m.system_price, 512_000.0); // §8: "price of this system … is 512k$"
                                               // Effective rates must not exceed Table 6's peak stripe rates.
        assert!(m.read_mbps <= 64.0 && m.write_mbps <= 49.0);
    }

    #[test]
    fn serde_roundtrip() {
        let rows = table8();
        let json = Json::Arr(rows.iter().map(MachineConfig::to_json).collect()).dump();
        let rows2: Vec<MachineConfig> = Json::parse(&json)
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| MachineConfig::from_json(v).unwrap())
            .collect();
        assert_eq!(rows, rows2);
    }
}
