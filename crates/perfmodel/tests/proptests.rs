//! Property tests for the analytic models: monotonicity and invariants
//! that must hold over the whole parameter space, not just the paper's
//! calibration points. Cases are driven by a seeded [`SplitMix64`].

use alphasort_dmgen::SplitMix64;
use alphasort_perfmodel::economics::{pass_economics, scratch_disks_for};
use alphasort_perfmodel::machines::MachineConfig;
use alphasort_perfmodel::metrics::{datamation_dollars_per_sort, dollarsort_budget_s, minutesort};
use alphasort_perfmodel::phase::datamation_model;

fn uniform(r: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

fn any_machine(r: &mut SplitMix64) -> MachineConfig {
    let system_price = uniform(r, 50_000.0, 1_000_000.0);
    MachineConfig {
        name: "arb".into(),
        cpus: 1 + r.next_below(6) as u32,
        clock_ns: uniform(r, 4.0, 10.0),
        controllers: String::new(),
        drives: String::new(),
        memory_mb: 256,
        read_mbps: uniform(r, 5.0, 100.0),
        write_mbps: uniform(r, 4.0, 80.0),
        system_price,
        disk_ctlr_price: system_price * 0.3,
        paper_time_s: 0.0,
        paper_dollars_per_sort: 0.0,
    }
}

/// The phase model is monotone: more data never sorts faster, faster
/// disks never sort slower, and more CPUs never sort slower.
#[test]
fn phase_model_is_monotone() {
    let mut r = SplitMix64::new(0x7E1);
    for case in 0..256 {
        let m = any_machine(&mut r);
        let mb = uniform(&mut r, 10.0, 2_000.0);
        let base = datamation_model(&m, mb).total();
        assert!(base > 0.0, "case {case}");

        let bigger = datamation_model(&m, mb * 2.0).total();
        assert!(
            bigger >= base,
            "case {case}: 2x data sorted faster: {bigger} < {base}"
        );

        let mut faster_disks = m.clone();
        faster_disks.read_mbps *= 2.0;
        faster_disks.write_mbps *= 2.0;
        assert!(
            datamation_model(&faster_disks, mb).total() <= base,
            "case {case}"
        );

        let mut more_cpus = m.clone();
        more_cpus.cpus += 1;
        assert!(
            datamation_model(&more_cpus, mb).total() <= base,
            "case {case}"
        );
    }
}

/// Elapsed time is bounded below by the raw IO time and above by the
/// fully-serialized schedule.
#[test]
fn phase_model_respects_io_bounds() {
    let mut r = SplitMix64::new(0x7E2);
    for case in 0..256 {
        let m = any_machine(&mut r);
        let mb = uniform(&mut r, 10.0, 2_000.0);
        let b = datamation_model(&m, mb);
        let io = mb / m.read_mbps + mb / m.write_mbps;
        let cpu = (b.sort_cpu + b.merge_gather_cpu) / f64::from(m.cpus);
        assert!(b.total() >= io, "case {case}: total below pure IO time");
        // Upper bound: everything serialized plus fixed overheads.
        assert!(
            b.total() <= io + cpu + b.last_run_sort + b.startup + b.shutdown + 1e-9,
            "case {case}"
        );
    }
}

/// $/sort scales linearly in both price and time.
#[test]
fn dollars_per_sort_is_bilinear() {
    let mut r = SplitMix64::new(0x7E3);
    for case in 0..256 {
        let price = uniform(&mut r, 1_000.0, 1e7);
        let secs = uniform(&mut r, 0.1, 1e4);
        let d = datamation_dollars_per_sort(price, secs);
        assert!(d > 0.0, "case {case}");
        assert!(
            (datamation_dollars_per_sort(price * 2.0, secs) - d * 2.0).abs() < d * 1e-9,
            "case {case}"
        );
        assert!(
            (datamation_dollars_per_sort(price, secs * 3.0) - d * 3.0).abs() < d * 1e-9,
            "case {case}"
        );
    }
}

/// MinuteSort price-performance improves with more bytes sorted, at fixed
/// price.
#[test]
fn minutesort_more_is_better() {
    let mut r = SplitMix64::new(0x7E4);
    for case in 0..256 {
        let price = uniform(&mut r, 1_000.0, 1e7);
        let gb = 1 + r.next_below(999);
        let small = minutesort(price, gb * 1_000_000_000);
        let big = minutesort(price, (gb + 1) * 1_000_000_000);
        assert!(big.dollars_per_gb < small.dollars_per_gb, "case {case}");
        assert_eq!(big.minute_cost, small.minute_cost, "case {case}");
    }
}

/// DollarSort budgets are inversely proportional to price.
#[test]
fn dollarsort_budget_inverse_in_price() {
    let mut r = SplitMix64::new(0x7E5);
    for case in 0..256 {
        let price = uniform(&mut r, 1_000.0, 1e7);
        let b = dollarsort_budget_s(price);
        let b2 = dollarsort_budget_s(price * 2.0);
        assert!((b / b2 - 2.0).abs() < 1e-9, "case {case}");
    }
}

/// Scratch-disk counts grow monotonically (and sub-linearly) in sort size;
/// the economics verdict flips exactly once over a doubling scan.
#[test]
fn economics_monotone_single_crossover() {
    let mut r = SplitMix64::new(0x7E6);
    for case in 0..64 {
        let start_mb = 1 + r.next_below(99);
        let mut prev_disks = 0;
        let mut flips = 0;
        let mut prev_one_pass = true;
        for i in 0..12 {
            let bytes = start_mb * 1_000_000 * (1 << i);
            let disks = scratch_disks_for(bytes);
            assert!(disks >= prev_disks, "case {case}: disk count decreased");
            prev_disks = disks;
            let verdict = pass_economics(bytes).one_pass_wins();
            if verdict != prev_one_pass {
                flips += 1;
                assert!(!verdict, "case {case}: flipped back to one-pass at {bytes}");
            }
            prev_one_pass = verdict;
        }
        assert!(flips <= 1, "case {case}");
    }
}
