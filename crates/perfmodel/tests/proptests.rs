//! Property tests for the analytic models: monotonicity and invariants
//! that must hold over the whole parameter space, not just the paper's
//! calibration points.

use alphasort_perfmodel::economics::{pass_economics, scratch_disks_for};
use alphasort_perfmodel::machines::MachineConfig;
use alphasort_perfmodel::metrics::{datamation_dollars_per_sort, dollarsort_budget_s, minutesort};
use alphasort_perfmodel::phase::datamation_model;
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    (
        1u32..=6,
        4.0f64..10.0,
        5.0f64..100.0,
        4.0f64..80.0,
        50_000.0f64..1_000_000.0,
    )
        .prop_map(
            |(cpus, clock_ns, read_mbps, write_mbps, system_price)| MachineConfig {
                name: "arb".into(),
                cpus,
                clock_ns,
                controllers: String::new(),
                drives: String::new(),
                memory_mb: 256,
                read_mbps,
                write_mbps,
                system_price,
                disk_ctlr_price: system_price * 0.3,
                paper_time_s: 0.0,
                paper_dollars_per_sort: 0.0,
            },
        )
}

proptest! {
    /// The phase model is monotone: more data never sorts faster, faster
    /// disks never sort slower, and more CPUs never sort slower.
    #[test]
    fn phase_model_is_monotone(m in arb_machine(), mb in 10.0f64..2_000.0) {
        let base = datamation_model(&m, mb).total();
        prop_assert!(base > 0.0);

        let bigger = datamation_model(&m, mb * 2.0).total();
        prop_assert!(bigger >= base, "2x data sorted faster: {bigger} < {base}");

        let mut faster_disks = m.clone();
        faster_disks.read_mbps *= 2.0;
        faster_disks.write_mbps *= 2.0;
        prop_assert!(datamation_model(&faster_disks, mb).total() <= base);

        let mut more_cpus = m.clone();
        more_cpus.cpus += 1;
        prop_assert!(datamation_model(&more_cpus, mb).total() <= base);
    }

    /// Elapsed time is bounded below by the raw IO time and above by the
    /// fully-serialized schedule.
    #[test]
    fn phase_model_respects_io_bounds(m in arb_machine(), mb in 10.0f64..2_000.0) {
        let b = datamation_model(&m, mb);
        let io = mb / m.read_mbps + mb / m.write_mbps;
        let cpu = (b.sort_cpu + b.merge_gather_cpu) / f64::from(m.cpus);
        prop_assert!(b.total() >= io, "total below pure IO time");
        // Upper bound: everything serialized plus fixed overheads.
        prop_assert!(b.total() <= io + cpu + b.last_run_sort + b.startup + b.shutdown + 1e-9);
    }

    /// $/sort scales linearly in both price and time.
    #[test]
    fn dollars_per_sort_is_bilinear(price in 1_000.0f64..1e7, secs in 0.1f64..1e4) {
        let d = datamation_dollars_per_sort(price, secs);
        prop_assert!(d > 0.0);
        prop_assert!((datamation_dollars_per_sort(price * 2.0, secs) - d * 2.0).abs() < d * 1e-9);
        prop_assert!((datamation_dollars_per_sort(price, secs * 3.0) - d * 3.0).abs() < d * 1e-9);
    }

    /// MinuteSort price-performance improves with more bytes sorted, at
    /// fixed price.
    #[test]
    fn minutesort_more_is_better(price in 1_000.0f64..1e7, gb in 1u64..1_000) {
        let small = minutesort(price, gb * 1_000_000_000);
        let big = minutesort(price, (gb + 1) * 1_000_000_000);
        prop_assert!(big.dollars_per_gb < small.dollars_per_gb);
        prop_assert_eq!(big.minute_cost, small.minute_cost);
    }

    /// DollarSort budgets are inversely proportional to price.
    #[test]
    fn dollarsort_budget_inverse_in_price(price in 1_000.0f64..1e7) {
        let b = dollarsort_budget_s(price);
        let b2 = dollarsort_budget_s(price * 2.0);
        prop_assert!((b / b2 - 2.0).abs() < 1e-9);
    }

    /// Scratch-disk counts grow monotonically (and sub-linearly) in sort
    /// size; the economics verdict flips exactly once over a doubling scan.
    #[test]
    fn economics_monotone_single_crossover(start_mb in 1u64..100) {
        let mut prev_disks = 0;
        let mut flips = 0;
        let mut prev_one_pass = true;
        for i in 0..12 {
            let bytes = start_mb * 1_000_000 * (1 << i);
            let disks = scratch_disks_for(bytes);
            prop_assert!(disks >= prev_disks, "disk count decreased");
            prev_disks = disks;
            let verdict = pass_economics(bytes).one_pass_wins();
            if verdict != prev_one_pass {
                flips += 1;
                prop_assert!(!verdict, "flipped back to one-pass at {bytes}");
            }
            prev_one_pass = verdict;
        }
        prop_assert!(flips <= 1);
    }
}
