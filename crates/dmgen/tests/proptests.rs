//! Property tests for the workload generator and validator, driven by a
//! seeded [`SplitMix64`] so every case is reproducible.

use alphasort_dmgen::{
    generate, records_of, records_of_mut, validate_records, GenConfig, KeyDistribution, Record,
    RunningChecksum, SplitMix64, ValidationError, KEY_LEN, RECORD_LEN,
};

fn any_dist(r: &mut SplitMix64) -> KeyDistribution {
    match r.next_below(7) {
        0 => KeyDistribution::Random,
        1 => KeyDistribution::RandomPrintable,
        2 => KeyDistribution::Sorted,
        3 => KeyDistribution::Reverse,
        4 => KeyDistribution::NearlySorted {
            permille: r.next_below(1001) as u16,
        },
        5 => KeyDistribution::DupHeavy {
            cardinality: 1 + r.next_below(63) as u32,
        },
        _ => KeyDistribution::CommonPrefix {
            shared: r.next_below(11) as u8,
        },
    }
}

/// Sorting the generated input always validates, for every distribution.
#[test]
fn sorted_output_validates() {
    let mut r = SplitMix64::new(0xE1);
    for case in 0..256 {
        let n = 1 + r.next_below(399);
        let seed = r.next_u64();
        let dist = any_dist(&mut r);
        let (input, cs) = generate(GenConfig {
            records: n,
            seed,
            dist,
        });
        let mut output = input.clone();
        records_of_mut(&mut output).sort_by_key(|a| a.key);
        let report = validate_records(&output, cs).unwrap();
        assert_eq!(report.records, n, "case {case}");
    }
}

/// Any reordering of the records preserves the checksum.
#[test]
fn checksum_is_order_independent() {
    let mut r = SplitMix64::new(0xE2);
    for case in 0..256 {
        let n = 1 + r.next_below(199);
        let seed = r.next_u64();
        let (input, cs) = generate(GenConfig::datamation(n, seed));
        let mut rotated = input.clone();
        let recs = records_of_mut(&mut rotated);
        let k = r.next_below(200) as usize % recs.len();
        recs.rotate_left(k);
        let mut rc = RunningChecksum::new();
        rc.update_bytes(&rotated);
        assert_eq!(rc.finish(), cs, "case {case}");
    }
}

/// Corrupting any single byte of a sorted output makes validation fail.
#[test]
fn any_byte_corruption_is_caught() {
    let mut r = SplitMix64::new(0xE3);
    for case in 0..256 {
        let n = 2 + r.next_below(98);
        let seed = r.next_u64();
        let (input, cs) = generate(GenConfig::datamation(n, seed));
        let mut output = input.clone();
        records_of_mut(&mut output).sort_by_key(|a| a.key);
        let idx = r.next_below(output.len() as u64) as usize;
        let flip = 1 + r.next_below(255) as u8;
        output[idx] ^= flip;
        assert!(validate_records(&output, cs).is_err(), "case {case}");
    }
}

/// Prefix comparisons agree with key comparisons whenever prefixes differ.
#[test]
fn prefix_comparison_sound() {
    let mut r = SplitMix64::new(0xE4);
    for case in 0..4_096 {
        let mut a = [0u8; KEY_LEN];
        let mut b = [0u8; KEY_LEN];
        r.fill_bytes(&mut a);
        r.fill_bytes(&mut b);
        // Half the cases get matching 8-byte prefixes to exercise both arms.
        if case % 2 == 0 {
            let (head, _) = a.split_at(8);
            b[..8].copy_from_slice(head);
        }
        let ra = Record::with_key(a, 0);
        let rb = Record::with_key(b, 1);
        if ra.prefix() != rb.prefix() {
            assert_eq!(ra.prefix() < rb.prefix(), ra.key < rb.key, "case {case}");
        } else {
            assert_eq!(&a[..8], &b[..8], "case {case}");
        }
    }
}

/// fill_bytes is deterministic and length-faithful.
#[test]
fn rng_fill_deterministic() {
    let mut r = SplitMix64::new(0xE5);
    for case in 0..128 {
        let seed = r.next_u64();
        let len = r.next_below(64) as usize;
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let mut xs = vec![0u8; len];
        let mut ys = vec![0u8; len];
        a.fill_bytes(&mut xs);
        b.fill_bytes(&mut ys);
        assert_eq!(xs, ys, "case {case}");
    }
}

/// Swapping two adjacent out-of-order records is flagged as OutOfOrder,
/// not as a checksum problem (the permutation is intact).
#[test]
fn adjacent_swap_reported_as_order_error() {
    let mut r = SplitMix64::new(0xE6);
    for case in 0..256 {
        let n = 3 + r.next_below(97);
        let seed = r.next_u64();
        let (input, cs) = generate(GenConfig::datamation(n, seed));
        let mut output = input.clone();
        records_of_mut(&mut output).sort_by_key(|a| a.key);
        let recs = records_of_mut(&mut output);
        let i = r.next_below(recs.len() as u64 - 1) as usize;
        if recs[i].key == recs[i + 1].key {
            continue; // swap of equal keys stays sorted
        }
        recs.swap(i, i + 1);
        match validate_records(&output, cs) {
            Err(ValidationError::OutOfOrder { .. }) => {}
            other => panic!("case {case}: expected OutOfOrder, got {other:?}"),
        }
    }
}

/// Non-proptest sanity: a big generated buffer views cleanly as records.
#[test]
fn large_buffer_roundtrip() {
    let (input, cs) = generate(GenConfig::datamation(20_000, 99));
    assert_eq!(input.len(), 20_000 * RECORD_LEN);
    let mut rc = RunningChecksum::new();
    for r in records_of(&input) {
        rc.update(r);
    }
    assert_eq!(rc.finish(), cs);
}
