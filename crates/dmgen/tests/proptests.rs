//! Property tests for the workload generator and validator.

use alphasort_dmgen::{
    generate, records_of, records_of_mut, validate_records, GenConfig, KeyDistribution, Record,
    RunningChecksum, SplitMix64, ValidationError, KEY_LEN, RECORD_LEN,
};
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        Just(KeyDistribution::Random),
        Just(KeyDistribution::RandomPrintable),
        Just(KeyDistribution::Sorted),
        Just(KeyDistribution::Reverse),
        (0u16..=1000).prop_map(|permille| KeyDistribution::NearlySorted { permille }),
        (1u32..64).prop_map(|cardinality| KeyDistribution::DupHeavy { cardinality }),
        (0u8..=10).prop_map(|shared| KeyDistribution::CommonPrefix { shared }),
    ]
}

proptest! {
    /// Sorting the generated input always validates, for every distribution.
    #[test]
    fn sorted_output_validates(
        n in 1u64..400,
        seed in any::<u64>(),
        dist in arb_dist(),
    ) {
        let (input, cs) = generate(GenConfig { records: n, seed, dist });
        let mut output = input.clone();
        records_of_mut(&mut output).sort_by_key(|a| a.key);
        let report = validate_records(&output, cs).unwrap();
        prop_assert_eq!(report.records, n);
    }

    /// Any reordering of the records preserves the checksum.
    #[test]
    fn checksum_is_order_independent(
        n in 1u64..200,
        seed in any::<u64>(),
        rot in 0usize..200,
    ) {
        let (input, cs) = generate(GenConfig::datamation(n, seed));
        let mut rotated = input.clone();
        let recs = records_of_mut(&mut rotated);
        let k = rot % recs.len();
        recs.rotate_left(k);
        let mut rc = RunningChecksum::new();
        rc.update_bytes(&rotated);
        prop_assert_eq!(rc.finish(), cs);
    }

    /// Corrupting any single byte of a sorted output makes validation fail.
    #[test]
    fn any_byte_corruption_is_caught(
        n in 2u64..100,
        seed in any::<u64>(),
        victim in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let (input, cs) = generate(GenConfig::datamation(n, seed));
        let mut output = input.clone();
        records_of_mut(&mut output).sort_by_key(|a| a.key);
        let idx = victim.index(output.len());
        output[idx] ^= flip;
        prop_assert!(validate_records(&output, cs).is_err());
    }

    /// Prefix comparisons agree with key comparisons whenever prefixes differ.
    #[test]
    fn prefix_comparison_sound(a in any::<[u8; KEY_LEN]>(), b in any::<[u8; KEY_LEN]>()) {
        let ra = Record::with_key(a, 0);
        let rb = Record::with_key(b, 1);
        if ra.prefix() != rb.prefix() {
            prop_assert_eq!(ra.prefix() < rb.prefix(), ra.key < rb.key);
        } else {
            prop_assert_eq!(&a[..8], &b[..8]);
        }
    }

    /// fill_bytes is deterministic and length-faithful.
    #[test]
    fn rng_fill_deterministic(seed in any::<u64>(), len in 0usize..64) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let mut xs = vec![0u8; len];
        let mut ys = vec![0u8; len];
        a.fill_bytes(&mut xs);
        b.fill_bytes(&mut ys);
        prop_assert_eq!(xs, ys);
    }

    /// Swapping two adjacent out-of-order records is flagged as OutOfOrder,
    /// not as a checksum problem (the permutation is intact).
    #[test]
    fn adjacent_swap_reported_as_order_error(
        n in 3u64..100,
        seed in any::<u64>(),
        at in any::<proptest::sample::Index>(),
    ) {
        let (input, cs) = generate(GenConfig::datamation(n, seed));
        let mut output = input.clone();
        records_of_mut(&mut output).sort_by_key(|a| a.key);
        let recs = records_of_mut(&mut output);
        let i = at.index(recs.len() - 1);
        if recs[i].key == recs[i + 1].key {
            return Ok(()); // swap of equal keys stays sorted
        }
        recs.swap(i, i + 1);
        match validate_records(&output, cs) {
            Err(ValidationError::OutOfOrder { .. }) => {}
            other => prop_assert!(false, "expected OutOfOrder, got {other:?}"),
        }
    }
}

/// Non-proptest sanity: a big generated buffer views cleanly as records.
#[test]
fn large_buffer_roundtrip() {
    let (input, cs) = generate(GenConfig::datamation(20_000, 99));
    assert_eq!(input.len(), 20_000 * RECORD_LEN);
    let mut rc = RunningChecksum::new();
    for r in records_of(&input) {
        rc.update(r);
    }
    assert_eq!(rc.finish(), cs);
}
