//! Datamation sort benchmark workload generator and output validator.
//!
//! The Datamation benchmark (Anon et al., 1985), as used by the AlphaSort
//! paper, sorts one million 100-byte records. Each record carries a 10-byte
//! key in random order; keys are incompressible; the output file must be a
//! sorted permutation of the input file.
//!
//! This crate provides:
//!
//! * [`Record`] — the 100-byte record layout (10-byte key + 90-byte payload),
//! * [`Generator`] — deterministic, seedable record generation under several
//!   key distributions ([`KeyDistribution`]),
//! * [`validate`] — streaming verification that an output is a sorted
//!   permutation of the corresponding input, using an order-independent
//!   checksum so no O(N) memory is needed,
//! * zero-copy helpers for treating raw byte buffers as record arrays, which
//!   is how the sort itself works with them.
//!
//! ```
//! use alphasort_dmgen::{generate, records_of_mut, validate_records, GenConfig};
//!
//! // Generate 1,000 benchmark records and remember the input fingerprint.
//! let (mut data, checksum) = generate(GenConfig::datamation(1_000, 42));
//!
//! // Sort them (any sort will do — here the standard library's).
//! records_of_mut(&mut data).sort_by(|a, b| a.key.cmp(&b.key));
//!
//! // The output must be a key-ascending permutation of the input.
//! let report = validate_records(&data, checksum).expect("valid");
//! assert_eq!(report.records, 1_000);
//! ```

pub mod checksum;
pub mod dist;
pub mod gen;
pub mod record;
pub mod rng;
pub mod validate;
pub mod varlen;

pub use checksum::{Checksum, RunningChecksum};
pub use dist::KeyDistribution;
pub use gen::generate;
pub use gen::{GenConfig, Generator};
pub use record::{
    bytes_of, records_of, records_of_mut, Record, KEY_LEN, PAYLOAD_LEN, PREFIX_LEN, RECORD_LEN,
};
pub use rng::SplitMix64;
pub use validate::{
    validate_reader, validate_records, ValidationError, ValidationReport, Validator,
};
pub use varlen::{
    build_var_record, encode_var_record, generate_varlen, parse_var_record, var_records_of,
    TextCorpus, VarFrameError, VarGenConfig, VarRecord, MAX_VAR_BODY, VAR_HEADER_LEN,
};
