//! Output validation: is this a sorted permutation of the input?
//!
//! The benchmark's correctness condition (§2 of the paper) is that the output
//! file is a permutation of the input file sorted in key-ascending order.
//! Validation streams the output once, checking key order and accumulating
//! the same order-independent [`Checksum`] the generator
//! produced for the input; matching fingerprints certify the permutation.

use std::io::{self, Read};

use crate::checksum::{Checksum, RunningChecksum};
use crate::record::{Record, KEY_LEN, RECORD_LEN};

/// Why an output failed validation.
#[derive(Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Two adjacent records were out of key order.
    OutOfOrder {
        /// Index (in the output) of the second record of the offending pair.
        index: u64,
        /// Key of the earlier record.
        prev_key: [u8; KEY_LEN],
        /// Key of the later (smaller) record.
        key: [u8; KEY_LEN],
    },
    /// The output's record multiset differs from the input's.
    ChecksumMismatch {
        /// Fingerprint the input was generated with.
        expected: Checksum,
        /// Fingerprint computed over the output.
        actual: Checksum,
    },
    /// Output length is not a whole number of records.
    RaggedLength {
        /// Total bytes observed.
        bytes: u64,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::OutOfOrder { index, .. } => {
                write!(
                    f,
                    "records {} and {} are out of key order",
                    index - 1,
                    index
                )
            }
            ValidationError::ChecksumMismatch { expected, actual } => write!(
                f,
                "output is not a permutation of the input \
                 (expected {expected:?}, got {actual:?})"
            ),
            ValidationError::RaggedLength { bytes } => {
                write!(f, "output length {bytes} is not a multiple of {RECORD_LEN}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Summary of a successful validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationReport {
    /// Records examined.
    pub records: u64,
    /// Number of adjacent pairs with exactly equal keys (interesting for
    /// duplicate-heavy workloads).
    pub equal_key_pairs: u64,
}

/// Streaming validator; feed records in output order.
#[derive(Debug, Default)]
pub struct Validator {
    checksum: RunningChecksum,
    prev_key: Option<[u8; KEY_LEN]>,
    records: u64,
    equal_key_pairs: u64,
}

impl Validator {
    /// Fresh validator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the next record of the output.
    pub fn push(&mut self, record: &Record) -> Result<(), ValidationError> {
        if let Some(prev) = self.prev_key {
            match prev.cmp(&record.key) {
                std::cmp::Ordering::Greater => {
                    return Err(ValidationError::OutOfOrder {
                        index: self.records,
                        prev_key: prev,
                        key: record.key,
                    });
                }
                std::cmp::Ordering::Equal => self.equal_key_pairs += 1,
                std::cmp::Ordering::Less => {}
            }
        }
        self.prev_key = Some(record.key);
        self.checksum.update(record);
        self.records += 1;
        Ok(())
    }

    /// Feed a buffer of whole records.
    ///
    /// # Panics
    /// If `bytes.len()` is not a multiple of the record length.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<(), ValidationError> {
        assert!(bytes.len().is_multiple_of(RECORD_LEN));
        for chunk in bytes.chunks_exact(RECORD_LEN) {
            let r = Record::from_bytes(chunk);
            self.push(&r)?;
        }
        Ok(())
    }

    /// Finish, comparing against the input fingerprint.
    pub fn finish(self, expected: Checksum) -> Result<ValidationReport, ValidationError> {
        let actual = self.checksum.finish();
        if actual != expected {
            return Err(ValidationError::ChecksumMismatch { expected, actual });
        }
        Ok(ValidationReport {
            records: self.records,
            equal_key_pairs: self.equal_key_pairs,
        })
    }
}

/// Validate an in-memory output buffer against the input fingerprint.
pub fn validate_records(
    output: &[u8],
    expected: Checksum,
) -> Result<ValidationReport, ValidationError> {
    if !output.len().is_multiple_of(RECORD_LEN) {
        return Err(ValidationError::RaggedLength {
            bytes: output.len() as u64,
        });
    }
    let mut v = Validator::new();
    v.push_bytes(output)?;
    v.finish(expected)
}

/// Validate a streamed output (e.g. a file) against the input fingerprint.
///
/// IO errors are distinct from validation failures, hence the nested result.
pub fn validate_reader<R: Read>(
    reader: &mut R,
    expected: Checksum,
) -> io::Result<Result<ValidationReport, ValidationError>> {
    let mut v = Validator::new();
    // 8192 records per read keeps syscalls rare without a big footprint.
    let mut buf = vec![0u8; 8192 * RECORD_LEN];
    let mut pending = 0usize;
    let mut total: u64 = 0;
    loop {
        let n = reader.read(&mut buf[pending..])?;
        if n == 0 {
            break;
        }
        total += n as u64;
        pending += n;
        let whole = pending - pending % RECORD_LEN;
        if whole > 0 {
            if let Err(e) = v.push_bytes(&buf[..whole]) {
                return Ok(Err(e));
            }
            buf.copy_within(whole..pending, 0);
            pending -= whole;
        }
    }
    if pending != 0 {
        return Ok(Err(ValidationError::RaggedLength { bytes: total }));
    }
    Ok(v.finish(expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::record::records_of_mut;

    fn sorted_copy(input: &[u8]) -> Vec<u8> {
        let mut out = input.to_vec();
        records_of_mut(&mut out).sort_by_key(|a| a.key);
        out
    }

    #[test]
    fn accepts_correctly_sorted_output() {
        let (input, cs) = generate(GenConfig::datamation(2000, 11));
        let output = sorted_copy(&input);
        let report = validate_records(&output, cs).unwrap();
        assert_eq!(report.records, 2000);
    }

    #[test]
    fn rejects_unsorted_output() {
        let (input, cs) = generate(GenConfig::datamation(2000, 12));
        let err = validate_records(&input, cs).unwrap_err();
        assert!(matches!(err, ValidationError::OutOfOrder { .. }));
    }

    #[test]
    fn rejects_dropped_record() {
        let (input, cs) = generate(GenConfig::datamation(100, 13));
        let mut output = sorted_copy(&input);
        output.truncate(99 * RECORD_LEN);
        let err = validate_records(&output, cs).unwrap_err();
        assert!(matches!(err, ValidationError::ChecksumMismatch { .. }));
    }

    #[test]
    fn rejects_corrupted_payload_byte() {
        let (input, cs) = generate(GenConfig::datamation(100, 14));
        let mut output = sorted_copy(&input);
        let last = output.len() - 1;
        output[last] ^= 0x01;
        let err = validate_records(&output, cs).unwrap_err();
        assert!(matches!(err, ValidationError::ChecksumMismatch { .. }));
    }

    #[test]
    fn rejects_duplicated_record_replacing_another() {
        let (input, cs) = generate(GenConfig::datamation(100, 15));
        let mut output = sorted_copy(&input);
        // Overwrite record 1 with a copy of record 0: still sorted, same
        // length, but not a permutation.
        let (a, b) = output.split_at_mut(RECORD_LEN);
        b[..RECORD_LEN].copy_from_slice(a);
        let err = validate_records(&output, cs).unwrap_err();
        assert!(matches!(err, ValidationError::ChecksumMismatch { .. }));
    }

    #[test]
    fn rejects_ragged_length() {
        let (input, cs) = generate(GenConfig::datamation(10, 16));
        let mut output = sorted_copy(&input);
        output.pop();
        let err = validate_records(&output, cs).unwrap_err();
        assert!(matches!(err, ValidationError::RaggedLength { .. }));
    }

    #[test]
    fn reader_validation_matches_in_memory() {
        let (input, cs) = generate(GenConfig::datamation(3000, 17));
        let output = sorted_copy(&input);
        let mut cursor = std::io::Cursor::new(&output);
        let report = validate_reader(&mut cursor, cs).unwrap().unwrap();
        assert_eq!(report.records, 3000);
    }

    #[test]
    fn counts_equal_key_pairs_on_dup_heavy_input() {
        let cfg = GenConfig {
            records: 1000,
            seed: 18,
            dist: crate::dist::KeyDistribution::DupHeavy { cardinality: 4 },
        };
        let (input, cs) = generate(cfg);
        let output = sorted_copy(&input);
        let report = validate_records(&output, cs).unwrap();
        // 1000 records over 4 keys: nearly every adjacent pair ties.
        assert!(report.equal_key_pairs > 900);
    }
}
