//! Variable-length records with string keys.
//!
//! The Datamation layout ([`crate::record`]) fixes every record at 100
//! bytes with a 10-byte key; this module supplies the general layout the
//! LCP/OVC-aware pipeline sorts: a length-prefixed frame whose key is
//! described by an (offset, length) descriptor into the body.
//!
//! # Frame format
//!
//! ```text
//! +----------------+----------------+----------------+------------------+
//! | body_len u32LE | key_off u16LE  | key_len u16LE  | body (body_len B)|
//! +----------------+----------------+----------------+------------------+
//! ```
//!
//! The key is `body[key_off .. key_off + key_len]` — arbitrary bytes,
//! including none at all (`key_len == 0`). Generated corpora place an
//! 8-byte little-endian sequence number immediately after the key, so
//! permutation and stability checks work exactly like the fixed layout's
//! payload-embedded `seq()`.
//!
//! Parsing is total: every malformed prefix is rejected with a
//! [`VarFrameError`] that attributes the absolute byte offset, never a
//! panic and never a silent drop.

use std::fmt;

use crate::rng::SplitMix64;

/// Bytes in the fixed frame header (`body_len` + `key_off` + `key_len`).
pub const VAR_HEADER_LEN: usize = 8;

/// Ceiling on a single frame's body. Anything larger is treated as
/// corruption: the generators top out orders of magnitude below this, and
/// the cap keeps a flipped length byte from demanding a 4 GB read.
pub const MAX_VAR_BODY: usize = 1 << 24;

/// A parsed view of one variable-length record (header + body).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarRecord<'a> {
    frame: &'a [u8],
    key_off: usize,
    key_len: usize,
}

impl<'a> VarRecord<'a> {
    /// The whole frame: header and body, exactly as stored.
    #[inline]
    pub fn frame(&self) -> &'a [u8] {
        self.frame
    }

    /// Frame length in bytes (header included) — the cursor advance.
    #[inline]
    pub fn len(&self) -> usize {
        self.frame.len()
    }

    /// Frames are never empty (the header alone is 8 bytes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The record body (frame minus header).
    #[inline]
    pub fn body(&self) -> &'a [u8] {
        &self.frame[VAR_HEADER_LEN..]
    }

    /// The sort key: `body[key_off .. key_off + key_len]`.
    #[inline]
    pub fn key(&self) -> &'a [u8] {
        &self.body()[self.key_off..self.key_off + self.key_len]
    }

    /// The 8-byte little-endian sequence number the generators stamp right
    /// after the key, when the body is long enough to hold one.
    #[inline]
    pub fn seq(&self) -> Option<u64> {
        let start = self.key_off + self.key_len;
        let body = self.body();
        body.get(start..start + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }
}

/// Why a byte prefix failed to parse as a frame, attributed to the
/// absolute input offset where the frame begins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VarFrameError {
    /// Fewer than [`VAR_HEADER_LEN`] bytes remain.
    TruncatedHeader {
        /// Absolute offset of the frame start.
        offset: u64,
        /// Bytes actually available.
        have: usize,
    },
    /// The header promises more body than the buffer holds.
    TruncatedBody {
        /// Absolute offset of the frame start.
        offset: u64,
        /// Body bytes the header promised.
        need: usize,
        /// Body bytes actually available.
        have: usize,
    },
    /// `body_len` exceeds [`MAX_VAR_BODY`].
    OversizedBody {
        /// Absolute offset of the frame start.
        offset: u64,
        /// The absurd length.
        len: usize,
    },
    /// The key descriptor reaches past the body.
    KeyOutOfBounds {
        /// Absolute offset of the frame start.
        offset: u64,
        /// Declared key offset.
        key_off: usize,
        /// Declared key length.
        key_len: usize,
        /// Declared body length.
        body_len: usize,
    },
}

impl fmt::Display for VarFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarFrameError::TruncatedHeader { offset, have } => write!(
                f,
                "truncated frame header at byte {offset}: have {have} of \
                 {VAR_HEADER_LEN} header bytes"
            ),
            VarFrameError::TruncatedBody { offset, need, have } => write!(
                f,
                "truncated frame body at byte {offset}: header promises \
                 {need} body bytes, {have} remain"
            ),
            VarFrameError::OversizedBody { offset, len } => write!(
                f,
                "frame at byte {offset} declares a {len}-byte body, above \
                 the {MAX_VAR_BODY}-byte limit"
            ),
            VarFrameError::KeyOutOfBounds {
                offset,
                key_off,
                key_len,
                body_len,
            } => write!(
                f,
                "frame at byte {offset}: key descriptor \
                 [{key_off}, {key_off}+{key_len}) exceeds the {body_len}-byte body"
            ),
        }
    }
}

impl std::error::Error for VarFrameError {}

/// Parse the frame starting at `buf[0]`. `offset` is the absolute input
/// position of `buf[0]`, used only for error attribution. Advance the
/// cursor by [`VarRecord::len`] on success.
pub fn parse_var_record(buf: &[u8], offset: u64) -> Result<VarRecord<'_>, VarFrameError> {
    if buf.len() < VAR_HEADER_LEN {
        return Err(VarFrameError::TruncatedHeader {
            offset,
            have: buf.len(),
        });
    }
    let body_len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let key_off = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes")) as usize;
    let key_len = u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes")) as usize;
    if body_len > MAX_VAR_BODY {
        return Err(VarFrameError::OversizedBody {
            offset,
            len: body_len,
        });
    }
    if key_off + key_len > body_len {
        return Err(VarFrameError::KeyOutOfBounds {
            offset,
            key_off,
            key_len,
            body_len,
        });
    }
    let have = buf.len() - VAR_HEADER_LEN;
    if have < body_len {
        return Err(VarFrameError::TruncatedBody {
            offset,
            need: body_len,
            have,
        });
    }
    Ok(VarRecord {
        frame: &buf[..VAR_HEADER_LEN + body_len],
        key_off,
        key_len,
    })
}

/// Parse a whole buffer into records, rejecting any trailing partial frame.
pub fn var_records_of(buf: &[u8]) -> Result<Vec<VarRecord<'_>>, VarFrameError> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < buf.len() {
        let r = parse_var_record(&buf[off..], off as u64)?;
        off += r.len();
        out.push(r);
    }
    Ok(out)
}

/// Append one encoded frame: `body = pad ++ key ++ rest`, with the key
/// descriptor pointing past the pad. Generators use a non-empty `pad` to
/// exercise non-zero key offsets.
///
/// # Panics
/// If the pad/key lengths overflow their `u16` descriptor fields or the
/// body exceeds [`MAX_VAR_BODY`].
pub fn encode_var_record(out: &mut Vec<u8>, pad: &[u8], key: &[u8], rest: &[u8]) {
    let body_len = pad.len() + key.len() + rest.len();
    assert!(body_len <= MAX_VAR_BODY, "body of {body_len} bytes too large");
    let key_off = u16::try_from(pad.len()).expect("key offset fits u16");
    let key_len = u16::try_from(key.len()).expect("key length fits u16");
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&key_off.to_le_bytes());
    out.extend_from_slice(&key_len.to_le_bytes());
    out.extend_from_slice(pad);
    out.extend_from_slice(key);
    out.extend_from_slice(rest);
}

/// One frame with a zero key offset — the common case.
pub fn build_var_record(key: &[u8], rest: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(VAR_HEADER_LEN + key.len() + rest.len());
    encode_var_record(&mut out, &[], key, rest);
    out
}

/// Named text/adversarial corpora for the variable-length layout — the
/// string-key counterpart of [`crate::dist::KeyDistribution`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TextCorpus {
    /// Synthetic URLs: shared schemes and domains, diverging paths —
    /// medium shared prefixes, realistic length spread.
    Urls,
    /// Timestamped log lines, roughly time-ordered with jitter — nearly
    /// sorted keys of varying length.
    LogLines,
    /// 1..=`max_words` words drawn from a zipfian vocabulary — heavy
    /// duplication and shared word prefixes; `max_words` controls the
    /// key-length distribution.
    ZipfianWords {
        /// Longest key in words.
        max_words: u32,
    },
    /// Uniform random key bytes (full 0..=255 alphabet) with lengths in
    /// `[min_key, max_key]`; a random pad exercises non-zero key offsets.
    RandomBytes {
        /// Shortest key in bytes.
        min_key: u16,
        /// Longest key in bytes.
        max_key: u16,
    },
    /// Every key empty — all records compare equal; pure stability stress.
    EmptyKey,
    /// Every key the same `key_len` bytes — equal keys *with* bytes, so
    /// comparisons must scan before tying.
    AllEqualKey {
        /// Length of the identical key.
        key_len: u16,
    },
    /// Keys share `prefix` identical leading bytes before a short random
    /// suffix — the adversarial case LCP/OVC merging exists for.
    SharedMegaPrefix {
        /// Shared leading bytes.
        prefix: u16,
        /// Random suffix bytes.
        suffix: u16,
    },
    /// Every key is a prefix of one base string, truncated at a random
    /// length — maximizes keys that are strict prefixes of other keys.
    PrefixChain {
        /// Length of the base string.
        max_len: u16,
    },
}

impl TextCorpus {
    /// Every corpus at its default parameters, registry order.
    pub const ALL: [TextCorpus; 8] = [
        TextCorpus::Urls,
        TextCorpus::LogLines,
        TextCorpus::ZipfianWords { max_words: 5 },
        TextCorpus::RandomBytes {
            min_key: 0,
            max_key: 40,
        },
        TextCorpus::EmptyKey,
        TextCorpus::AllEqualKey { key_len: 16 },
        TextCorpus::SharedMegaPrefix {
            prefix: 48,
            suffix: 8,
        },
        TextCorpus::PrefixChain { max_len: 32 },
    ];

    /// Registry name (CLI flag value, oracle matrix key).
    pub fn name(self) -> &'static str {
        match self {
            TextCorpus::Urls => "urls",
            TextCorpus::LogLines => "log-lines",
            TextCorpus::ZipfianWords { .. } => "zipf-words",
            TextCorpus::RandomBytes { .. } => "random-bytes",
            TextCorpus::EmptyKey => "empty-key",
            TextCorpus::AllEqualKey { .. } => "all-equal-key",
            TextCorpus::SharedMegaPrefix { .. } => "shared-megaprefix",
            TextCorpus::PrefixChain { .. } => "prefix-chain",
        }
    }

    /// Look a corpus up by registry name (default parameters).
    pub fn from_name(name: &str) -> Option<TextCorpus> {
        TextCorpus::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Configuration for variable-length generation.
#[derive(Clone, Copy, Debug)]
pub struct VarGenConfig {
    /// Number of records to generate.
    pub records: u64,
    /// RNG seed; equal configs generate byte-identical data.
    pub seed: u64,
    /// Key corpus.
    pub corpus: TextCorpus,
}

const URL_DOMAINS: [&str; 5] = [
    "api.acme.io",
    "cdn.sortbench.net",
    "data.papers.dev",
    "example.com",
    "www.alpha.org",
];

const WORDS: [&str; 24] = [
    "the", "of", "and", "sort", "merge", "run", "key", "record", "alpha", "cache", "disk",
    "memory", "prefix", "value", "offset", "stream", "batch", "stripe", "node", "pass", "tree",
    "byte", "string", "pointer",
];

const LOG_LEVELS: [&str; 4] = ["DEBUG", "INFO", "WARN", "ERROR"];

fn zipf_pick<'a>(rng: &mut SplitMix64, vocab: &[&'a str]) -> &'a str {
    // Rank weight 1/(r+1), sampled via the cumulative harmonic sum scaled
    // to integer thousandths — deterministic, no floats in the stream.
    let mut total = 0u64;
    let mut cum = [0u64; WORDS.len()];
    for (r, slot) in cum.iter_mut().enumerate().take(vocab.len()) {
        total += 1000 / (r as u64 + 1);
        *slot = total;
    }
    let x = rng.next_below(total);
    let idx = cum[..vocab.len()].partition_point(|&c| c <= x);
    vocab[idx]
}

/// Key bytes (plus optional descriptor pad) for record `seq` of `n`.
fn make_key(corpus: TextCorpus, seq: u64, rng: &mut SplitMix64, base: &[u8]) -> (Vec<u8>, Vec<u8>) {
    match corpus {
        TextCorpus::Urls => {
            let domain = URL_DOMAINS[rng.next_below(URL_DOMAINS.len() as u64) as usize];
            let mut url = format!("https://{domain}");
            for _ in 0..rng.next_below(4) {
                url.push('/');
                url.push_str(WORDS[rng.next_below(WORDS.len() as u64) as usize]);
            }
            if rng.next_below(3) == 0 {
                url.push_str(&format!("?id={}", rng.next_below(10_000)));
            }
            (Vec::new(), url.into_bytes())
        }
        TextCorpus::LogLines => {
            // Millisecond timestamps grow with seq but arrive jittered; the
            // zero-padded decimal form keeps lexicographic ≈ time order.
            let ts = seq * 1_000 + rng.next_below(5_000);
            let level = LOG_LEVELS[rng.next_below(LOG_LEVELS.len() as u64) as usize];
            let svc = WORDS[rng.next_below(WORDS.len() as u64) as usize];
            let line = format!("{ts:013} {level} svc={svc} op={}", rng.next_below(64));
            (Vec::new(), line.into_bytes())
        }
        TextCorpus::ZipfianWords { max_words } => {
            let count = 1 + rng.next_below(max_words.max(1) as u64);
            let mut key = String::new();
            for i in 0..count {
                if i > 0 {
                    key.push(' ');
                }
                key.push_str(zipf_pick(rng, &WORDS));
            }
            (Vec::new(), key.into_bytes())
        }
        TextCorpus::RandomBytes { min_key, max_key } => {
            let span = (max_key.max(min_key) - min_key) as u64 + 1;
            let len = min_key as u64 + rng.next_below(span);
            let mut key = vec![0u8; len as usize];
            rng.fill_bytes(&mut key);
            let mut pad = vec![0u8; rng.next_below(4) as usize];
            rng.fill_bytes(&mut pad);
            (pad, key)
        }
        TextCorpus::EmptyKey => (Vec::new(), Vec::new()),
        TextCorpus::AllEqualKey { key_len } => (Vec::new(), vec![0x55u8; key_len as usize]),
        TextCorpus::SharedMegaPrefix { prefix, suffix } => {
            let mut key = vec![0x50u8; prefix as usize];
            let start = key.len();
            key.resize(start + suffix as usize, 0);
            rng.fill_bytes(&mut key[start..]);
            (Vec::new(), key)
        }
        TextCorpus::PrefixChain { max_len } => {
            let len = rng.next_below(max_len as u64 + 1) as usize;
            (Vec::new(), base[..len.min(base.len())].to_vec())
        }
    }
}

/// Generate `cfg.records` variable-length records into one buffer. Every
/// body is `pad ++ key ++ seq(8 LE) ++ filler`, so [`VarRecord::seq`]
/// recovers the input position for permutation and stability checks.
pub fn generate_varlen(cfg: VarGenConfig) -> Vec<u8> {
    let mut root = SplitMix64::new(cfg.seed);
    let mut base_rng = root.split();
    let mut key_rng = root.split();
    let mut fill_rng = root.split();

    // PrefixChain truncates one dataset-wide base string.
    let base_len = match cfg.corpus {
        TextCorpus::PrefixChain { max_len } => max_len as usize,
        _ => 0,
    };
    let mut base = vec![0u8; base_len];
    for (i, b) in base.iter_mut().enumerate() {
        *b = b'a' + (base_rng.next_below(26) as u8 + i as u8 % 3) % 26;
    }

    let mut out = Vec::new();
    for seq in 0..cfg.records {
        let (pad, key) = make_key(cfg.corpus, seq, &mut key_rng, &base);
        let mut rest = vec![0u8; 8 + fill_rng.next_below(17) as usize];
        rest[..8].copy_from_slice(&seq.to_le_bytes());
        fill_rng.fill_bytes(&mut rest[8..]);
        encode_var_record(&mut out, &pad, &key, &rest);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_encode_parse() {
        let mut buf = Vec::new();
        encode_var_record(&mut buf, b"xx", b"hello", b"payload");
        encode_var_record(&mut buf, &[], &[], b"no key at all");
        encode_var_record(&mut buf, &[], b"k", &[]);
        let recs = var_records_of(&buf).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].key(), b"hello");
        assert_eq!(recs[0].body(), b"xxhellopayload");
        assert_eq!(recs[1].key(), b"");
        assert_eq!(recs[2].key(), b"k");
        assert_eq!(recs[2].body(), b"k");
        let total: usize = recs.iter().map(|r| r.len()).sum();
        assert_eq!(total, buf.len());
    }

    #[test]
    fn truncated_header_is_attributed() {
        let mut buf = build_var_record(b"key", b"rest0000");
        let whole = buf.len() as u64;
        buf.extend_from_slice(&[1, 2, 3]);
        let err = var_records_of(&buf).unwrap_err();
        assert_eq!(
            err,
            VarFrameError::TruncatedHeader {
                offset: whole,
                have: 3
            }
        );
        assert!(err.to_string().contains(&format!("byte {whole}")));
    }

    #[test]
    fn truncated_body_is_attributed() {
        let mut buf = build_var_record(b"key", b"restrest");
        buf.truncate(buf.len() - 2);
        let err = var_records_of(&buf).unwrap_err();
        assert!(matches!(err, VarFrameError::TruncatedBody { offset: 0, .. }));
    }

    #[test]
    fn bad_key_descriptor_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&3u16.to_le_bytes()); // 2 + 3 > 4
        buf.extend_from_slice(&[0; 4]);
        let err = parse_var_record(&buf, 7).unwrap_err();
        assert_eq!(
            err,
            VarFrameError::KeyOutOfBounds {
                offset: 7,
                key_off: 2,
                key_len: 3,
                body_len: 4
            }
        );
    }

    #[test]
    fn oversized_body_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_VAR_BODY as u32 + 1).to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        assert!(matches!(
            parse_var_record(&buf, 0),
            Err(VarFrameError::OversizedBody { .. })
        ));
    }

    #[test]
    fn corpus_names_round_trip() {
        for c in TextCorpus::ALL {
            assert_eq!(TextCorpus::from_name(c.name()), Some(c));
        }
        assert_eq!(TextCorpus::from_name("nope"), None);
    }

    #[test]
    fn generation_is_deterministic_and_seq_stamped() {
        for corpus in TextCorpus::ALL {
            let cfg = VarGenConfig {
                records: 200,
                seed: 0xC0FFEE,
                corpus,
            };
            let a = generate_varlen(cfg);
            let b = generate_varlen(cfg);
            assert_eq!(a, b, "{}", corpus.name());
            let recs = var_records_of(&a).unwrap();
            assert_eq!(recs.len(), 200, "{}", corpus.name());
            for (i, r) in recs.iter().enumerate() {
                assert_eq!(r.seq(), Some(i as u64), "{}", corpus.name());
            }
        }
    }

    #[test]
    fn corpora_have_their_advertised_shapes() {
        let gen = |corpus| {
            generate_varlen(VarGenConfig {
                records: 300,
                seed: 9,
                corpus,
            })
        };
        let empty = gen(TextCorpus::EmptyKey);
        assert!(var_records_of(&empty)
            .unwrap()
            .iter()
            .all(|r| r.key().is_empty()));

        let mega = gen(TextCorpus::SharedMegaPrefix {
            prefix: 48,
            suffix: 8,
        });
        for r in var_records_of(&mega).unwrap() {
            assert_eq!(r.key().len(), 56);
            assert!(r.key()[..48].iter().all(|&b| b == 0x50));
        }

        let chain = gen(TextCorpus::PrefixChain { max_len: 32 });
        let recs_buf = chain.clone();
        let recs = var_records_of(&recs_buf).unwrap();
        let longest = recs.iter().map(|r| r.key().to_vec()).max().unwrap();
        for r in recs {
            assert!(longest.starts_with(r.key()));
        }

        let rnd = gen(TextCorpus::RandomBytes {
            min_key: 0,
            max_key: 40,
        });
        let lens: Vec<usize> = var_records_of(&rnd)
            .unwrap()
            .iter()
            .map(|r| r.key().len())
            .collect();
        assert!(lens.contains(&0) || lens.iter().min() != lens.iter().max());
        assert!(lens.iter().all(|&l| l <= 40));
    }

    #[test]
    fn zipf_words_duplicate_heavily() {
        let buf = generate_varlen(VarGenConfig {
            records: 500,
            seed: 4,
            corpus: TextCorpus::ZipfianWords { max_words: 3 },
        });
        let recs = var_records_of(&buf).unwrap();
        let distinct: std::collections::HashSet<&[u8]> = recs.iter().map(|r| r.key()).collect();
        assert!(distinct.len() < 400, "only {} distinct", distinct.len());
    }
}
