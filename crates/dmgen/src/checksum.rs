//! Order-independent checksums for permutation checking.
//!
//! Verifying that a sorted output is a *permutation* of a 100 MB input
//! without holding either in memory needs a commutative fingerprint: we
//! hash every record independently and combine the hashes with commutative
//! operators (wrapping sum and xor, plus a count). Two multisets of records
//! are then distinguishable unless they collide in both 64-bit combiners
//! simultaneously — ample for test purposes.

use crate::record::{Record, RECORD_LEN};

/// A finished order-independent fingerprint of a multiset of records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Checksum {
    /// Number of records hashed.
    pub count: u64,
    /// Wrapping sum of per-record hashes.
    pub sum: u64,
    /// Xor of per-record hashes.
    pub xor: u64,
}

/// Incrementally builds a [`Checksum`] as records stream past.
#[derive(Clone, Debug, Default)]
pub struct RunningChecksum {
    count: u64,
    sum: u64,
    xor: u64,
}

impl RunningChecksum {
    /// Fresh empty checksum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one record.
    #[inline]
    pub fn update(&mut self, record: &Record) {
        let h = hash_record(record.as_bytes());
        self.count += 1;
        self.sum = self.sum.wrapping_add(h);
        self.xor ^= h;
    }

    /// Absorb every whole record in a byte buffer.
    ///
    /// # Panics
    /// If `bytes.len()` is not a multiple of the record length.
    pub fn update_bytes(&mut self, bytes: &[u8]) {
        assert!(bytes.len().is_multiple_of(RECORD_LEN));
        for chunk in bytes.chunks_exact(RECORD_LEN) {
            let h = hash_record(chunk);
            self.count += 1;
            self.sum = self.sum.wrapping_add(h);
            self.xor ^= h;
        }
    }

    /// Merge another running checksum into this one (for parallel scans).
    pub fn merge(&mut self, other: &RunningChecksum) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.xor ^= other.xor;
    }

    /// Finish and return the fingerprint.
    pub fn finish(&self) -> Checksum {
        Checksum {
            count: self.count,
            sum: self.sum,
            xor: self.xor,
        }
    }
}

/// FNV-1a over the record bytes, then a SplitMix64-style finalizer.
///
/// FNV alone has weak high bits; the finalizer avalanche makes the sum/xor
/// combiners sensitive to every input byte.
#[inline]
fn hash_record(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::KEY_LEN;

    fn rec(k: u8, seq: u64) -> Record {
        Record::with_key([k; KEY_LEN], seq)
    }

    #[test]
    fn order_independent() {
        let records = [rec(3, 0), rec(1, 1), rec(2, 2)];
        let mut a = RunningChecksum::new();
        for r in &records {
            a.update(r);
        }
        let mut b = RunningChecksum::new();
        for r in records.iter().rev() {
            b.update(r);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn detects_missing_record() {
        let mut a = RunningChecksum::new();
        a.update(&rec(1, 0));
        a.update(&rec(2, 1));
        let mut b = RunningChecksum::new();
        b.update(&rec(1, 0));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn detects_single_flipped_byte() {
        let r1 = rec(1, 0);
        let mut r2 = r1;
        r2.payload[89] ^= 1;
        let mut a = RunningChecksum::new();
        a.update(&r1);
        let mut b = RunningChecksum::new();
        b.update(&r2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn detects_duplication_swap() {
        // {x, x, y} vs {x, y, y}: xor alone would collide iff x == y hashes;
        // the sum combiner must catch it.
        let x = rec(1, 0);
        let y = rec(2, 1);
        let mut a = RunningChecksum::new();
        a.update(&x);
        a.update(&x);
        a.update(&y);
        let mut b = RunningChecksum::new();
        b.update(&x);
        b.update(&y);
        b.update(&y);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn update_bytes_matches_update() {
        let records = [rec(5, 0), rec(6, 1)];
        let mut a = RunningChecksum::new();
        for r in &records {
            a.update(r);
        }
        let mut buf = Vec::new();
        for r in &records {
            buf.extend_from_slice(r.as_bytes());
        }
        let mut b = RunningChecksum::new();
        b.update_bytes(&buf);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn merge_equals_sequential() {
        let rs: Vec<Record> = (0..10).map(|i| rec(i as u8, i)).collect();
        let mut whole = RunningChecksum::new();
        for r in &rs {
            whole.update(r);
        }
        let mut left = RunningChecksum::new();
        let mut right = RunningChecksum::new();
        for r in &rs[..4] {
            left.update(r);
        }
        for r in &rs[4..] {
            right.update(r);
        }
        left.merge(&right);
        assert_eq!(left.finish(), whole.finish());
    }
}
