//! The 100-byte Datamation record.
//!
//! Layout (matching the benchmark definition in the AlphaSort paper, §2):
//!
//! ```text
//! +--------------+-------------------------------------------+
//! | key: 10 B    | payload: 90 B                             |
//! +--------------+-------------------------------------------+
//! ```
//!
//! Keys compare as unsigned byte strings. The first [`PREFIX_LEN`] key bytes,
//! read big-endian, form the *key prefix*: a `u64` whose integer ordering
//! agrees with the byte-string ordering of those bytes — the core trick of
//! AlphaSort's key-prefix sort (§4).

/// Length of the sort key, in bytes.
pub const KEY_LEN: usize = 10;
/// Length of the non-key payload, in bytes.
pub const PAYLOAD_LEN: usize = 90;
/// Total record length, in bytes.
pub const RECORD_LEN: usize = 100;
/// Number of leading key bytes folded into the `u64` key prefix.
pub const PREFIX_LEN: usize = 8;

/// A single 100-byte Datamation record.
///
/// `#[repr(C)]` with alignment 1 so that a byte buffer whose length is a
/// multiple of [`RECORD_LEN`] can be reinterpreted as `&[Record]` with
/// [`records_of`] — the sort never copies records except in the final gather.
#[repr(C)]
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// The 10-byte sort key.
    pub key: [u8; KEY_LEN],
    /// The 90-byte payload. The generator stores the record's original
    /// sequence number in the first 8 payload bytes (little-endian), which
    /// lets tests confirm outputs are true permutations.
    pub payload: [u8; PAYLOAD_LEN],
}

// The whole point of the layout: records are plain bytes.
const _: () = assert!(core::mem::size_of::<Record>() == RECORD_LEN);
const _: () = assert!(core::mem::align_of::<Record>() == 1);

impl Record {
    /// A record whose key and payload are all zero bytes.
    pub const ZERO: Record = Record {
        key: [0; KEY_LEN],
        payload: [0; PAYLOAD_LEN],
    };

    /// Build a record from a key and a sequence number; remaining payload
    /// bytes are zero. Mostly useful in tests.
    pub fn with_key(key: [u8; KEY_LEN], seq: u64) -> Self {
        let mut r = Record {
            key,
            payload: [0; PAYLOAD_LEN],
        };
        r.payload[..8].copy_from_slice(&seq.to_le_bytes());
        r
    }

    /// The record's key as a byte slice.
    #[inline]
    pub fn key(&self) -> &[u8; KEY_LEN] {
        &self.key
    }

    /// The `u64` key prefix: first [`PREFIX_LEN`] key bytes, big-endian.
    ///
    /// For any two records `a`, `b`: `a.prefix() < b.prefix()` implies
    /// `a.key < b.key`, and `a.prefix() != b.prefix()` implies the prefix
    /// comparison equals the full-key comparison. Only on prefix *ties* must
    /// a comparison fall through to the full key.
    #[inline]
    pub fn prefix(&self) -> u64 {
        u64::from_be_bytes(self.key[..PREFIX_LEN].try_into().unwrap())
    }

    /// The sequence number the generator stamped into the payload.
    #[inline]
    pub fn seq(&self) -> u64 {
        u64::from_le_bytes(self.payload[..8].try_into().unwrap())
    }

    /// View the record as its raw 100 bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; RECORD_LEN] {
        // SAFETY: Record is repr(C), size 100, align 1, no padding.
        unsafe { &*(self as *const Record as *const [u8; RECORD_LEN]) }
    }

    /// Read a record out of a byte slice (copies 100 bytes).
    ///
    /// # Panics
    /// If `bytes.len() < RECORD_LEN`.
    #[inline]
    pub fn from_bytes(bytes: &[u8]) -> Record {
        let mut r = Record::ZERO;
        let dst = unsafe {
            core::slice::from_raw_parts_mut(&mut r as *mut Record as *mut u8, RECORD_LEN)
        };
        dst.copy_from_slice(&bytes[..RECORD_LEN]);
        r
    }
}

impl PartialOrd for Record {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Record {
    /// Records order by key only; payload is not part of the sort order.
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl core::fmt::Debug for Record {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Record {{ key: {:02x?}, seq: {} }}",
            self.key,
            self.seq()
        )
    }
}

/// Reinterpret a byte buffer as a slice of records, zero-copy.
///
/// # Panics
/// If `bytes.len()` is not a multiple of [`RECORD_LEN`].
#[inline]
pub fn records_of(bytes: &[u8]) -> &[Record] {
    assert!(
        bytes.len().is_multiple_of(RECORD_LEN),
        "buffer length {} is not a multiple of the record length {}",
        bytes.len(),
        RECORD_LEN
    );
    // SAFETY: Record has size 100, align 1, and is valid for any bit pattern.
    unsafe {
        core::slice::from_raw_parts(bytes.as_ptr() as *const Record, bytes.len() / RECORD_LEN)
    }
}

/// Reinterpret a mutable byte buffer as a mutable slice of records, zero-copy.
///
/// # Panics
/// If `bytes.len()` is not a multiple of [`RECORD_LEN`].
#[inline]
pub fn records_of_mut(bytes: &mut [u8]) -> &mut [Record] {
    assert!(
        bytes.len().is_multiple_of(RECORD_LEN),
        "buffer length {} is not a multiple of the record length {}",
        bytes.len(),
        RECORD_LEN
    );
    // SAFETY: as in `records_of`; exclusive borrow is carried over.
    unsafe {
        core::slice::from_raw_parts_mut(bytes.as_mut_ptr() as *mut Record, bytes.len() / RECORD_LEN)
    }
}

/// View a record slice as raw bytes, zero-copy.
#[inline]
pub fn bytes_of(records: &[Record]) -> &[u8] {
    // SAFETY: Record is plain bytes (size 100, align 1, no padding).
    unsafe {
        core::slice::from_raw_parts(records.as_ptr() as *const u8, records.len() * RECORD_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_100_plain_bytes() {
        assert_eq!(core::mem::size_of::<Record>(), 100);
        assert_eq!(core::mem::align_of::<Record>(), 1);
    }

    #[test]
    fn prefix_orders_like_key_bytes() {
        let a = Record::with_key([0, 0, 0, 0, 0, 0, 0, 1, 0, 0], 0);
        let b = Record::with_key([0, 0, 0, 0, 0, 0, 0, 2, 0, 0], 1);
        assert!(a.prefix() < b.prefix());
        assert!(a.key < b.key);

        // High byte dominates, as in byte-string comparison.
        let c = Record::with_key([1, 0, 0, 0, 0, 0, 0, 0, 0, 0], 2);
        assert!(b.prefix() < c.prefix());
    }

    #[test]
    fn prefix_tie_needs_full_key() {
        let a = Record::with_key([7, 7, 7, 7, 7, 7, 7, 7, 0, 1], 0);
        let b = Record::with_key([7, 7, 7, 7, 7, 7, 7, 7, 0, 2], 1);
        assert_eq!(a.prefix(), b.prefix());
        assert!(a.key < b.key);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(b"ABCDEFGHIJ");
        let r = Record::with_key(key, 42);
        let r2 = Record::from_bytes(r.as_bytes());
        assert_eq!(r, r2);
        assert_eq!(r2.seq(), 42);
    }

    #[test]
    fn records_of_views_buffer() {
        let mut buf = vec![0u8; 3 * RECORD_LEN];
        buf[0] = 9; // first key byte of record 0
        buf[RECORD_LEN] = 5; // first key byte of record 1
        let recs = records_of(&buf);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].key[0], 9);
        assert_eq!(recs[1].key[0], 5);
        assert!(recs[1] < recs[0]);
    }

    #[test]
    fn records_of_mut_writes_through() {
        let mut buf = vec![0u8; 2 * RECORD_LEN];
        {
            let recs = records_of_mut(&mut buf);
            recs[1].key[0] = 0xAB;
        }
        assert_eq!(buf[RECORD_LEN], 0xAB);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn records_of_rejects_ragged_buffer() {
        let buf = vec![0u8; 150];
        let _ = records_of(&buf);
    }

    #[test]
    fn ord_ignores_payload() {
        let mut a = Record::with_key([1; KEY_LEN], 0);
        let b = Record::with_key([1; KEY_LEN], 999);
        a.payload[50] = 77;
        assert_eq!(a.cmp(&b), core::cmp::Ordering::Equal);
    }
}
