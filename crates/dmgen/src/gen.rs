//! Record generation.
//!
//! A [`Generator`] produces the benchmark input deterministically from a
//! seed: into memory buffers, into any `io::Write`, or record-at-a-time.
//! Payload bytes carry the record's sequence number (first 8 bytes) followed
//! by seed-derived filler, so outputs can be checked for permutation-ness
//! and records are incompressible as the benchmark requires.

use std::io::{self, Write};

use crate::checksum::{Checksum, RunningChecksum};
use crate::dist::KeyDistribution;
use crate::record::{Record, PAYLOAD_LEN, RECORD_LEN};
use crate::rng::SplitMix64;

/// Configuration for a generation run.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of records to generate.
    pub records: u64,
    /// RNG seed; equal configs generate byte-identical data.
    pub seed: u64,
    /// Key distribution.
    pub dist: KeyDistribution,
}

impl GenConfig {
    /// The benchmark's canonical configuration at a given scale: `records`
    /// uniformly random keys.
    pub fn datamation(records: u64, seed: u64) -> Self {
        GenConfig {
            records,
            seed,
            dist: KeyDistribution::Random,
        }
    }

    /// Total bytes this configuration generates.
    pub fn total_bytes(&self) -> u64 {
        self.records * RECORD_LEN as u64
    }
}

/// Streaming record generator.
pub struct Generator {
    cfg: GenConfig,
    key_rng: SplitMix64,
    pay_rng: SplitMix64,
    next_seq: u64,
    checksum: RunningChecksum,
}

impl Generator {
    /// Start a generation run.
    pub fn new(cfg: GenConfig) -> Self {
        let mut root = SplitMix64::new(cfg.seed);
        let key_rng = root.split();
        let pay_rng = root.split();
        Generator {
            cfg,
            key_rng,
            pay_rng,
            next_seq: 0,
            checksum: RunningChecksum::new(),
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &GenConfig {
        &self.cfg
    }

    /// How many records remain to be generated.
    pub fn remaining(&self) -> u64 {
        self.cfg.records - self.next_seq
    }

    /// Generate the next record, or `None` when the configured count is done.
    pub fn next_record(&mut self) -> Option<Record> {
        if self.next_seq >= self.cfg.records {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;

        let key = self
            .cfg
            .dist
            .key_for(seq, self.cfg.records, &mut self.key_rng);
        let mut payload = [0u8; PAYLOAD_LEN];
        payload[..8].copy_from_slice(&seq.to_le_bytes());
        self.pay_rng.fill_bytes(&mut payload[8..]);

        let r = Record { key, payload };
        self.checksum.update(&r);
        Some(r)
    }

    /// Fill `buf` with as many whole records as fit (and remain); returns the
    /// number of bytes written.
    ///
    /// # Panics
    /// If `buf.len()` is not a multiple of the record length.
    pub fn fill(&mut self, buf: &mut [u8]) -> usize {
        assert!(buf.len().is_multiple_of(RECORD_LEN));
        let mut written = 0;
        for chunk in buf.chunks_exact_mut(RECORD_LEN) {
            match self.next_record() {
                Some(r) => {
                    chunk.copy_from_slice(r.as_bytes());
                    written += RECORD_LEN;
                }
                None => break,
            }
        }
        written
    }

    /// Generate everything that remains into a fresh `Vec<u8>`.
    pub fn generate_vec(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.remaining() as usize) * RECORD_LEN);
        while let Some(r) = self.next_record() {
            out.extend_from_slice(r.as_bytes());
        }
        out
    }

    /// Generate everything that remains into a writer, in `chunk_records`
    /// sized batches. Returns the total byte count.
    pub fn generate_to<W: Write>(&mut self, w: &mut W, chunk_records: usize) -> io::Result<u64> {
        assert!(chunk_records > 0);
        let mut buf = vec![0u8; chunk_records * RECORD_LEN];
        let mut total = 0u64;
        loop {
            let n = self.fill(&mut buf);
            if n == 0 {
                break;
            }
            w.write_all(&buf[..n])?;
            total += n as u64;
        }
        Ok(total)
    }

    /// Fingerprint of everything generated so far — compare against the
    /// validator's checksum of the sorted output.
    pub fn checksum(&self) -> Checksum {
        self.checksum.finish()
    }
}

/// Convenience: generate a full dataset in memory and return it with its
/// input fingerprint.
pub fn generate(cfg: GenConfig) -> (Vec<u8>, Checksum) {
    let mut g = Generator::new(cfg);
    let data = g.generate_vec();
    (data, g.checksum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::records_of;

    #[test]
    fn generates_exact_count_and_size() {
        let (data, cs) = generate(GenConfig::datamation(1000, 42));
        assert_eq!(data.len(), 1000 * RECORD_LEN);
        assert_eq!(cs.count, 1000);
    }

    #[test]
    fn deterministic_for_seed() {
        let (a, ca) = generate(GenConfig::datamation(500, 7));
        let (b, cb) = generate(GenConfig::datamation(500, 7));
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = generate(GenConfig::datamation(100, 1));
        let (b, _) = generate(GenConfig::datamation(100, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let (data, _) = generate(GenConfig::datamation(256, 3));
        for (i, r) in records_of(&data).iter().enumerate() {
            assert_eq!(r.seq(), i as u64);
        }
    }

    #[test]
    fn generate_to_writer_matches_vec() {
        let cfg = GenConfig::datamation(333, 9);
        let (vec_data, vec_cs) = generate(cfg);
        let mut g = Generator::new(cfg);
        let mut out = Vec::new();
        let n = g.generate_to(&mut out, 10).unwrap();
        assert_eq!(n, 333 * RECORD_LEN as u64);
        assert_eq!(out, vec_data);
        assert_eq!(g.checksum(), vec_cs);
    }

    #[test]
    fn fill_partial_final_chunk() {
        let mut g = Generator::new(GenConfig::datamation(5, 1));
        let mut buf = vec![0u8; 3 * RECORD_LEN];
        assert_eq!(g.fill(&mut buf), 3 * RECORD_LEN);
        assert_eq!(g.fill(&mut buf), 2 * RECORD_LEN);
        assert_eq!(g.fill(&mut buf), 0);
    }

    #[test]
    fn non_random_distribution_flows_through() {
        let cfg = GenConfig {
            records: 100,
            seed: 5,
            dist: KeyDistribution::Sorted,
        };
        let (data, _) = generate(cfg);
        let recs = records_of(&data);
        assert!(recs.windows(2).all(|w| w[0].key <= w[1].key));
    }
}
