//! A tiny, deterministic, version-stable PRNG.
//!
//! Workload bytes must be reproducible bit-for-bit across library versions so
//! that experiment outputs are comparable over time; external RNG crates make
//! no such stability promise across major versions. SplitMix64 (Steele,
//! Lea & Flood, 2014) is a well-studied 64-bit mixer that is more than good
//! enough for generating "random order, incompressible" benchmark keys.

/// SplitMix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value uniform in `[0, bound)`.
    ///
    /// Uses the widening-multiply method (Lemire); bias is negligible for the
    /// bounds used here and determinism is what matters.
    ///
    /// # Panics
    /// If `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fill a byte slice with random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }

    /// Derive an independent child generator (e.g. one per parallel worker).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_vector() {
        // Reference values from the public-domain SplitMix64 C implementation
        // seeded with 0: guards against accidental algorithm changes.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(99);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn fill_bytes_handles_ragged_len() {
        let mut r = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Statistically certain to be non-zero somewhere.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SplitMix64::new(42);
        let mut a = parent.split();
        let mut b = parent.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
