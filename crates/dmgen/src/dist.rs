//! Key distributions for workload generation.
//!
//! The Datamation benchmark itself prescribes uniformly random keys
//! ([`KeyDistribution::Random`]); the other distributions exercise the edge
//! cases the AlphaSort paper discusses: QuickSort's poor worst case on
//! adversarial inputs (§4), replacement-selection's long runs on nearly
//! sorted data, and key prefixes degenerating to pointer sort when the
//! prefix does not discriminate (§4's "risk of using the key-prefix").

use crate::record::KEY_LEN;
use crate::rng::SplitMix64;

/// How record keys are distributed across the generated input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDistribution {
    /// Uniformly random 10-byte keys — the benchmark's required distribution.
    Random,
    /// Uniformly random keys over the 95 printable ASCII characters — the
    /// "readable by a program using conventional tools" flavour the
    /// MinuteSort rules gesture at (and what sortbenchmark.org's Daytona
    /// category later required). Lower entropy per byte, so prefix ties are
    /// slightly more common than with binary keys.
    RandomPrintable,
    /// Keys already in ascending order (replacement-selection's best case:
    /// a single run regardless of memory size).
    Sorted,
    /// Keys in descending order (replacement-selection's worst case: runs of
    /// exactly memory size; a classic QuickSort stress pattern).
    Reverse,
    /// Ascending keys with a fraction of records swapped to random positions.
    /// `permille` is the per-record probability (0..=1000) of displacement.
    NearlySorted { permille: u16 },
    /// Keys drawn from only `cardinality` distinct values — stresses prefix
    /// ties and stability.
    DupHeavy { cardinality: u32 },
    /// All keys share the same first `shared` bytes, so any prefix up to that
    /// length discriminates nothing and key-prefix sort must fall through to
    /// full-key comparisons (the degenerate case of §4).
    CommonPrefix { shared: u8 },
}

impl KeyDistribution {
    /// Produce the key for record number `i` out of `n`.
    ///
    /// `rng` must be the generator dedicated to this stream; calls must be
    /// made with `i = 0..n` in order for the order-sensitive distributions
    /// to come out right.
    pub fn key_for(&self, i: u64, n: u64, rng: &mut SplitMix64) -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        match *self {
            KeyDistribution::Random => rng.fill_bytes(&mut key),
            KeyDistribution::RandomPrintable => {
                for b in &mut key {
                    *b = 0x20 + rng.next_below(95) as u8;
                }
            }
            KeyDistribution::Sorted => {
                key[..8].copy_from_slice(&ordinal_spread(i, n).to_be_bytes());
                // Low bytes random so keys are still distinct & incompressible.
                let tail = rng.next_u64().to_le_bytes();
                key[8..].copy_from_slice(&tail[..2]);
            }
            KeyDistribution::Reverse => {
                key[..8].copy_from_slice(&ordinal_spread(n - 1 - i, n).to_be_bytes());
                let tail = rng.next_u64().to_le_bytes();
                key[8..].copy_from_slice(&tail[..2]);
            }
            KeyDistribution::NearlySorted { permille } => {
                let displaced = rng.next_below(1000) < u64::from(permille.min(1000));
                let ord = if displaced {
                    rng.next_below(n.max(1))
                } else {
                    i
                };
                key[..8].copy_from_slice(&ordinal_spread(ord, n).to_be_bytes());
                let tail = rng.next_u64().to_le_bytes();
                key[8..].copy_from_slice(&tail[..2]);
            }
            KeyDistribution::DupHeavy { cardinality } => {
                let c = u64::from(cardinality.max(1));
                let v = rng.next_below(c);
                // Derive the whole key from the chosen value so equal values
                // give byte-identical keys.
                let mut keyrng = SplitMix64::new(v ^ 0xD1B5_4A32_D192_ED03);
                keyrng.fill_bytes(&mut key);
            }
            KeyDistribution::CommonPrefix { shared } => {
                let s = usize::from(shared).min(KEY_LEN);
                key[..s].fill(0xCC);
                let mut rest = [0u8; KEY_LEN];
                rng.fill_bytes(&mut rest);
                key[s..].copy_from_slice(&rest[s..]);
            }
        }
        key
    }
}

/// Spread ordinal `i` of `n` across the full u64 range, preserving order.
///
/// Using a plain counter would make `Sorted` keys compressible and confined
/// to a tiny prefix range; scaling to the full range keeps the first key
/// bytes varied, like real data.
fn ordinal_spread(i: u64, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    // i * (2^64 - 1) / (n - 1), computed in u128 to avoid overflow.
    ((i as u128 * u64::MAX as u128) / (n as u128 - 1)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(dist: KeyDistribution, n: u64, seed: u64) -> Vec<[u8; KEY_LEN]> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|i| dist.key_for(i, n, &mut rng)).collect()
    }

    #[test]
    fn random_keys_are_distinct_with_high_probability() {
        let mut ks = keys(KeyDistribution::Random, 10_000, 1);
        ks.sort();
        ks.dedup();
        assert_eq!(ks.len(), 10_000);
    }

    #[test]
    fn printable_keys_are_printable_and_distinct() {
        let ks = keys(KeyDistribution::RandomPrintable, 5_000, 11);
        assert!(ks
            .iter()
            .all(|k| k.iter().all(|&b| (0x20..0x7F).contains(&b))));
        let mut dedup = ks.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 5_000); // 95^10 keyspace: collisions absurd
    }

    #[test]
    fn sorted_distribution_is_nondecreasing() {
        let ks = keys(KeyDistribution::Sorted, 5_000, 2);
        assert!(ks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn reverse_distribution_is_nonincreasing() {
        let ks = keys(KeyDistribution::Reverse, 5_000, 3);
        assert!(ks.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn nearly_sorted_is_mostly_ordered() {
        let ks = keys(KeyDistribution::NearlySorted { permille: 50 }, 10_000, 4);
        let inversions = ks.windows(2).filter(|w| w[0] > w[1]).count();
        // ~5% displaced; adjacent inversion rate must be well under 15%.
        assert!(inversions < 1_500, "too many inversions: {inversions}");
    }

    #[test]
    fn dup_heavy_has_requested_cardinality() {
        let mut ks = keys(KeyDistribution::DupHeavy { cardinality: 16 }, 10_000, 5);
        ks.sort();
        ks.dedup();
        assert_eq!(ks.len(), 16);
    }

    #[test]
    fn common_prefix_shares_leading_bytes() {
        let ks = keys(KeyDistribution::CommonPrefix { shared: 8 }, 1_000, 6);
        assert!(ks.iter().all(|k| k[..8] == [0xCC; 8]));
        // Tails must still differ (keys mostly distinct).
        let mut tails: Vec<_> = ks.iter().map(|k| [k[8], k[9]]).collect();
        tails.sort();
        tails.dedup();
        assert!(tails.len() > 500);
    }

    #[test]
    fn ordinal_spread_monotone_and_extremal() {
        assert_eq!(ordinal_spread(0, 100), 0);
        assert_eq!(ordinal_spread(99, 100), u64::MAX);
        let vals: Vec<u64> = (0..100).map(|i| ordinal_spread(i, 100)).collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(
            keys(KeyDistribution::Random, 100, 77),
            keys(KeyDistribution::Random, 100, 77)
        );
    }
}
