//! Exporters: Chrome `trace_event` JSON and a metrics document.
//!
//! The trace format is the subset of the Trace Event Format that
//! `chrome://tracing` and Perfetto load directly: complete (`"X"`) events
//! with microsecond `ts`/`dur`, instant (`"i"`) events, and metadata
//! (`"M"`) records naming processes and threads. Tracks map to processes —
//! a netsort run exports each node as its own process row — and recorder
//! threads map to Chrome thread ids, so nested spans on one thread render
//! as a flame-graph lane exactly like the paper's Figure 7 timeline.

use alphasort_minijson::Json;

use crate::metrics::MetricsSnapshot;
use crate::recorder::{AttrValue, EventKind, TraceSnapshot};

fn attr_json(v: &AttrValue) -> Json {
    match *v {
        AttrValue::U64(n) => Json::from(n),
        AttrValue::I64(n) => Json::from(n),
        AttrValue::F64(x) => Json::from(x),
        AttrValue::Str(ref s) => Json::from(s.as_str()),
    }
}

fn meta_event(name: &str, pid: usize, tid: Option<u32>, value: &str) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::from(name)),
        ("ph".to_string(), Json::from("M")),
        ("pid".to_string(), Json::from(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Json::from(tid)));
    }
    fields.push((
        "args".to_string(),
        Json::Obj(vec![("name".to_string(), Json::from(value))]),
    ));
    Json::Obj(fields)
}

/// Render a snapshot as a Chrome `trace_event` JSON document.
pub fn chrome_trace(snap: &TraceSnapshot) -> Json {
    // Process 0 is the untracked (main) process; each named track gets the
    // next pid in sorted order.
    let tracks = snap.tracks();
    let pid_of = |track: Option<&str>| -> usize {
        match track {
            None => 0,
            Some(t) => 1 + tracks.iter().position(|x| x == t).expect("track listed"),
        }
    };

    let mut events: Vec<Json> = Vec::with_capacity(snap.events.len() + 16);
    events.push(meta_event("process_name", 0, None, "main"));
    for (i, t) in tracks.iter().enumerate() {
        events.push(meta_event("process_name", i + 1, None, t));
    }
    // A thread can appear under several pids (an untracked pool thread later
    // adopted into a node track records to both); Chrome treats (pid, tid)
    // as the lane key, so emit thread metadata per (pid, tid) pair seen.
    let mut lanes: std::collections::BTreeSet<(usize, u32)> = std::collections::BTreeSet::new();
    for e in &snap.events {
        lanes.insert((pid_of(e.track.as_deref()), e.tid));
    }
    for t in &snap.threads {
        for &(pid, tid) in &lanes {
            if tid == t.tid {
                events.push(meta_event("thread_name", pid, Some(tid), &t.name));
            }
        }
    }

    for e in &snap.events {
        let mut fields = vec![
            ("name".to_string(), Json::from(e.name)),
            ("pid".to_string(), Json::from(pid_of(e.track.as_deref()))),
            ("tid".to_string(), Json::from(e.tid)),
            ("ts".to_string(), Json::Float(e.start_ns as f64 / 1_000.0)),
        ];
        match e.kind {
            EventKind::Span { dur_ns } => {
                fields.insert(1, ("ph".to_string(), Json::from("X")));
                fields.push(("dur".to_string(), Json::Float(dur_ns as f64 / 1_000.0)));
            }
            EventKind::Instant => {
                fields.insert(1, ("ph".to_string(), Json::from("i")));
                fields.push(("s".to_string(), Json::from("t")));
            }
        }
        if !e.attrs.is_empty() {
            fields.push((
                "args".to_string(),
                Json::Obj(
                    e.attrs
                        .iter()
                        .map(|(k, v)| (k.to_string(), attr_json(v)))
                        .collect(),
                ),
            ));
        }
        events.push(Json::Obj(fields));
    }

    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::from("ms")),
        (
            "otherData".to_string(),
            Json::Obj(vec![(
                "droppedEvents".to_string(),
                Json::from(snap.dropped),
            )]),
        ),
    ])
}

/// Compact latency-style summary of one histogram: `count`, `mean`,
/// `p50`/`p90`/`p99` (via [`crate::metrics::Histogram::quantile`]'s
/// interpolation), and
/// `max`. This is the shape service stats documents embed when the full
/// bucket array would be noise — sortd's `stats` latency section uses it.
pub fn histogram_summary(h: &crate::metrics::Histogram) -> Json {
    Json::Obj(vec![
        ("count".to_string(), Json::from(h.count())),
        ("mean".to_string(), Json::Float(h.mean())),
        ("p50".to_string(), Json::Float(h.quantile(0.50).unwrap_or(0.0))),
        ("p90".to_string(), Json::Float(h.quantile(0.90).unwrap_or(0.0))),
        ("p99".to_string(), Json::Float(h.quantile(0.99).unwrap_or(0.0))),
        ("max".to_string(), Json::from(h.max().unwrap_or(0))),
    ])
}

/// Render a metrics snapshot as a JSON document.
pub fn metrics_json(snap: &MetricsSnapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(k, &v)| (k.clone(), Json::from(v)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(k, &v)| (k.clone(), Json::from(v)))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            let buckets = h
                .nonzero_buckets()
                .into_iter()
                .map(|(lo, hi, count)| {
                    Json::Obj(vec![
                        ("lo".to_string(), Json::from(lo)),
                        // The top bucket's bound (2^64) exceeds i64; clamp
                        // to a float, which is what readers chart anyway.
                        ("hi".to_string(), Json::Float(hi as f64)),
                        ("count".to_string(), Json::from(count)),
                    ])
                })
                .collect();
            let obj = Json::Obj(vec![
                ("count".to_string(), Json::from(h.count())),
                ("sum".to_string(), Json::from(h.sum())),
                ("min".to_string(), Json::from(h.min().unwrap_or(0))),
                ("max".to_string(), Json::from(h.max().unwrap_or(0))),
                ("mean".to_string(), Json::Float(h.mean())),
                ("buckets".to_string(), Json::Arr(buckets)),
            ]);
            (k.clone(), obj)
        })
        .collect();
    Json::Obj(vec![
        ("counters".to_string(), Json::Obj(counters)),
        ("gauges".to_string(), Json::Obj(gauges)),
        ("histograms".to_string(), Json::Obj(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;
    use crate::recorder::{Event, ThreadInfo};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn span_event(
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        tid: u32,
        track: Option<&str>,
    ) -> Event {
        Event {
            name,
            kind: EventKind::Span { dur_ns },
            start_ns,
            tid,
            track: track.map(Arc::from),
            attrs: vec![("bytes", AttrValue::U64(4096))],
        }
    }

    #[test]
    fn chrome_trace_structure_and_roundtrip() {
        let snap = TraceSnapshot {
            events: vec![
                span_event("one_pass", 0, 10_000, 1, None),
                span_event("read", 100, 2_000, 1, None),
                span_event("exchange", 50, 5_000, 2, Some("node0")),
            ],
            dropped: 3,
            threads: vec![
                ThreadInfo {
                    tid: 1,
                    name: "main".into(),
                },
                ThreadInfo {
                    tid: 2,
                    name: "worker".into(),
                },
            ],
        };
        let doc = chrome_trace(&snap);
        // Round-trips through the workspace JSON parser byte-exactly.
        let text = doc.dump_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);

        let events = parsed.field_arr("traceEvents").unwrap();
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.field_str("ph") == Ok("X"))
            .collect();
        assert_eq!(xs.len(), 3);
        let read = xs
            .iter()
            .find(|e| e.field_str("name") == Ok("read"))
            .unwrap();
        assert_eq!(read.field_f64("ts").unwrap(), 0.1); // 100 ns = 0.1 µs
        assert_eq!(read.field_f64("dur").unwrap(), 2.0);
        assert_eq!(read.field_u64("pid").unwrap(), 0);
        let exch = xs
            .iter()
            .find(|e| e.field_str("name") == Ok("exchange"))
            .unwrap();
        assert_eq!(exch.field_u64("pid").unwrap(), 1); // node0 process
        assert_eq!(exch.get("args").unwrap().field_u64("bytes").unwrap(), 4096);
        // Metadata names both processes.
        let metas: Vec<&Json> = events
            .iter()
            .filter(|e| e.field_str("ph") == Ok("M"))
            .collect();
        assert!(metas
            .iter()
            .any(|m| m.get("args").unwrap().field_str("name") == Ok("node0")));
        assert_eq!(
            parsed
                .get("otherData")
                .unwrap()
                .field_u64("droppedEvents")
                .unwrap(),
            3
        );
    }

    #[test]
    fn metrics_json_roundtrip() {
        let mut h = Histogram::default();
        h.record(512);
        h.record(513);
        let snap = MetricsSnapshot {
            counters: BTreeMap::from([("io.read.bytes".to_string(), 1_048_576u64)]),
            gauges: BTreeMap::from([("io.queue_depth".to_string(), 3i64)]),
            histograms: BTreeMap::from([("net.frame.bytes".to_string(), h)]),
        };
        let doc = metrics_json(&snap);
        let parsed = Json::parse(&doc.dump()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .field_u64("io.read.bytes")
                .unwrap(),
            1_048_576
        );
        let hist = parsed
            .get("histograms")
            .unwrap()
            .get("net.frame.bytes")
            .unwrap();
        assert_eq!(hist.field_u64("count").unwrap(), 2);
        let buckets = hist.field_arr("buckets").unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].field_u64("lo").unwrap(), 512);
        assert_eq!(buckets[0].field_u64("count").unwrap(), 2);
    }
}
