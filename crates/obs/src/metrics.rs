//! Metrics: counters, gauges and log-scale histograms.
//!
//! Like the span recorder, the metrics store is process-global and gated by
//! the same enabled flag, so instrumented sites are one relaxed load when no
//! observability was requested. Names are `&'static str` — the set of
//! metrics is fixed at compile time, per-entity detail (disk, peer, run)
//! belongs in span attributes, not metric names.
//!
//! Histograms use power-of-two buckets: bucket 0 holds exactly the value 0
//! and bucket *k* ≥ 1 holds `[2^(k−1), 2^k)`, so a boundary value `2^k` is
//! always the *lowest* value of bucket `k+1`. That gives a fixed 65-slot
//! footprint covering the full `u64` range — per-run sort latencies in
//! microseconds and per-frame exchange sizes in bytes both fit without
//! configuration.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use alphasort_minijson::Json;

use crate::recorder::is_enabled;

/// Number of histogram buckets: the zero bucket plus one per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-footprint, log2-bucketed histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `64 − leading_zeros`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Half-open `[lo, hi)` range of bucket `i` (bucket 0 is `[0, 1)`).
    pub fn bucket_bounds(i: usize) -> (u64, u128) {
        assert!(i < HISTOGRAM_BUCKETS);
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), 1u128 << i)
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u128, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`) by walking the
    /// log2 buckets and linearly interpolating within the bucket that
    /// contains the target rank.
    ///
    /// The interpolation range of the first and last non-empty buckets is
    /// clamped to the observed `min`/`max`, so `quantile(0.0)` is exactly
    /// the minimum and `quantile(1.0)` exactly the maximum. For interior
    /// quantiles the estimate lands inside the true value's power-of-two
    /// bucket — a worst-case factor-of-two error, and far tighter when the
    /// distribution is locally uniform (linear interpolation is then
    /// exact up to bucket granularity). Returns `None` when empty.
    ///
    /// ```
    /// let mut h = alphasort_obs::Histogram::default();
    /// for v in 0..1000u64 {
    ///     h.record(v);
    /// }
    /// assert_eq!(h.quantile(0.0), Some(0.0));
    /// assert_eq!(h.quantile(1.0), Some(999.0));
    /// let p50 = h.quantile(0.5).unwrap();
    /// assert!((p50 - 500.0).abs() < 20.0, "{p50}");
    /// ```
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min as f64);
        }
        if q == 1.0 {
            return Some(self.max as f64);
        }
        let target = q * self.count as f64;
        let mut seen = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let c = self.counts[i];
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                // The bucket holding `min` starts at `min`, the bucket
                // holding `max` ends just past `max`: never extrapolate
                // beyond observed data.
                let lo = (lo as f64).max(self.min as f64);
                let hi = (hi as f64).min(self.max as f64 + 1.0);
                let frac = (target - seen as f64) / c as f64;
                return Some(lo + frac * (hi - lo).max(0.0));
            }
            seen += c;
        }
        Some(self.max as f64)
    }

    /// Full-fidelity JSON encoding: every non-empty bucket by index, plus
    /// the summary fields, so [`from_json`](Self::from_json) reconstructs
    /// the histogram exactly. This is the wire format services ship
    /// histograms in (sortd's `metrics` request); the lossier
    /// charting-oriented rendering lives in
    /// [`export::metrics_json`](crate::export::metrics_json).
    pub fn to_json(&self) -> Json {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::from(i as u64), Json::from(c)]))
            .collect();
        Json::Obj(vec![
            ("count".to_string(), Json::from(self.count)),
            ("sum".to_string(), Json::from(self.sum)),
            ("min".to_string(), Json::from(self.min().unwrap_or(0))),
            ("max".to_string(), Json::from(self.max().unwrap_or(0))),
            ("buckets".to_string(), Json::Arr(buckets)),
        ])
    }

    /// Decode a histogram encoded by [`to_json`](Self::to_json).
    pub fn from_json(doc: &Json) -> Result<Histogram, String> {
        let mut h = Histogram {
            count: doc.field_u64("count").map_err(|e| e.to_string())?,
            sum: doc.field_u64("sum").map_err(|e| e.to_string())?,
            min: doc.field_u64("min").map_err(|e| e.to_string())?,
            max: doc.field_u64("max").map_err(|e| e.to_string())?,
            counts: [0; HISTOGRAM_BUCKETS],
        };
        if h.count == 0 {
            // `min` is meaningless when empty; restore the sentinel.
            h.min = u64::MAX;
        }
        for b in doc.field_arr("buckets").map_err(|e| e.to_string())? {
            let pair = b.as_arr().ok_or("bucket entry is not a pair")?;
            let (idx, c) = match pair {
                [i, c] => (
                    i.as_u64().ok_or("bucket index is not an integer")?,
                    c.as_u64().ok_or("bucket count is not an integer")?,
                ),
                _ => return Err("bucket entry is not a [index, count] pair".into()),
            };
            if idx as usize >= HISTOGRAM_BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            h.counts[idx as usize] = c;
        }
        Ok(h)
    }

    /// This histogram minus an earlier one (per-bucket saturating).
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for i in 0..HISTOGRAM_BUCKETS {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        // min/max cannot be un-merged; keep the later window's extremes.
        out.min = if out.count > 0 { self.min } else { u64::MAX };
        out.max = if out.count > 0 { self.max } else { 0 };
        out
    }
}

#[derive(Default)]
struct Store {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

pub(crate) fn reset_store() {
    let mut s = store().lock().unwrap();
    *s = Store::default();
}

/// Add `delta` to the named monotonic counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    *store().lock().unwrap().counters.entry(name).or_insert(0) += delta;
}

/// Set the named gauge to `value`.
#[inline]
pub fn gauge_set(name: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    store().lock().unwrap().gauges.insert(name, value);
}

/// Adjust the named gauge by `delta` (e.g. queue depth up/down).
#[inline]
pub fn gauge_add(name: &'static str, delta: i64) {
    if !is_enabled() {
        return;
    }
    *store().lock().unwrap().gauges.entry(name).or_insert(0) += delta;
}

/// Record `value` in the named log-scale histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    store()
        .lock()
        .unwrap()
        .histograms
        .entry(name)
        .or_default()
        .record(value);
}

/// A copy of every metric at one moment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counters and histogram counts since `earlier`; gauges keep their
    /// current value (a gauge has no meaningful delta).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let out = match earlier.histograms.get(k) {
                    Some(prev) => h.diff(prev),
                    None => h.clone(),
                };
                (k.clone(), out)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Round-trippable JSON encoding: `counters`/`gauges`/`histograms`
    /// objects, with each histogram in its full-fidelity
    /// [`Histogram::to_json`] form. This is the wire document the sortd
    /// `metrics` request answers with (plus its own envelope fields);
    /// [`from_json`](Self::from_json) on the receiving side restores a
    /// snapshot that diffs and quantiles exactly like the original.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode a snapshot from [`to_json`](Self::to_json) output. Unknown
    /// sibling fields (a carrying document's envelope) are ignored; a
    /// missing section decodes as empty.
    pub fn from_json(doc: &Json) -> Result<MetricsSnapshot, String> {
        fn entries(doc: &Json, key: &str) -> Result<Vec<(String, Json)>, String> {
            match doc.get(key) {
                None => Ok(Vec::new()),
                Some(Json::Obj(fields)) => Ok(fields.clone()),
                Some(_) => Err(format!("{key} is not an object")),
            }
        }
        let mut snap = MetricsSnapshot::default();
        for (k, v) in entries(doc, "counters")? {
            let n = v.as_u64().ok_or_else(|| format!("counter {k} is not a u64"))?;
            snap.counters.insert(k, n);
        }
        for (k, v) in entries(doc, "gauges")? {
            let n = match v {
                Json::Int(n) => n,
                _ => return Err(format!("gauge {k} is not an integer")),
            };
            snap.gauges.insert(k, n);
        }
        for (k, v) in entries(doc, "histograms")? {
            let h = Histogram::from_json(&v).map_err(|e| format!("histogram {k}: {e}"))?;
            snap.histograms.insert(k, h);
        }
        Ok(snap)
    }
}

/// Copy out every metric recorded so far.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let s = store().lock().unwrap();
    MetricsSnapshot {
        counters: s
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        gauges: s.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
        histograms: s
            .histograms
            .iter()
            .map(|(&k, h)| (k.to_string(), h.clone()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 2^k must be the lowest value of bucket k+1, never the top of
        // bucket k — the satellite's exactness requirement.
        for k in 0..63u32 {
            let v = 1u64 << k;
            let idx = Histogram::bucket_index(v);
            assert_eq!(idx, k as usize + 1, "2^{k}");
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(lo, v, "2^{k} opens its bucket");
            assert_eq!(hi, (v as u128) * 2);
            if v > 1 {
                // One less lands in the previous bucket.
                assert_eq!(Histogram::bucket_index(v - 1), k as usize);
            }
        }
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        assert_eq!(h.bucket_count(0), 1); // 0
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2, 3
        assert_eq!(h.bucket_count(3), 1); // 4
        assert_eq!(h.bucket_count(11), 1); // 1024
        assert_eq!(h.nonzero_buckets().len(), 5);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn quantile_of_point_mass_pins_the_value() {
        // Every observation is 1000: any quantile must land within the
        // one-value interpolation range [1000, 1001).
        let mut h = Histogram::default();
        for _ in 0..500 {
            h.record(1_000);
        }
        assert_eq!(h.quantile(0.0), Some(1_000.0));
        assert_eq!(h.quantile(1.0), Some(1_000.0));
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let v = h.quantile(q).unwrap();
            assert!((1_000.0..1_001.0).contains(&v), "q={q} -> {v}");
        }
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-3.0), Some(1_000.0));
        assert_eq!(h.quantile(7.0), Some(1_000.0));
    }

    #[test]
    fn quantile_of_uniform_distribution_interpolates_tightly() {
        // Uniform over [0, 65536): within a log2 bucket the distribution is
        // uniform, so linear interpolation should be accurate to well under
        // 1% — this is the accuracy bound the satellite pins.
        let mut h = Histogram::default();
        for v in 0..65_536u64 {
            h.record(v);
        }
        for (q, want) in [(0.10, 6_553.6), (0.50, 32_768.0), (0.90, 58_982.4)] {
            let got = h.quantile(q).unwrap();
            let err = (got - want).abs() / want;
            assert!(err < 0.01, "q={q}: got {got}, want {want} (err {err:.4})");
        }
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(65_535.0));
    }

    #[test]
    fn quantile_of_two_clusters_stays_in_the_right_bucket() {
        // Half the mass at 10, half at 1_000_000. Quantiles clearly inside
        // a cluster must land in that cluster's power-of-two bucket —
        // the log2 worst-case bound — and the low cluster's clamped bucket
        // is [10, 11), so those are near-exact.
        let mut h = Histogram::default();
        for _ in 0..500 {
            h.record(10);
            h.record(1_000_000);
        }
        // The low cluster's bucket is [8, 16), clamped below by min=10:
        // interpolation may land anywhere in [10, 16), never outside it.
        let low = h.quantile(0.25).unwrap();
        assert!((10.0..16.0).contains(&low), "q=0.25 -> {low}");
        let high = h.quantile(0.75).unwrap();
        // 1_000_000's bucket is [2^19, 2^20) = [524288, 1048576), clamped
        // above by max+1.
        assert!(
            (524_288.0..1_000_001.0).contains(&high),
            "q=0.75 -> {high}"
        );
        // The median sits at the cluster boundary; it must not wander past
        // the low cluster's bucket.
        let mid = h.quantile(0.5).unwrap();
        assert!(mid <= 16.0, "q=0.50 -> {mid}");
        assert_eq!(h.quantile(0.0), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(1_000_000.0));
    }

    #[test]
    fn histogram_json_roundtrips_exactly() {
        // Values up to 2^40: well past 32 bits, still inside minijson's
        // faithful i64 integer range (counts and sums past 2^63 would
        // round-trip through Float and lose exactness).
        let mut h = Histogram::default();
        for v in [0u64, 1, 7, 1_000, 1_000, 1 << 40] {
            h.record(v);
        }
        let doc = h.to_json();
        // Survives an actual wire trip through the parser.
        let parsed = Json::parse(&doc.dump()).unwrap();
        let back = Histogram::from_json(&parsed).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.quantile(0.5), h.quantile(0.5));

        // Empty histograms restore their min sentinel.
        let empty = Histogram::from_json(&Histogram::default().to_json()).unwrap();
        assert_eq!(empty, Histogram::default());
        assert_eq!(empty.min(), None);

        // Corrupt bucket indexes are an error, not a panic.
        let bad = Json::parse(
            r#"{"count":1,"sum":1,"min":1,"max":1,"buckets":[[99,1]]}"#,
        )
        .unwrap();
        assert!(Histogram::from_json(&bad).unwrap_err().contains("out of range"));
    }

    #[test]
    fn snapshot_json_roundtrips_and_tolerates_envelopes() {
        let mut h = Histogram::default();
        h.record(42);
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("jobs.done".into(), 17);
        snap.gauges.insert("queue.depth".into(), -2);
        snap.histograms.insert("e2e_us".into(), h);
        let doc = snap.to_json();
        let back = MetricsSnapshot::from_json(&Json::parse(&doc.dump()).unwrap()).unwrap();
        assert_eq!(back, snap);

        // A carrying document with envelope fields (the sortd metrics
        // response shape) decodes the same snapshot.
        let mut fields = vec![
            ("type".to_string(), Json::from("metrics")),
            ("uptime_ms".to_string(), Json::from(1234u64)),
        ];
        if let Json::Obj(inner) = doc {
            fields.extend(inner);
        }
        let envelope = Json::Obj(fields);
        assert_eq!(MetricsSnapshot::from_json(&envelope).unwrap(), snap);

        // Missing sections decode as empty rather than erroring.
        let empty = MetricsSnapshot::from_json(&Json::Obj(vec![])).unwrap();
        assert_eq!(empty, MetricsSnapshot::default());
    }

    #[test]
    fn store_roundtrip_and_diff() {
        let _l = test_lock();
        crate::recorder::enable(64);
        counter_add("bytes", 100);
        gauge_set("depth", 3);
        observe("lat_us", 8);
        let first = metrics_snapshot();
        counter_add("bytes", 50);
        gauge_add("depth", -1);
        observe("lat_us", 16);
        let second = metrics_snapshot();
        crate::recorder::disable();

        assert_eq!(first.counters["bytes"], 100);
        assert_eq!(second.counters["bytes"], 150);
        assert_eq!(second.gauges["depth"], 2);
        let d = second.diff(&first);
        assert_eq!(d.counters["bytes"], 50);
        assert_eq!(d.histograms["lat_us"].count(), 1);
        assert_eq!(d.histograms["lat_us"].bucket_count(5), 1); // 16 → [16,32)
    }

    #[test]
    fn disabled_metrics_are_noops() {
        let _l = test_lock();
        crate::recorder::disable();
        crate::recorder::reset();
        counter_add("bytes", 1);
        observe("lat", 1);
        gauge_set("g", 1);
        let s = metrics_snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
    }
}
