//! Metrics: counters, gauges and log-scale histograms.
//!
//! Like the span recorder, the metrics store is process-global and gated by
//! the same enabled flag, so instrumented sites are one relaxed load when no
//! observability was requested. Names are `&'static str` — the set of
//! metrics is fixed at compile time, per-entity detail (disk, peer, run)
//! belongs in span attributes, not metric names.
//!
//! Histograms use power-of-two buckets: bucket 0 holds exactly the value 0
//! and bucket *k* ≥ 1 holds `[2^(k−1), 2^k)`, so a boundary value `2^k` is
//! always the *lowest* value of bucket `k+1`. That gives a fixed 65-slot
//! footprint covering the full `u64` range — per-run sort latencies in
//! microseconds and per-frame exchange sizes in bytes both fit without
//! configuration.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::recorder::is_enabled;

/// Number of histogram buckets: the zero bucket plus one per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-footprint, log2-bucketed histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `64 − leading_zeros`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Half-open `[lo, hi)` range of bucket `i` (bucket 0 is `[0, 1)`).
    pub fn bucket_bounds(i: usize) -> (u64, u128) {
        assert!(i < HISTOGRAM_BUCKETS);
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), 1u128 << i)
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u128, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// This histogram minus an earlier one (per-bucket saturating).
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for i in 0..HISTOGRAM_BUCKETS {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        // min/max cannot be un-merged; keep the later window's extremes.
        out.min = if out.count > 0 { self.min } else { u64::MAX };
        out.max = if out.count > 0 { self.max } else { 0 };
        out
    }
}

#[derive(Default)]
struct Store {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

pub(crate) fn reset_store() {
    let mut s = store().lock().unwrap();
    *s = Store::default();
}

/// Add `delta` to the named monotonic counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    *store().lock().unwrap().counters.entry(name).or_insert(0) += delta;
}

/// Set the named gauge to `value`.
#[inline]
pub fn gauge_set(name: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    store().lock().unwrap().gauges.insert(name, value);
}

/// Adjust the named gauge by `delta` (e.g. queue depth up/down).
#[inline]
pub fn gauge_add(name: &'static str, delta: i64) {
    if !is_enabled() {
        return;
    }
    *store().lock().unwrap().gauges.entry(name).or_insert(0) += delta;
}

/// Record `value` in the named log-scale histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    store()
        .lock()
        .unwrap()
        .histograms
        .entry(name)
        .or_default()
        .record(value);
}

/// A copy of every metric at one moment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counters and histogram counts since `earlier`; gauges keep their
    /// current value (a gauge has no meaningful delta).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let out = match earlier.histograms.get(k) {
                    Some(prev) => h.diff(prev),
                    None => h.clone(),
                };
                (k.clone(), out)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}

/// Copy out every metric recorded so far.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let s = store().lock().unwrap();
    MetricsSnapshot {
        counters: s
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        gauges: s.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
        histograms: s
            .histograms
            .iter()
            .map(|(&k, h)| (k.to_string(), h.clone()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 2^k must be the lowest value of bucket k+1, never the top of
        // bucket k — the satellite's exactness requirement.
        for k in 0..63u32 {
            let v = 1u64 << k;
            let idx = Histogram::bucket_index(v);
            assert_eq!(idx, k as usize + 1, "2^{k}");
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(lo, v, "2^{k} opens its bucket");
            assert_eq!(hi, (v as u128) * 2);
            if v > 1 {
                // One less lands in the previous bucket.
                assert_eq!(Histogram::bucket_index(v - 1), k as usize);
            }
        }
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        assert_eq!(h.bucket_count(0), 1); // 0
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2, 3
        assert_eq!(h.bucket_count(3), 1); // 4
        assert_eq!(h.bucket_count(11), 1); // 1024
        assert_eq!(h.nonzero_buckets().len(), 5);
    }

    #[test]
    fn store_roundtrip_and_diff() {
        let _l = test_lock();
        crate::recorder::enable(64);
        counter_add("bytes", 100);
        gauge_set("depth", 3);
        observe("lat_us", 8);
        let first = metrics_snapshot();
        counter_add("bytes", 50);
        gauge_add("depth", -1);
        observe("lat_us", 16);
        let second = metrics_snapshot();
        crate::recorder::disable();

        assert_eq!(first.counters["bytes"], 100);
        assert_eq!(second.counters["bytes"], 150);
        assert_eq!(second.gauges["depth"], 2);
        let d = second.diff(&first);
        assert_eq!(d.counters["bytes"], 50);
        assert_eq!(d.histograms["lat_us"].count(), 1);
        assert_eq!(d.histograms["lat_us"].bucket_count(5), 1); // 16 → [16,32)
    }

    #[test]
    fn disabled_metrics_are_noops() {
        let _l = test_lock();
        crate::recorder::disable();
        crate::recorder::reset();
        counter_add("bytes", 1);
        observe("lat", 1);
        gauge_set("g", 1);
        let s = metrics_snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
    }
}
