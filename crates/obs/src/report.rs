//! The terminal "where the time goes" report (paper Figure 7).
//!
//! §7 of the paper decomposes one sort's elapsed time phase by phase to
//! show the CPU, not the disks, is the bottleneck. [`figure7`] derives the
//! same decomposition from recorded spans: per-phase busy totals (summed
//! across threads — on a multiprocessor a phase can accumulate more busy
//! time than the wall clock), each phase's share of elapsed, and the
//! overall *overlap* — how much phase work was hidden behind other phases
//! rather than extending the elapsed time.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::phase;
use crate::recorder::{EventKind, TraceSnapshot};

/// Summed span durations and span counts by name.
pub fn phase_totals(snap: &TraceSnapshot) -> BTreeMap<&'static str, (Duration, u64)> {
    let mut out: BTreeMap<&'static str, (Duration, u64)> = BTreeMap::new();
    for e in &snap.events {
        if let EventKind::Span { .. } = e.kind {
            let slot = out.entry(e.name).or_insert((Duration::ZERO, 0));
            slot.0 += e.duration();
            slot.1 += 1;
        }
    }
    out
}

/// The elapsed time the report normalizes against: the longest top-level
/// driver span if one exists, otherwise the snapshot's wall extent.
pub fn elapsed_of(snap: &TraceSnapshot) -> Duration {
    snap.events
        .iter()
        .filter(|e| phase::TOP_LEVEL.contains(&e.name))
        .map(|e| e.duration())
        .max()
        .unwrap_or_else(|| snap.extent())
}

/// Render the Figure 7 ASCII table from a trace snapshot.
///
/// Rows are the paper's phases in pipeline order; only phases that actually
/// recorded spans appear. The closing lines give elapsed, the phase sum,
/// and the computed overlap percentage (phase sum beyond elapsed, i.e. work
/// that ran concurrently with other phases).
pub fn figure7(snap: &TraceSnapshot) -> String {
    let totals = phase_totals(snap);
    let elapsed = elapsed_of(snap);
    let esecs = elapsed.as_secs_f64();

    let mut rows: Vec<(&str, Duration, u64)> = Vec::new();
    for &(name, label) in phase::FIGURE7_ROWS {
        if let Some(&(d, n)) = totals.get(name) {
            rows.push((label, d, n));
        }
    }

    let label_w = rows
        .iter()
        .map(|(l, _, _)| l.len())
        .chain(["phase sum".len()])
        .max()
        .unwrap_or(10);
    let mut out = String::new();
    out.push_str("== where the time goes (Figure 7) ==\n");
    out.push_str(&format!(
        "{:<label_w$}  {:>9}  {:>8}  {:>7}\n",
        "phase", "seconds", "% elaps", "spans"
    ));
    let mut busy = Duration::ZERO;
    for (label, d, n) in &rows {
        busy += *d;
        let pct = if esecs > 0.0 {
            d.as_secs_f64() / esecs * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "{label:<label_w$}  {:>9.3}  {:>7.1}%  {n:>7}\n",
            d.as_secs_f64(),
            pct,
        ));
    }
    let bsecs = busy.as_secs_f64();
    out.push_str(&format!(
        "{:<label_w$}  {esecs:>9.3}  {:>7.1}%\n",
        "elapsed", 100.0
    ));
    out.push_str(&format!(
        "{:<label_w$}  {bsecs:>9.3}  {:>7.1}%\n",
        "phase sum",
        if esecs > 0.0 {
            bsecs / esecs * 100.0
        } else {
            0.0
        }
    ));
    let overlap = if esecs > 0.0 && bsecs > esecs {
        (bsecs - esecs) / esecs * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "overlap: {overlap:.1}% of elapsed was phase work hidden behind other phases\n"
    ));
    if snap.dropped > 0 {
        out.push_str(&format!(
            "(ring buffer dropped {} oldest events; totals undercount)\n",
            snap.dropped
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Event;

    fn span(name: &'static str, start_ns: u64, dur_ns: u64, tid: u32) -> Event {
        Event {
            name,
            kind: EventKind::Span { dur_ns },
            start_ns,
            tid,
            track: None,
            attrs: vec![],
        }
    }

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            events: vec![
                span(phase::ONE_PASS, 0, 1_000_000_000, 1),
                span(phase::READ, 0, 200_000_000, 1),
                span(phase::SORT, 100_000_000, 600_000_000, 2),
                span(phase::SORT, 100_000_000, 500_000_000, 3),
                span(phase::MERGE, 700_000_000, 100_000_000, 1),
                span(phase::GATHER, 750_000_000, 150_000_000, 2),
                span(phase::WRITE, 800_000_000, 200_000_000, 1),
            ],
            dropped: 0,
            threads: vec![],
        }
    }

    #[test]
    fn totals_sum_across_threads() {
        let t = phase_totals(&sample());
        assert_eq!(t[phase::SORT], (Duration::from_millis(1100), 2));
        assert_eq!(t[phase::READ].1, 1);
    }

    #[test]
    fn elapsed_prefers_top_level_span() {
        assert_eq!(elapsed_of(&sample()), Duration::from_secs(1));
        let mut no_top = sample();
        no_top.events.remove(0);
        // Falls back to wall extent: first start 0 → last end 1.0 s.
        assert_eq!(elapsed_of(&no_top), Duration::from_secs(1));
    }

    #[test]
    fn figure7_reports_phases_and_overlap() {
        let text = figure7(&sample());
        assert!(text.contains("sort"), "{text}");
        assert!(text.contains("read wait"), "{text}");
        assert!(text.contains("elapsed"), "{text}");
        // busy = 0.2+1.1+0.1+0.15+0.2 = 1.75 s over 1.0 s elapsed → 75%.
        assert!(text.contains("overlap: 75.0%"), "{text}");
    }
}
