//! The span recorder: a process-global, thread-safe event sink.
//!
//! Instrumentation sites call [`span`] (RAII interval), [`instant`] (point
//! event) or the metrics helpers; everything funnels into one bounded ring
//! buffer behind a mutex. The recorder is **disabled by default**: every
//! entry point first does a single relaxed atomic load and returns a dead
//! guard, so instrumented hot paths cost ~1 ns when no trace is requested.
//!
//! Events carry a monotonic timestamp (nanoseconds since the recorder
//! epoch), a small per-thread id, an optional *track* label (netsort tags
//! worker threads `node0`, `node1`, … so one process can export one trace
//! per node), and a handful of typed attributes. The ring buffer keeps the
//! most recent `capacity` events and counts what it had to drop, so a 10M
//! record sort cannot OOM the recorder no matter how long it runs.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default ring capacity: enough for coarse (batch-granular) spans of a
/// multi-gigabyte sort at well under 1 GB of recorder memory.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// One recorded attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (byte counts, ids, offsets).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Free-form text (disk names, peer addresses).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// What kind of event was recorded.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A named interval with a duration.
    Span {
        /// Interval length in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker.
    Instant,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Site name (a phase constant from [`crate::phase`] or a layer name).
    pub name: &'static str,
    /// Span-with-duration or instant marker.
    pub kind: EventKind,
    /// Start time in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Small stable id of the recording thread.
    pub tid: u32,
    /// Logical track label (e.g. `node2` for a netsort worker and the
    /// pool threads it spawned); `None` for the main/untracked threads.
    pub track: Option<Arc<str>>,
    /// Typed key/value attributes attached at the call site.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Event {
    /// Span duration, zero for instants.
    pub fn duration(&self) -> Duration {
        match self.kind {
            EventKind::Span { dur_ns } => Duration::from_nanos(dur_ns),
            EventKind::Instant => Duration::ZERO,
        }
    }

    /// End time in nanoseconds since the epoch (== start for instants).
    pub fn end_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { dur_ns } => self.start_ns + dur_ns,
            EventKind::Instant => self.start_ns,
        }
    }
}

/// A thread the recorder has seen, for trace metadata.
#[derive(Clone, Debug)]
pub struct ThreadInfo {
    /// The small id events carry.
    pub tid: u32,
    /// The OS thread name at registration time.
    pub name: String,
}

/// A copy of the recorder state at one moment.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Recorded events, oldest first.
    pub events: Vec<Event>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
    /// Threads that recorded at least one event, ever.
    pub threads: Vec<ThreadInfo>,
}

impl TraceSnapshot {
    /// The subset of events on `track` (`None` keeps untracked events),
    /// with the thread table restricted to threads that still appear.
    pub fn filter_track(&self, track: Option<&str>) -> TraceSnapshot {
        let events: Vec<Event> = self
            .events
            .iter()
            .filter(|e| e.track.as_deref() == track)
            .cloned()
            .collect();
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        TraceSnapshot {
            events,
            dropped: self.dropped,
            threads: self
                .threads
                .iter()
                .filter(|t| tids.contains(&t.tid))
                .cloned()
                .collect(),
        }
    }

    /// Distinct track labels present, sorted (`None` excluded).
    pub fn tracks(&self) -> Vec<String> {
        let set: std::collections::BTreeSet<&str> = self
            .events
            .iter()
            .filter_map(|e| e.track.as_deref())
            .collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// Wall-clock extent of the snapshot: `last end − first start`.
    pub fn extent(&self) -> Duration {
        let lo = self.events.iter().map(|e| e.start_ns).min().unwrap_or(0);
        let hi = self.events.iter().map(Event::end_ns).max().unwrap_or(0);
        Duration::from_nanos(hi.saturating_sub(lo))
    }
}

struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

fn threads() -> &'static Mutex<BTreeMap<u32, String>> {
    static THREADS: OnceLock<Mutex<BTreeMap<u32, String>>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
    static TRACK: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Whether the recorder is currently collecting events.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on with the given ring capacity, clearing prior events
/// and metrics. Fixes the epoch on first call.
pub fn enable(capacity: usize) {
    assert!(capacity > 0, "recorder capacity must be positive");
    let _ = epoch();
    {
        let mut r = ring().lock().unwrap();
        r.events.clear();
        r.capacity = capacity;
        r.dropped = 0;
    }
    crate::metrics::reset_store();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop recording (events already collected are kept for [`snapshot`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clear collected events and metrics without changing the enabled state.
pub fn reset() {
    let mut r = ring().lock().unwrap();
    r.events.clear();
    r.dropped = 0;
    drop(r);
    crate::metrics::reset_store();
}

/// Copy out everything recorded so far.
pub fn snapshot() -> TraceSnapshot {
    let r = ring().lock().unwrap();
    let events: Vec<Event> = r.events.iter().cloned().collect();
    let dropped = r.dropped;
    drop(r);
    let threads = threads()
        .lock()
        .unwrap()
        .iter()
        .map(|(&tid, name)| ThreadInfo {
            tid,
            name: name.clone(),
        })
        .collect();
    TraceSnapshot {
        events,
        dropped,
        threads,
    }
}

fn current_tid() -> u32 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
            let name = std::thread::current()
                .name()
                .unwrap_or("unnamed")
                .to_string();
            threads().lock().unwrap().insert(id, name);
        }
        id
    })
}

/// Label this thread's events with `track` (netsort uses `node<K>`).
pub fn set_track(track: &str) {
    let arc: Arc<str> = Arc::from(track);
    TRACK.with(|t| *t.borrow_mut() = Some(arc));
}

/// This thread's track label, for handing to threads it spawns.
pub fn current_track() -> Option<Arc<str>> {
    TRACK.with(|t| t.borrow().clone())
}

/// Adopt a track label captured on another thread via [`current_track`]
/// (worker pools inherit the spawning thread's track this way).
pub fn adopt_track(track: Option<Arc<str>>) {
    TRACK.with(|t| *t.borrow_mut() = track);
}

/// RAII guard for a named interval. Created by [`span`]; the interval is
/// recorded when the guard drops. Dead (no-op) when recording is off.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanGuard {
    /// Attach an attribute (builder style): `span("io.read").with("bytes", n)`.
    pub fn with(mut self, key: &'static str, value: impl Into<AttrValue>) -> Self {
        if self.start.is_some() {
            self.attrs.push((key, value.into()));
        }
        self
    }

    /// Attach an attribute after creation (e.g. a result size known late).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.start.is_some() {
            self.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let start_ns = start.saturating_duration_since(epoch()).as_nanos() as u64;
        let event = Event {
            name: self.name,
            kind: EventKind::Span { dur_ns },
            start_ns,
            tid: current_tid(),
            track: current_track(),
            attrs: std::mem::take(&mut self.attrs),
        };
        ring().lock().unwrap().push(event);
    }
}

/// Open a named interval; it records when the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            name,
            start: None,
            attrs: Vec::new(),
        };
    }
    SpanGuard {
        name,
        start: Some(Instant::now()),
        attrs: Vec::new(),
    }
}

/// Record a point-in-time marker with attributes.
pub fn instant(name: &'static str, attrs: Vec<(&'static str, AttrValue)>) {
    if !is_enabled() {
        return;
    }
    let start_ns = Instant::now().saturating_duration_since(epoch()).as_nanos() as u64;
    let event = Event {
        name,
        kind: EventKind::Instant,
        start_ns,
        tid: current_tid(),
        track: current_track(),
        attrs,
    };
    ring().lock().unwrap().push(event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn disabled_recorder_records_nothing() {
        let _l = test_lock();
        disable();
        reset();
        {
            let _g = span("sort").with("run", 1u64);
            instant("marker", vec![]);
        }
        assert!(snapshot().events.is_empty());
    }

    #[test]
    fn spans_carry_name_duration_and_attrs() {
        let _l = test_lock();
        enable(1024);
        {
            let mut g = span("sort").with("run", 7u64);
            g.attr("bytes", 100u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        instant("mark", vec![("k", AttrValue::from("v"))]);
        disable();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 2);
        let s = &snap.events[0];
        assert_eq!(s.name, "sort");
        assert!(s.duration() >= Duration::from_millis(1));
        assert_eq!(s.attrs[0], ("run", AttrValue::U64(7)));
        assert_eq!(s.attrs[1], ("bytes", AttrValue::U64(100)));
        assert_eq!(snap.events[1].kind, EventKind::Instant);
        assert!(!snap.threads.is_empty());
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let _l = test_lock();
        enable(8);
        for _ in 0..20 {
            let _g = span("x");
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 8);
        assert_eq!(snap.dropped, 12);
    }

    #[test]
    fn track_filtering_splits_events() {
        let _l = test_lock();
        enable(1024);
        let t = std::thread::spawn(|| {
            set_track("nodeA");
            let _g = span("exchange");
        });
        t.join().unwrap();
        {
            let _g = span("sort");
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.tracks(), vec!["nodeA".to_string()]);
        assert_eq!(snap.filter_track(Some("nodeA")).events.len(), 1);
        let untracked = snap.filter_track(None);
        assert_eq!(untracked.events.len(), 1);
        assert_eq!(untracked.events[0].name, "sort");
    }
}
