//! Zero-dependency tracing + metrics for the AlphaSort workspace.
//!
//! The paper's core argument is an accounting argument: §7 walks one sort
//! through phase by phase and Figure 7 decomposes elapsed time to show the
//! CPU, not the disks, is the bottleneck. `SortStats` end totals cannot
//! show *overlap* — whether writes actually hid behind merging — or where
//! waits concentrate across runs, threads and nodes. This crate supplies
//! the missing timeline, std-only like the rest of the workspace:
//!
//! * **Spans** — [`span`] returns a cheap RAII guard recording a named,
//!   thread-tagged, attribute-carrying interval into a bounded ring buffer
//!   ([`recorder`]); [`instant`] records point markers. Everything is a
//!   no-op (one relaxed atomic load) until [`enable`] is called.
//! * **Metrics** — counters, gauges and log2-bucketed histograms keyed by
//!   static names ([`metrics`]), with snapshot and diff support.
//! * **Exporters** — Chrome `trace_event` JSON loadable in
//!   `chrome://tracing`/Perfetto and a metrics JSON document ([`export`]),
//!   plus the terminal Figure 7 report ([`report`]).
//!
//! The canonical span names every layer records under live in [`phase`];
//! `SortStats` can be derived back from a snapshot by summing spans per
//! phase, which is what keeps the CLI's Figure 7 table and the legacy
//! counters in agreement.
//!
//! ```
//! alphasort_obs::enable(4096);
//! {
//!     let _sort = alphasort_obs::span(alphasort_obs::phase::SORT).with("run", 0u64);
//!     alphasort_obs::metrics::observe("sort.run_us", 125);
//! }
//! alphasort_obs::disable();
//! let snap = alphasort_obs::snapshot();
//! assert_eq!(snap.events.len(), 1);
//! let json = alphasort_obs::export::chrome_trace(&snap).dump();
//! assert!(json.contains("\"traceEvents\""));
//! ```

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod report;

pub use metrics::{metrics_snapshot, Histogram, MetricsSnapshot};
pub use recorder::{
    adopt_track, current_track, disable, enable, instant, is_enabled, reset, set_track, snapshot,
    span, AttrValue, Event, EventKind, SpanGuard, ThreadInfo, TraceSnapshot, DEFAULT_CAPACITY,
};
pub use report::{elapsed_of, figure7, phase_totals};

/// Canonical span names, shared by every instrumented layer.
///
/// The pipeline phases (the Figure 7 rows) are deliberately the same small
/// set `SortStats` tracks, so a trace can be folded back into stats. Layer
/// names below them (`io.*`, `file.*`, `stripe.*`, `net.*`) nest inside the
/// phases and carry the per-request detail.
pub mod phase {
    /// Whole one-pass sort (top-level driver span).
    pub const ONE_PASS: &str = "one_pass";
    /// Whole two-pass sort (top-level driver span).
    pub const TWO_PASS: &str = "two_pass";
    /// Whole distributed-sort worker (top-level netsort span).
    pub const NET_WORKER: &str = "net.worker";
    /// Blocked reading input from the source.
    pub const READ: &str = "read";
    /// QuickSort run formation (one span per run, often on pool threads).
    pub const SORT: &str = "sort";
    /// Tournament merge of run pointers / run streams.
    pub const MERGE: &str = "merge";
    /// Gathering records into output buffers (one span per batch).
    pub const GATHER: &str = "gather";
    /// Blocked writing output to the sink.
    pub const WRITE: &str = "write";
    /// Two-pass only: writing and reading back scratch runs.
    pub const SPILL: &str = "spill";
    /// Distributed only: blocked on the record exchange.
    pub const EXCHANGE: &str = "exchange";

    /// netsort: sampling keys + waiting for the coordinator's splitters.
    pub const NET_SAMPLE: &str = "net.sample";
    /// netsort: one batched `Data` frame sent to a peer.
    pub const NET_SEND: &str = "net.send";
    /// netsort: one frame received from a peer.
    pub const NET_RECV: &str = "net.recv";
    /// netsort: the local AlphaSort pipeline over owned records.
    pub const NET_LOCAL: &str = "net.local";

    /// sortd: one job end to end (admission wait + execution), recorded on
    /// the job's own `job-<id>` track.
    pub const SORTD_JOB: &str = "sortd.job";
    /// sortd: time a job spent queued behind the resource pool.
    pub const SORTD_QUEUE: &str = "sortd.queue";
    /// sortd: the sort itself, running under the job's budget.
    pub const SORTD_EXEC: &str = "sortd.exec";

    /// iosim: one read serviced by a disk thread.
    pub const IO_READ: &str = "io.read";
    /// iosim: one write serviced by a disk thread.
    pub const IO_WRITE: &str = "io.write";
    /// iosim: one flush serviced by a disk thread.
    pub const IO_SYNC: &str = "io.sync";
    /// Host file system: one chunk read.
    pub const FILE_READ: &str = "file.read";
    /// Host file system: one buffered write.
    pub const FILE_WRITE: &str = "file.write";
    /// stripefs: waiting for a read-ahead stride to land.
    pub const STRIPE_READ: &str = "stripe.read";
    /// stripefs: waiting for write-behind back-pressure to clear.
    pub const STRIPE_WRITE: &str = "stripe.write";

    /// Spans whose duration is a whole sort (Figure 7's denominator).
    pub const TOP_LEVEL: &[&str] = &[ONE_PASS, TWO_PASS, NET_WORKER];

    /// Figure 7 rows in pipeline order, with display labels.
    pub const FIGURE7_ROWS: &[(&str, &str)] = &[
        (READ, "read wait"),
        (SORT, "sort"),
        (SPILL, "spill"),
        (EXCHANGE, "exchange wait"),
        (MERGE, "merge"),
        (GATHER, "gather"),
        (WRITE, "write wait"),
    ];
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The recorder is process-global; unit tests that flip it on and off
    // serialize on this lock so they cannot corrupt each other's state.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
