//! `tracecheck` — validate exported observability artifacts.
//!
//! CI smoke-tests the exporters with this: after a `sortcli --trace-out
//! --metrics-out` run it proves both documents parse, the trace is a
//! well-formed Chrome `trace_event` stream, and the expected phase names
//! actually appear — so the exporters can never silently rot.
//!
//! ```text
//! tracecheck <trace.json> <metrics.json> [--expect name,name,...]
//! ```

use std::collections::BTreeSet;
use std::process::ExitCode;

use alphasort_minijson::Json;

fn fail(msg: &str) -> ExitCode {
    eprintln!("tracecheck: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut expect: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--expect" => match it.next() {
                Some(v) => expect.extend(v.split(',').map(str::to_string)),
                None => return fail("missing value for --expect"),
            },
            _ => paths.push(a),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: tracecheck <trace.json> <metrics.json> [--expect name,name,...]");
        return ExitCode::from(2);
    }

    // ---- trace --------------------------------------------------------------
    let text = match std::fs::read_to_string(&paths[0]) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {}: {e}", paths[0])),
    };
    let trace = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => return fail(&format!("{} is not valid JSON: {e}", paths[0])),
    };
    let events = match trace.field_arr("traceEvents") {
        Ok(a) => a,
        Err(e) => return fail(&format!("{}: {e}", paths[0])),
    };
    let mut names: BTreeSet<&str> = BTreeSet::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let name = match e.field_str("name") {
            Ok(n) => n,
            Err(_) => return fail(&format!("trace event {i} has no name")),
        };
        let ph = match e.field_str("ph") {
            Ok(p) => p,
            Err(_) => return fail(&format!("trace event {i} ({name}) has no ph")),
        };
        match ph {
            "X" => {
                if e.field_f64("ts").is_err() || e.field_f64("dur").is_err() {
                    return fail(&format!("span {i} ({name}) lacks numeric ts/dur"));
                }
                if e.field_u64("pid").is_err() || e.field_u64("tid").is_err() {
                    return fail(&format!("span {i} ({name}) lacks pid/tid"));
                }
                names.insert(name);
                spans += 1;
            }
            "i" => {
                if e.field_f64("ts").is_err() {
                    return fail(&format!("instant {i} ({name}) lacks ts"));
                }
                names.insert(name);
            }
            "M" => {}
            other => return fail(&format!("event {i} ({name}) has unknown ph {other:?}")),
        }
    }
    if spans == 0 {
        return fail("trace contains no spans");
    }
    let missing: Vec<&String> = expect
        .iter()
        .filter(|n| !names.contains(n.as_str()))
        .collect();
    if !missing.is_empty() {
        return fail(&format!(
            "expected phases missing from trace: {missing:?} (present: {names:?})"
        ));
    }

    // ---- metrics ------------------------------------------------------------
    let text = match std::fs::read_to_string(&paths[1]) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {}: {e}", paths[1])),
    };
    let metrics = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => return fail(&format!("{} is not valid JSON: {e}", paths[1])),
    };
    for section in ["counters", "gauges", "histograms"] {
        match metrics.get(section) {
            Some(Json::Obj(_)) => {}
            _ => return fail(&format!("{}: missing object {section:?}", paths[1])),
        }
    }
    let counters = match metrics.get("counters") {
        Some(Json::Obj(fields)) => fields.len(),
        _ => 0,
    };

    println!(
        "tracecheck: ok — {spans} spans, {} distinct names, {counters} counters",
        names.len()
    );
    ExitCode::SUCCESS
}
