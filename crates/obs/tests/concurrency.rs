//! Integration tests for the obs crate's hard guarantees: concurrent span
//! recording from many threads preserves per-thread nesting and loses
//! nothing while under the ring-buffer cap, and the exported Chrome trace
//! round-trips through the workspace JSON parser.
//!
//! The recorder is process-global, so this file keeps everything in one
//! `#[test]` (cargo runs separate integration-test *files* in one process
//! but separate functions on separate threads).

use std::collections::BTreeMap;
use std::time::Duration;

use alphasort_minijson::Json;
use alphasort_obs as obs;
use obs::EventKind;

const THREADS: usize = 6;
const SPANS_PER_THREAD: usize = 200;

fn record_nested(depth_left: usize, idx: usize) {
    let _g = obs::span("outer").with("idx", idx as u64);
    if depth_left > 0 {
        let _inner = obs::span("inner").with("idx", idx as u64);
        record_nested(depth_left - 1, idx);
        std::hint::black_box(());
    }
}

#[test]
fn concurrent_recording_preserves_nesting_and_loses_nothing() {
    obs::enable(1 << 20); // far above what the test records: nothing may drop
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                obs::set_track(if t % 2 == 0 { "even" } else { "odd" });
                for i in 0..SPANS_PER_THREAD {
                    record_nested(2, t * SPANS_PER_THREAD + i);
                }
            });
        }
    });
    obs::disable();
    let snap = obs::snapshot();

    // --- nothing lost under the cap -----------------------------------------
    assert_eq!(snap.dropped, 0);
    // Each call records 1 "outer" + 2 "inner" + 2 nested "outer" spans:
    // record_nested(2) = outer + inner + record_nested(1)
    //                  = outer + inner + outer + inner + record_nested(0)
    //                  = 3 outer + 2 inner.
    let expected = THREADS * SPANS_PER_THREAD * 5;
    assert_eq!(snap.events.len(), expected);

    // --- per-thread nesting is preserved ------------------------------------
    // On any one thread, RAII guards guarantee spans either nest or are
    // disjoint; verify from timestamps that no two spans partially overlap.
    let mut by_tid: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    for e in &snap.events {
        if let EventKind::Span { .. } = e.kind {
            by_tid
                .entry(e.tid)
                .or_default()
                .push((e.start_ns, e.end_ns()));
        }
    }
    assert!(by_tid.len() >= 4, "expected ≥4 recording threads");
    for (tid, spans) in &by_tid {
        for (i, &(s1, e1)) in spans.iter().enumerate() {
            for &(s2, e2) in &spans[i + 1..] {
                let disjoint = e1 <= s2 || e2 <= s1;
                let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
                assert!(
                    disjoint || nested,
                    "thread {tid}: spans [{s1},{e1}) and [{s2},{e2}) partially overlap"
                );
            }
        }
    }

    // --- tracks split the threads -------------------------------------------
    assert_eq!(snap.tracks(), vec!["even".to_string(), "odd".to_string()]);
    let even = snap.filter_track(Some("even"));
    let odd = snap.filter_track(Some("odd"));
    assert_eq!(even.events.len() + odd.events.len(), expected);

    // --- the exported Chrome trace round-trips through minijson -------------
    let doc = obs::export::chrome_trace(&snap);
    let parsed = Json::parse(&doc.dump()).expect("exported trace parses");
    assert_eq!(parsed, doc, "dump → parse must be lossless");
    let events = parsed.field_arr("traceEvents").unwrap();
    let span_count = events
        .iter()
        .filter(|e| e.field_str("ph") == Ok("X"))
        .count();
    assert_eq!(span_count, expected);

    // Phase totals derived from the trace match a direct fold.
    let totals = obs::phase_totals(&snap);
    let outer = totals["outer"];
    assert_eq!(outer.1, (THREADS * SPANS_PER_THREAD * 3) as u64);
    assert!(outer.0 > Duration::ZERO);

    // --- overflow behavior: the ring keeps the newest, counts the rest ------
    obs::enable(64);
    for i in 0..100u64 {
        let _g = obs::span("x").with("i", i);
    }
    obs::disable();
    let small = obs::snapshot();
    assert_eq!(small.events.len(), 64);
    assert_eq!(small.dropped, 36);
    // The survivors are the newest 36..100.
    let first_kept = match &small.events[0].attrs[0].1 {
        obs::AttrValue::U64(v) => *v,
        other => panic!("unexpected attr {other:?}"),
    };
    assert_eq!(first_kept, 36);
}
