//! Stability: with any detached representation, the full one-pass sort
//! keeps equal-keyed records in input order (run-local index tie-break +
//! the merge's run-number tie-break). §4 credits replacement-selection with
//! stability; this shows the QuickSort pipeline matches it — and that the
//! variable-length pipeline matches it too, across serial, partitioned,
//! and crash-resumed merges.

use alphasort_core::driver::one_pass;
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::runform::Representation;
use alphasort_core::varlen::{two_pass_var, MemVarScratch};
use alphasort_core::{RecordLayout, SortConfig};
use alphasort_dmgen::{
    generate, generate_varlen, records_of, var_records_of, GenConfig, KeyDistribution, SplitMix64,
    TextCorpus, VarGenConfig,
};

fn assert_stable(rep: Representation, records: u64, run_records: usize, cardinality: u32) {
    let (data, _) = generate(GenConfig {
        records,
        seed: 0x57AB,
        dist: KeyDistribution::DupHeavy { cardinality },
    });
    let mut source = MemSource::new(data, 4_096);
    let mut sink = MemSink::new();
    let cfg = SortConfig {
        run_records,
        representation: rep,
        gather_batch: 128,
        workers: 2,
        ..Default::default()
    };
    one_pass(&mut source, &mut sink, &cfg).unwrap();
    let out = records_of(sink.data());
    for w in out.windows(2) {
        assert!(w[0].key <= w[1].key);
        if w[0].key == w[1].key {
            assert!(
                w[0].seq() < w[1].seq(),
                "equal keys out of arrival order: {} then {}",
                w[0].seq(),
                w[1].seq()
            );
        }
    }
}

#[test]
fn key_prefix_pipeline_is_stable() {
    assert_stable(Representation::KeyPrefix, 3_000, 250, 7);
}

#[test]
fn pointer_pipeline_is_stable() {
    assert_stable(Representation::Pointer, 2_000, 111, 3);
}

#[test]
fn key_pipeline_is_stable() {
    assert_stable(Representation::Key, 2_000, 400, 5);
}

#[test]
fn codeword_pipeline_is_stable() {
    assert_stable(Representation::Codeword, 2_000, 333, 4);
}

// ---------------------------------------------------------------------------
// Variable-length layout: equal string keys stay in arrival order.
// ---------------------------------------------------------------------------

/// Every record of `out` must carry a key ≤ its successor's, and equal keys
/// must keep ascending sequence numbers (arrival order).
fn assert_var_stable(out: &[u8], what: &str) {
    let recs = var_records_of(out).expect("output parses");
    for w in recs.windows(2) {
        assert!(w[0].key() <= w[1].key(), "{what}: keys out of order");
        if w[0].key() == w[1].key() {
            assert!(
                w[0].seq().unwrap() < w[1].seq().unwrap(),
                "{what}: equal keys out of arrival order: {:?} then {:?}",
                w[0].seq(),
                w[1].seq()
            );
        }
    }
}

/// A var-len scratch with the middle run pre-formed (stable-sorted), as a
/// crash-resumed pass 2 would see it.
fn resumed_var_scratch(data: &[u8], run_records: usize) -> MemVarScratch {
    let recs = var_records_of(data).expect("corpus parses");
    let window = &recs[run_records..2 * run_records];
    let mut idx: Vec<usize> = (0..window.len()).collect();
    idx.sort_by(|&a, &b| window[a].key().cmp(window[b].key()).then(a.cmp(&b)));
    let mut bytes = Vec::new();
    for i in idx {
        bytes.extend_from_slice(window[i].frame());
    }
    MemVarScratch::with_recovered(vec![(run_records as u64, bytes)]).unwrap()
}

/// Duplicate-heavy string corpora through one-pass serial, one-pass
/// partitioned (1/2/4/8 ranges), and two-pass resumed merges: arrival order
/// of equal keys survives every merge topology.
#[test]
fn varlen_pipeline_is_stable() {
    for corpus in [
        TextCorpus::EmptyKey,
        TextCorpus::AllEqualKey { key_len: 16 },
        TextCorpus::ZipfianWords { max_words: 2 },
    ] {
        let data = generate_varlen(VarGenConfig {
            records: 1_200,
            seed: 0x57A8,
            corpus,
        });
        let run_records = 170;
        let base = SortConfig {
            run_records,
            gather_batch: 96,
            workers: 2,
            layout: RecordLayout::VarLen,
            ..Default::default()
        };
        let name = corpus.name();

        // Serial merge.
        let mut source = MemSource::new(data.clone(), 1_003);
        let mut sink = MemSink::new();
        one_pass(&mut source, &mut sink, &base).unwrap();
        assert_var_stable(sink.data(), &format!("{name} serial"));

        for p in [1usize, 2, 4, 8] {
            // Partitioned merge at every worker count.
            let cfg = SortConfig {
                merge_workers: p,
                ..base.clone()
            };
            let mut source = MemSource::new(data.clone(), 1_003);
            let mut sink = MemSink::new();
            one_pass(&mut source, &mut sink, &cfg).unwrap();
            assert_var_stable(sink.data(), &format!("{name} P={p}"));

            // Resumed two-pass: the recovered middle run merges back into
            // arrival order even though it was formed "before the crash".
            let mut source = MemSource::new(data.clone(), 1_003);
            let mut sink = MemSink::new();
            let mut scratch = resumed_var_scratch(&data, run_records);
            two_pass_var(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
            assert_var_stable(sink.data(), &format!("{name} resumed P={p}"));
        }

        // Resumed two-pass with the serial merge.
        let mut source = MemSource::new(data.clone(), 1_003);
        let mut sink = MemSink::new();
        let mut scratch = resumed_var_scratch(&data, run_records);
        two_pass_var(&mut source, &mut sink, &mut scratch, &base).unwrap();
        assert_var_stable(sink.data(), &format!("{name} resumed serial"));
    }
}

/// Stability holds across arbitrary run sizes and key cardinalities for
/// the stable representations.
#[test]
fn stability_holds_for_arbitrary_configs() {
    const STABLE_REPS: [Representation; 4] = [
        Representation::Pointer,
        Representation::Key,
        Representation::KeyPrefix,
        Representation::Codeword,
    ];
    let mut r = SplitMix64::new(0xD1);
    for _ in 0..32 {
        let records = 10 + r.next_below(790);
        let run_records = 1 + r.next_below(299) as usize;
        let cardinality = 1 + r.next_below(9) as u32;
        let rep = STABLE_REPS[r.next_below(4) as usize];
        assert_stable(rep, records, run_records, cardinality);
    }
}
