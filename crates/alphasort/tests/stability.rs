//! Stability: with any detached representation, the full one-pass sort
//! keeps equal-keyed records in input order (run-local index tie-break +
//! the merge's run-number tie-break). §4 credits replacement-selection with
//! stability; this shows the QuickSort pipeline matches it.

use alphasort_core::driver::one_pass;
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::runform::Representation;
use alphasort_core::SortConfig;
use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution, SplitMix64};

fn assert_stable(rep: Representation, records: u64, run_records: usize, cardinality: u32) {
    let (data, _) = generate(GenConfig {
        records,
        seed: 0x57AB,
        dist: KeyDistribution::DupHeavy { cardinality },
    });
    let mut source = MemSource::new(data, 4_096);
    let mut sink = MemSink::new();
    let cfg = SortConfig {
        run_records,
        representation: rep,
        gather_batch: 128,
        workers: 2,
        ..Default::default()
    };
    one_pass(&mut source, &mut sink, &cfg).unwrap();
    let out = records_of(sink.data());
    for w in out.windows(2) {
        assert!(w[0].key <= w[1].key);
        if w[0].key == w[1].key {
            assert!(
                w[0].seq() < w[1].seq(),
                "equal keys out of arrival order: {} then {}",
                w[0].seq(),
                w[1].seq()
            );
        }
    }
}

#[test]
fn key_prefix_pipeline_is_stable() {
    assert_stable(Representation::KeyPrefix, 3_000, 250, 7);
}

#[test]
fn pointer_pipeline_is_stable() {
    assert_stable(Representation::Pointer, 2_000, 111, 3);
}

#[test]
fn key_pipeline_is_stable() {
    assert_stable(Representation::Key, 2_000, 400, 5);
}

#[test]
fn codeword_pipeline_is_stable() {
    assert_stable(Representation::Codeword, 2_000, 333, 4);
}

/// Stability holds across arbitrary run sizes and key cardinalities for
/// the stable representations.
#[test]
fn stability_holds_for_arbitrary_configs() {
    const STABLE_REPS: [Representation; 4] = [
        Representation::Pointer,
        Representation::Key,
        Representation::KeyPrefix,
        Representation::Codeword,
    ];
    let mut r = SplitMix64::new(0xD1);
    for _ in 0..32 {
        let records = 10 + r.next_below(790);
        let run_records = 1 + r.next_below(299) as usize;
        let cardinality = 1 + r.next_below(9) as u32;
        let rep = STABLE_REPS[r.next_below(4) as usize];
        assert_stable(rep, records, run_records, cardinality);
    }
}
