//! Differential sort oracle: every driver configuration must produce
//! **byte-identical** output for the same input.
//!
//! The ground truth is Rust's stable slice sort by full key. Because every
//! dmgen record embeds a unique sequence number in its payload, the stable
//! sort's output is *unique*: any two correct stable sorts agree on every
//! byte. Each case below therefore checks the shared-nothing baseline
//! (§2's partitioned sort), the one-pass AlphaSort pipeline (serial and
//! partitioned merge), and the two-pass driver (serial, partitioned,
//! cascade, and crash-resumed) against the same reference bytes — a
//! divergence anywhere, including equal-key order on dup-heavy inputs,
//! fails with the first differing record.
//!
//! The partitioned-merge worker counts default to 1, 2, 4 and 8 and can be
//! pinned from the outside (CI's merge matrix) via `ORACLE_MERGE_WORKERS`,
//! a comma-separated list. The hot-path kernel variant defaults to the
//! scalar oracle and is pinned the same way (CI's kernel matrix) via
//! `ORACLE_KERNEL` — every registered kernel must pass the whole oracle
//! unchanged, because kernel choice is a pure CPU-time decision.

use alphasort_core::baseline::{partition_sort, PartitionSortConfig};
use alphasort_core::driver::{one_pass, two_pass, MemScratch, ScratchStore};
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::varlen::{partition_sort_var, sort_var_bytes, two_pass_var, MemVarScratch};
use alphasort_core::{Kernel, RecordLayout, SortConfig};
use alphasort_dmgen::{
    generate, generate_varlen, records_of, records_of_mut, var_records_of, GenConfig,
    KeyDistribution, TextCorpus, VarGenConfig, RECORD_LEN,
};

/// Ground truth: stable sort by full key, concatenated back to bytes.
fn stable_reference(data: &[u8]) -> Vec<u8> {
    let mut recs = records_of(data).to_vec();
    recs.sort_by_key(|r| r.key); // slice::sort_by_key is stable
    let mut out = Vec::with_capacity(data.len());
    for r in &recs {
        out.extend_from_slice(r.as_bytes());
    }
    out
}

/// Record layouts under test (overridable by CI's layout matrix): a
/// comma-separated `ORACLE_LAYOUT` list restricts the oracle to the named
/// layouts; unset runs everything.
fn layout_enabled(l: RecordLayout) -> bool {
    match std::env::var("ORACLE_LAYOUT") {
        Ok(v) => v.split(',').any(|p| {
            let p = p.trim();
            RecordLayout::from_name(p).expect("ORACLE_LAYOUT: unknown layout name") == l
        }),
        Err(_) => true,
    }
}

/// Hot-path kernel under test (overridable by CI's kernel matrix).
fn kernel_under_test() -> Kernel {
    match std::env::var("ORACLE_KERNEL") {
        Ok(v) => Kernel::from_name(v.trim()).expect("ORACLE_KERNEL: unknown kernel name"),
        Err(_) => Kernel::Scalar,
    }
}

/// Merge-worker counts under test (overridable by CI's merge matrix).
fn merge_worker_counts() -> Vec<usize> {
    match std::env::var("ORACLE_MERGE_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|p| p.trim().parse().expect("ORACLE_MERGE_WORKERS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Index of the first differing record, for a readable failure.
fn assert_identical(got: &[u8], want: &[u8], what: &str) {
    if got == want {
        return;
    }
    assert_eq!(got.len(), want.len(), "{what}: output length diverged");
    let at = got
        .chunks(RECORD_LEN)
        .zip(want.chunks(RECORD_LEN))
        .position(|(g, w)| g != w)
        .expect("unequal outputs must differ somewhere");
    panic!(
        "{what}: first divergence at record {at}: got key {:?}, want key {:?}",
        &got[at * RECORD_LEN..at * RECORD_LEN + 10],
        &want[at * RECORD_LEN..at * RECORD_LEN + 10],
    );
}

fn run_one_pass(data: &[u8], cfg: &SortConfig) -> Vec<u8> {
    let mut source = MemSource::new(data.to_vec(), 9_973); // ragged chunks
    let mut sink = MemSink::new();
    one_pass(&mut source, &mut sink, cfg).unwrap();
    sink.into_inner()
}

fn run_two_pass(data: &[u8], cfg: &SortConfig, mut scratch: MemScratch) -> Vec<u8> {
    let mut source = MemSource::new(data.to_vec(), 9_973);
    let mut sink = MemSink::new();
    two_pass(&mut source, &mut sink, &mut scratch, cfg).unwrap();
    sink.into_inner()
}

/// A scratch pretending the middle run already survived a crash: the run
/// covering records `[run_records, 2*run_records)` is pre-formed (stable
/// sort — exactly what pass 1 would have spilled) and reported as
/// recovered, driving the resume path of the two-pass driver.
fn resumed_scratch(data: &[u8], run_records: usize) -> MemScratch {
    assert!(data.len() / RECORD_LEN >= 3 * run_records, "need 3+ runs");
    let mut middle =
        data[run_records * RECORD_LEN..2 * run_records * RECORD_LEN].to_vec();
    records_of_mut(&mut middle).sort_by_key(|r| r.key);
    MemScratch::with_recovered(vec![(run_records as u64, middle)], 40 * RECORD_LEN)
}

/// Run every driver configuration over one seeded input and compare all
/// outputs against the stable reference.
fn oracle_case(records: u64, seed: u64, dist: KeyDistribution) {
    if !layout_enabled(RecordLayout::Datamation) {
        return;
    }
    let what = format!("{records} records, seed {seed:#x}, {dist:?}");
    let (data, _) = generate(GenConfig {
        records,
        seed,
        dist,
    });
    let want = stable_reference(&data);

    // §2 baseline: splitter-partitioned shared-nothing sort.
    let (got, _) = partition_sort(&data, &PartitionSortConfig::default());
    assert_identical(&got, &want, &format!("baseline [{what}]"));

    let run_records = (records as usize / 7).max(1);
    let base = SortConfig {
        run_records,
        gather_batch: 128,
        workers: 2,
        kernel: kernel_under_test(),
        ..Default::default()
    };

    // One-pass, serial tournament merge.
    let got = run_one_pass(&data, &base);
    assert_identical(&got, &want, &format!("one-pass serial [{what}]"));

    // One-pass, partitioned merge at every worker count.
    for p in merge_worker_counts() {
        let cfg = SortConfig {
            merge_workers: p,
            ..base.clone()
        };
        let got = run_one_pass(&data, &cfg);
        assert_identical(&got, &want, &format!("one-pass P={p} [{what}]"));
    }

    // Two-pass, serial final merge.
    let got = run_two_pass(&data, &base, MemScratch::new(40 * RECORD_LEN));
    assert_identical(&got, &want, &format!("two-pass serial [{what}]"));

    // Two-pass, partitioned final merge at every worker count.
    for p in merge_worker_counts() {
        let cfg = SortConfig {
            merge_workers: p,
            ..base.clone()
        };
        let got = run_two_pass(&data, &cfg, MemScratch::new(40 * RECORD_LEN));
        assert_identical(&got, &want, &format!("two-pass P={p} [{what}]"));

        // Same, with cascade levels forced in front of the final merge.
        let cascade = SortConfig {
            max_fanin: 3,
            ..cfg
        };
        let got = run_two_pass(&data, &cascade, MemScratch::new(40 * RECORD_LEN));
        assert_identical(&got, &want, &format!("two-pass cascade P={p} [{what}]"));

        // Same, resuming over a scratch with a surviving middle run.
        let cfg = SortConfig {
            merge_workers: p,
            ..base.clone()
        };
        let got = run_two_pass(&data, &cfg, resumed_scratch(&data, run_records));
        assert_identical(&got, &want, &format!("two-pass resumed P={p} [{what}]"));
    }

    // Resumed two-pass with the serial merge, for completeness.
    let got = run_two_pass(&data, &base, resumed_scratch(&data, run_records));
    assert_identical(&got, &want, &format!("two-pass resumed serial [{what}]"));
}

#[test]
fn oracle_random_keys() {
    oracle_case(3_000, 0xAC1E1, KeyDistribution::Random);
}

#[test]
fn oracle_dup_heavy_stability() {
    // Few distinct keys: every driver must keep equal keys in input order
    // or the embedded sequence numbers diverge from the reference.
    oracle_case(3_000, 0xAC1E2, KeyDistribution::DupHeavy { cardinality: 5 });
}

#[test]
fn oracle_two_distinct_keys() {
    oracle_case(2_000, 0xAC1E3, KeyDistribution::DupHeavy { cardinality: 2 });
}

#[test]
fn oracle_presorted_input() {
    oracle_case(2_000, 0xAC1E4, KeyDistribution::Sorted);
}

#[test]
fn oracle_reversed_input() {
    oracle_case(2_000, 0xAC1E5, KeyDistribution::Reverse);
}

#[test]
fn oracle_common_prefix_keys() {
    oracle_case(2_000, 0xAC1E6, KeyDistribution::CommonPrefix { shared: 9 });
}

#[test]
fn oracle_nearly_sorted_input() {
    oracle_case(2_000, 0xAC1E7, KeyDistribution::NearlySorted { permille: 50 });
}

/// Every registered kernel, in one process, against the same reference —
/// the in-repo complement of CI's `ORACLE_KERNEL` matrix. One-pass and
/// two-pass both run so the run-formation *and* loser-tree swaps are
/// exercised per kernel.
#[test]
fn oracle_every_registered_kernel() {
    let (data, _) = generate(GenConfig {
        records: 2_500,
        seed: 0xAC1E9,
        dist: KeyDistribution::DupHeavy { cardinality: 7 },
    });
    let want = stable_reference(&data);
    for kernel in Kernel::ALL {
        let cfg = SortConfig {
            run_records: 400,
            gather_batch: 128,
            workers: 2,
            merge_workers: 2,
            kernel,
            ..Default::default()
        };
        let got = run_one_pass(&data, &cfg);
        assert_identical(&got, &want, &format!("one-pass [{}]", kernel.name()));
        let got = run_two_pass(&data, &cfg, MemScratch::new(40 * RECORD_LEN));
        assert_identical(&got, &want, &format!("two-pass [{}]", kernel.name()));
    }
}

// ---------------------------------------------------------------------------
// Variable-length layout: the same oracle over string-keyed frames.
// ---------------------------------------------------------------------------

/// Ground truth for the var-len layout: stable sort of the parsed frames by
/// key bytes, concatenated back. Unique because every generated body embeds
/// a sequence number right after the key.
fn var_stable_reference(data: &[u8]) -> Vec<u8> {
    let recs = var_records_of(data).expect("generated corpus parses");
    let mut idx: Vec<usize> = (0..recs.len()).collect();
    idx.sort_by(|&a, &b| recs[a].key().cmp(recs[b].key()).then(a.cmp(&b)));
    let mut out = Vec::with_capacity(data.len());
    for i in idx {
        out.extend_from_slice(recs[i].frame());
    }
    out
}

/// First differing frame, for a readable var-len failure.
fn var_assert_identical(got: &[u8], want: &[u8], what: &str) {
    if got == want {
        return;
    }
    assert_eq!(got.len(), want.len(), "{what}: output length diverged");
    let g = var_records_of(got).expect("output parses");
    let w = var_records_of(want).expect("reference parses");
    let at = g
        .iter()
        .zip(&w)
        .position(|(a, b)| a.frame() != b.frame())
        .expect("unequal outputs must differ somewhere");
    panic!(
        "{what}: first divergence at record {at}: got key {:?} seq {:?}, \
         want key {:?} seq {:?}",
        g[at].key(),
        g[at].seq(),
        w[at].key(),
        w[at].seq(),
    );
}

fn run_one_pass_var(data: &[u8], cfg: &SortConfig) -> Vec<u8> {
    let mut source = MemSource::new(data.to_vec(), 997); // ragged, frame-straddling
    let mut sink = MemSink::new();
    one_pass(&mut source, &mut sink, cfg).unwrap();
    sink.into_inner()
}

fn run_two_pass_var(data: &[u8], cfg: &SortConfig, scratch: &mut MemVarScratch) -> Vec<u8> {
    let mut source = MemSource::new(data.to_vec(), 997);
    let mut sink = MemSink::new();
    two_pass_var(&mut source, &mut sink, scratch, cfg).unwrap();
    sink.into_inner()
}

/// A var-len scratch pretending the middle run survived a crash: frames for
/// records `[run_records, 2*run_records)` pre-sorted exactly as pass 1
/// would have spilled them.
fn resumed_var_scratch(data: &[u8], run_records: usize) -> MemVarScratch {
    let recs = var_records_of(data).expect("corpus parses");
    assert!(recs.len() >= 3 * run_records, "need 3+ runs");
    let window = &recs[run_records..2 * run_records];
    let mut idx: Vec<usize> = (0..window.len()).collect();
    idx.sort_by(|&a, &b| window[a].key().cmp(window[b].key()).then(a.cmp(&b)));
    let mut bytes = Vec::new();
    for i in idx {
        bytes.extend_from_slice(window[i].frame());
    }
    MemVarScratch::with_recovered(vec![(run_records as u64, bytes)])
        .expect("recovered run validates")
}

/// Run every var-len driver configuration over one corpus and compare all
/// outputs against the stable reference — mirrors [`oracle_case`].
fn var_oracle_case(records: u64, seed: u64, corpus: TextCorpus) {
    if !layout_enabled(RecordLayout::VarLen) {
        return;
    }
    let what = format!("{records} records, seed {seed:#x}, {}", corpus.name());
    let data = generate_varlen(VarGenConfig {
        records,
        seed,
        corpus,
    });
    let want = var_stable_reference(&data);

    // In-memory baselines: single-partition sort and splitter-partitioned.
    let got = sort_var_bytes(&data).unwrap();
    var_assert_identical(&got, &want, &format!("sort_var_bytes [{what}]"));
    for parts in [2, 3, 5] {
        let got = partition_sort_var(&data, parts).unwrap();
        var_assert_identical(&got, &want, &format!("baseline parts={parts} [{what}]"));
    }

    let run_records = (records as usize / 7).max(1);
    let base = SortConfig {
        run_records,
        gather_batch: 128,
        workers: 2,
        kernel: kernel_under_test(),
        layout: RecordLayout::VarLen,
        ..Default::default()
    };

    // One-pass, serial tournament merge (through the layout dispatch).
    let got = run_one_pass_var(&data, &base);
    var_assert_identical(&got, &want, &format!("one-pass serial [{what}]"));

    // One-pass, partitioned merge at every worker count.
    for p in merge_worker_counts() {
        let cfg = SortConfig {
            merge_workers: p,
            ..base.clone()
        };
        let got = run_one_pass_var(&data, &cfg);
        var_assert_identical(&got, &want, &format!("one-pass P={p} [{what}]"));
    }

    // Two-pass, serial final merge.
    let got = run_two_pass_var(&data, &base, &mut MemVarScratch::new());
    var_assert_identical(&got, &want, &format!("two-pass serial [{what}]"));

    // Two-pass, partitioned + resumed at every worker count.
    for p in merge_worker_counts() {
        let cfg = SortConfig {
            merge_workers: p,
            ..base.clone()
        };
        let got = run_two_pass_var(&data, &cfg, &mut MemVarScratch::new());
        var_assert_identical(&got, &want, &format!("two-pass P={p} [{what}]"));

        let got = run_two_pass_var(&data, &cfg, &mut resumed_var_scratch(&data, run_records));
        var_assert_identical(&got, &want, &format!("two-pass resumed P={p} [{what}]"));
    }

    // Resumed two-pass with the serial merge, for completeness.
    let got = run_two_pass_var(&data, &base, &mut resumed_var_scratch(&data, run_records));
    var_assert_identical(&got, &want, &format!("two-pass resumed serial [{what}]"));
}

#[test]
fn var_oracle_urls() {
    var_oracle_case(1_200, 0xB0, TextCorpus::Urls);
}

#[test]
fn var_oracle_log_lines() {
    var_oracle_case(1_200, 0xB1, TextCorpus::LogLines);
}

#[test]
fn var_oracle_zipfian_words() {
    var_oracle_case(1_200, 0xB2, TextCorpus::ZipfianWords { max_words: 5 });
}

#[test]
fn var_oracle_single_word_zipf() {
    // max_words = 1: shortest keys, maximal duplication.
    var_oracle_case(1_000, 0xB3, TextCorpus::ZipfianWords { max_words: 1 });
}

#[test]
fn var_oracle_random_bytes() {
    var_oracle_case(1_200, 0xB4, TextCorpus::RandomBytes { min_key: 0, max_key: 40 });
}

#[test]
fn var_oracle_short_random_bytes() {
    // Keys at or under the 8-byte prefix-entry width.
    var_oracle_case(1_000, 0xB5, TextCorpus::RandomBytes { min_key: 1, max_key: 8 });
}

#[test]
fn var_oracle_empty_keys() {
    var_oracle_case(1_000, 0xB6, TextCorpus::EmptyKey);
}

#[test]
fn var_oracle_all_equal_keys() {
    var_oracle_case(1_000, 0xB7, TextCorpus::AllEqualKey { key_len: 16 });
}

#[test]
fn var_oracle_shared_megaprefix() {
    var_oracle_case(1_000, 0xB8, TextCorpus::SharedMegaPrefix { prefix: 48, suffix: 8 });
}

#[test]
fn var_oracle_deep_shared_prefix() {
    // Prefix far beyond any cached entry width, near-tying suffixes.
    var_oracle_case(800, 0xB9, TextCorpus::SharedMegaPrefix { prefix: 200, suffix: 4 });
}

#[test]
fn var_oracle_prefix_chain() {
    var_oracle_case(1_000, 0xBA, TextCorpus::PrefixChain { max_len: 32 });
}

/// Every registered kernel against the var-len layout — the layout matrix
/// complement of [`oracle_every_registered_kernel`]. Kernel choice and
/// layout choice must both be pure CPU-time decisions.
#[test]
fn var_oracle_every_registered_kernel() {
    if !layout_enabled(RecordLayout::VarLen) {
        return;
    }
    let data = generate_varlen(VarGenConfig {
        records: 900,
        seed: 0xBB,
        corpus: TextCorpus::ZipfianWords { max_words: 3 },
    });
    let want = var_stable_reference(&data);
    for kernel in Kernel::ALL {
        let cfg = SortConfig {
            run_records: 150,
            gather_batch: 64,
            workers: 2,
            merge_workers: 2,
            kernel,
            layout: RecordLayout::VarLen,
            ..Default::default()
        };
        let got = run_one_pass_var(&data, &cfg);
        var_assert_identical(&got, &want, &format!("var one-pass [{}]", kernel.name()));
        let got = run_two_pass_var(&data, &cfg, &mut MemVarScratch::new());
        var_assert_identical(&got, &want, &format!("var two-pass [{}]", kernel.name()));
    }
}

/// The trait-level range plumbing the partitioned merge relies on: windows
/// opened through [`ScratchStore::open_run_range`] reassemble each sealed
/// run exactly.
#[test]
fn oracle_scratch_windows_reassemble_runs() {
    let (data, _) = generate(GenConfig {
        records: 600,
        seed: 0xAC1E8,
        dist: KeyDistribution::Random,
    });
    let mut scratch = MemScratch::new(512);
    for chunk in data.chunks(200 * RECORD_LEN) {
        let mut w = scratch.create_run(chunk.len() as u64).unwrap();
        use alphasort_core::io::RecordSink;
        w.push(chunk).unwrap();
        scratch.seal_run(w).unwrap();
    }
    let lens = scratch.sealed_run_records().unwrap();
    assert_eq!(lens, vec![200, 200, 200]);
    for (run, &len) in lens.iter().enumerate() {
        let mut got = Vec::new();
        // Reassemble from three uneven windows.
        for (s, e) in [(0, len / 3), (len / 3, len / 2), (len / 2, len)] {
            use alphasort_core::io::RecordSource;
            let mut src = scratch.open_run_range(run, s, e - s).unwrap();
            while let Some(c) = src.next_chunk().unwrap() {
                got.extend_from_slice(&c);
            }
        }
        let lo = run * 200 * RECORD_LEN;
        assert_eq!(&got, &data[lo..lo + 200 * RECORD_LEN], "run {run}");
    }
}
