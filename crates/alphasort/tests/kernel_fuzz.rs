//! Kernel differential fuzz: every registered hot-path kernel variant
//! against the scalar oracle, at two levels.
//!
//! **Run level** — [`form_run_with`] under each kernel must produce the
//! *same permutation* as the scalar QuickSort for the KeyPrefix
//! representation. The within-run order (prefix, then full key, then
//! input index) is a total order, so the correct permutation is unique
//! and the comparison can be exact, not merely "sorted".
//!
//! **End-to-end level** — the one-pass driver under each kernel must emit
//! **byte-identical** output: the branchless loser tree and the
//! alternative run-formation kernels are pure CPU-time choices and may
//! not move a single byte.
//!
//! Inputs sweep the oracle's seven key distributions plus the degenerate
//! shapes a cleverer kernel is most likely to get wrong: all-equal keys
//! (one radix bucket, maximal prefix ties), already sorted, reversed, and
//! prefix-tie-heavy (shared 8-byte prefix, so the sorting network's
//! packed words collide and the tie-fixup pass must run).

use alphasort_core::driver::one_pass;
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::runform::{form_run_with, Representation, SortedRun};
use alphasort_core::{Kernel, SortConfig};
use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution, RECORD_LEN};

/// The sweep: the seven oracle distributions, then the degenerate shapes.
fn distributions() -> Vec<(&'static str, KeyDistribution)> {
    vec![
        ("random", KeyDistribution::Random),
        ("printable", KeyDistribution::RandomPrintable),
        ("sorted", KeyDistribution::Sorted),
        ("reverse", KeyDistribution::Reverse),
        ("nearly-sorted", KeyDistribution::NearlySorted { permille: 50 }),
        ("dup-heavy", KeyDistribution::DupHeavy { cardinality: 5 }),
        ("common-prefix", KeyDistribution::CommonPrefix { shared: 9 }),
        ("all-equal", KeyDistribution::DupHeavy { cardinality: 1 }),
        ("two-keys", KeyDistribution::DupHeavy { cardinality: 2 }),
        ("prefix-ties", KeyDistribution::CommonPrefix { shared: 8 }),
    ]
}

/// Render a formed run to its sorted byte string.
fn materialize(run: &SortedRun) -> Vec<u8> {
    let mut out = Vec::with_capacity(run.len() * RECORD_LEN);
    for r in run.iter_sorted() {
        out.extend_from_slice(r.as_bytes());
    }
    out
}

/// Every kernel's KeyPrefix run formation must be byte-identical to the
/// scalar oracle's, across every distribution and at sizes straddling the
/// sorting network's block, the insertion cutoff, and radix bucket skew.
#[test]
fn run_formation_matches_scalar_oracle_everywhere() {
    for (dist_name, dist) in distributions() {
        for records in [1u64, 2, 15, 16, 17, 100, 1_000, 4_096] {
            let (data, _) = generate(GenConfig {
                records,
                seed: 0xF0221 ^ records,
                dist,
            });
            let oracle = form_run_with(data.clone(), Representation::KeyPrefix, Kernel::Scalar);
            let oracle_bytes = materialize(&oracle);
            // The reference itself must be sorted by full key and stable —
            // guard the guard before using it to judge the variants.
            let recs = records_of(&oracle_bytes);
            assert!(
                recs.windows(2).all(|w| w[0].key <= w[1].key),
                "scalar oracle unsorted [{dist_name}, n={records}]"
            );
            for kernel in Kernel::ALL {
                if kernel == Kernel::Scalar {
                    continue;
                }
                let run = form_run_with(data.clone(), Representation::KeyPrefix, kernel);
                assert_eq!(
                    materialize(&run),
                    oracle_bytes,
                    "kernel {} diverged from scalar [{dist_name}, n={records}]",
                    kernel.name()
                );
            }
        }
    }
}

/// End-to-end: the one-pass driver (run formation + loser-tree merge +
/// gather) under every kernel, against the scalar driver's bytes.
#[test]
fn one_pass_driver_is_byte_identical_under_every_kernel() {
    for (dist_name, dist) in distributions() {
        let (data, _) = generate(GenConfig {
            records: 3_000,
            seed: 0xF0222,
            dist,
        });
        let run = |kernel: Kernel| {
            let cfg = SortConfig {
                run_records: 450, // 7 runs — a real merge, not a passthrough
                gather_batch: 128,
                workers: 2,
                kernel,
                ..Default::default()
            };
            let mut src = MemSource::new(data.clone(), 9_973);
            let mut sink = MemSink::new();
            one_pass(&mut src, &mut sink, &cfg).unwrap();
            sink.into_inner()
        };
        let want = run(Kernel::Scalar);
        for kernel in Kernel::ALL {
            if kernel == Kernel::Scalar {
                continue;
            }
            assert_eq!(
                run(kernel),
                want,
                "one-pass under {} diverged [{dist_name}]",
                kernel.name()
            );
        }
    }
}
