//! The loser tree fuzzed against `BinaryHeap`: for arbitrary leaf counts
//! and value streams, a tournament-driven merge must produce exactly what a
//! heap-driven merge produces. This is the structure both the merge phase
//! and replacement-selection stand on, so it gets its own adversarial file.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use alphasort_core::rs::LoserTree;
use proptest::prelude::*;

/// Merge `lists` (each ascending) with the loser tree.
fn merge_with_tree(lists: &[Vec<u32>]) -> Vec<u32> {
    let k = lists.len();
    let mut pos = vec![0usize; k];
    let less = |pos: &Vec<usize>, a: usize, b: usize| -> bool {
        match (lists[a].get(pos[a]), lists[b].get(pos[b])) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(x), Some(y)) => (x, a) < (y, b),
        }
    };
    let mut tree = LoserTree::new(k, |a, b| less(&pos, a, b));
    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        let w = tree.winner();
        out.push(lists[w][pos[w]]);
        pos[w] += 1;
        tree.replay(|a, b| less(&pos, a, b));
    }
    out
}

/// Merge `lists` with a binary heap (the reference).
fn merge_with_heap(lists: &[Vec<u32>]) -> Vec<u32> {
    let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = lists
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.first().map(|&v| Reverse((v, i, 0))))
        .collect();
    let mut out = Vec::new();
    while let Some(Reverse((v, list, idx))) = heap.pop() {
        out.push(v);
        if let Some(&next) = lists[list].get(idx + 1) {
            heap.push(Reverse((next, list, idx + 1)));
        }
    }
    out
}

proptest! {
    /// Tree merge ≡ heap merge for arbitrary sorted inputs, including empty
    /// lists, duplicate values, and non-power-of-two fan-ins.
    #[test]
    fn loser_tree_merge_equals_heap_merge(
        mut lists in proptest::collection::vec(
            proptest::collection::vec(0u32..1000, 0..50),
            1..17,
        ),
    ) {
        for l in &mut lists {
            l.sort_unstable();
        }
        prop_assert_eq!(merge_with_tree(&lists), merge_with_heap(&lists));
    }

    /// The winner is always a minimal live leaf, at every step.
    #[test]
    fn winner_is_always_minimal(
        mut lists in proptest::collection::vec(
            proptest::collection::vec(0u32..100, 1..20),
            2..9,
        ),
    ) {
        for l in &mut lists {
            l.sort_unstable();
        }
        let k = lists.len();
        let mut pos = vec![0usize; k];
        let less = |pos: &Vec<usize>, a: usize, b: usize| -> bool {
            match (lists[a].get(pos[a]), lists[b].get(pos[b])) {
                (None, _) => false,
                (Some(_), None) => true,
                (Some(x), Some(y)) => (x, a) < (y, b),
            }
        };
        let mut tree = LoserTree::new(k, |a, b| less(&pos, a, b));
        let total: usize = lists.iter().map(|l| l.len()).sum();
        for _ in 0..total {
            let w = tree.winner();
            let wv = lists[w][pos[w]];
            let min_live = (0..k)
                .filter_map(|i| lists[i].get(pos[i]))
                .min()
                .copied()
                .expect("some leaf is live");
            prop_assert_eq!(wv, min_live);
            pos[w] += 1;
            tree.replay(|a, b| less(&pos, a, b));
        }
    }
}
