//! The loser tree fuzzed against `BinaryHeap`: for arbitrary leaf counts
//! and value streams, a tournament-driven merge must produce exactly what a
//! heap-driven merge produces. This is the structure both the merge phase
//! and replacement-selection stand on, so it gets its own adversarial file.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use alphasort_core::rs::LoserTree;
use alphasort_dmgen::SplitMix64;

/// Merge `lists` (each ascending) with the loser tree.
fn merge_with_tree(lists: &[Vec<u32>]) -> Vec<u32> {
    let k = lists.len();
    let mut pos = vec![0usize; k];
    let less = |pos: &Vec<usize>, a: usize, b: usize| -> bool {
        match (lists[a].get(pos[a]), lists[b].get(pos[b])) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(x), Some(y)) => (x, a) < (y, b),
        }
    };
    let mut tree = LoserTree::new(k, |a, b| less(&pos, a, b));
    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        let w = tree.winner();
        out.push(lists[w][pos[w]]);
        pos[w] += 1;
        tree.replay(|a, b| less(&pos, a, b));
    }
    out
}

/// Merge `lists` with a binary heap (the reference).
fn merge_with_heap(lists: &[Vec<u32>]) -> Vec<u32> {
    let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = lists
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.first().map(|&v| Reverse((v, i, 0))))
        .collect();
    let mut out = Vec::new();
    while let Some(Reverse((v, list, idx))) = heap.pop() {
        out.push(v);
        if let Some(&next) = lists[list].get(idx + 1) {
            heap.push(Reverse((next, list, idx + 1)));
        }
    }
    out
}

fn random_sorted_lists(
    r: &mut SplitMix64,
    min_lists: u64,
    max_lists: u64,
    min_len: u64,
    max_len: u64,
) -> Vec<Vec<u32>> {
    let k = min_lists + r.next_below(max_lists - min_lists);
    (0..k)
        .map(|_| {
            let len = min_len + r.next_below(max_len - min_len);
            let mut l: Vec<u32> = (0..len).map(|_| r.next_below(1000) as u32).collect();
            l.sort_unstable();
            l
        })
        .collect()
}

/// Tree merge ≡ heap merge for arbitrary sorted inputs, including empty
/// lists, duplicate values, and non-power-of-two fan-ins.
#[test]
fn loser_tree_merge_equals_heap_merge() {
    let mut r = SplitMix64::new(0xC1);
    for case in 0..256 {
        let lists = random_sorted_lists(&mut r, 1, 17, 0, 50);
        assert_eq!(
            merge_with_tree(&lists),
            merge_with_heap(&lists),
            "case {case}"
        );
    }
}

/// Cut each sorted list into ranges at random splitter values — equal
/// values route right of the splitter, exactly as the partitioned merge's
/// `route()` does — tree-merge every range independently, and concatenate.
/// Must equal the heap merge of the whole input. The random splitters land
/// on duplicates, below every value (empty ranges), above every value, and
/// on list boundary values; lists may be empty or single-element.
#[test]
fn partitioned_tree_merge_equals_full_heap_merge() {
    let mut r = SplitMix64::new(0xC3);
    for case in 0..128 {
        let lists = random_sorted_lists(&mut r, 1, 9, 0, 40);
        let parts = 1 + r.next_below(6) as usize;
        let mut splitters: Vec<u32> = (1..parts)
            .map(|_| r.next_below(1_000) as u32)
            .collect();
        splitters.sort_unstable();
        let mut out = Vec::new();
        for j in 0..parts {
            // Range j holds values v with exactly j splitters <= v:
            // [splitters[j-1], splitters[j]) — duplicates never straddle.
            let ranges: Vec<Vec<u32>> = lists
                .iter()
                .map(|l| {
                    let lo = match j {
                        0 => 0,
                        _ => l.partition_point(|v| *v < splitters[j - 1]),
                    };
                    let hi = match splitters.get(j) {
                        Some(s) => l.partition_point(|v| *v < *s),
                        None => l.len(),
                    };
                    l[lo..hi].to_vec()
                })
                .collect();
            out.extend(merge_with_tree(&ranges));
        }
        assert_eq!(out, merge_with_heap(&lists), "case {case}");
    }
}

/// Same partition scheme with the splitter pinned to an exact boundary
/// value of one of the lists (first or last element): the cut must route
/// the boundary value and all its duplicates into the right range, and the
/// concatenation must still equal the full merge.
#[test]
fn splitter_equal_to_list_boundary_value() {
    let mut r = SplitMix64::new(0xC4);
    for case in 0..64 {
        let lists = random_sorted_lists(&mut r, 2, 7, 1, 30);
        let donor = &lists[r.next_below(lists.len() as u64) as usize];
        let splitter = if r.next_below(2) == 0 {
            donor[0]
        } else {
            *donor.last().expect("non-empty")
        };
        let mut out = Vec::new();
        for j in 0..2 {
            let ranges: Vec<Vec<u32>> = lists
                .iter()
                .map(|l| {
                    let cut = l.partition_point(|v| *v < splitter);
                    if j == 0 {
                        l[..cut].to_vec()
                    } else {
                        l[cut..].to_vec()
                    }
                })
                .collect();
            out.extend(merge_with_tree(&ranges));
        }
        assert_eq!(out, merge_with_heap(&lists), "case {case}");
    }
}

/// The winner is always a minimal live leaf, at every step.
#[test]
fn winner_is_always_minimal() {
    let mut r = SplitMix64::new(0xC2);
    for case in 0..256 {
        let lists = random_sorted_lists(&mut r, 2, 9, 1, 20);
        let k = lists.len();
        let mut pos = vec![0usize; k];
        let less = |pos: &Vec<usize>, a: usize, b: usize| -> bool {
            match (lists[a].get(pos[a]), lists[b].get(pos[b])) {
                (None, _) => false,
                (Some(_), None) => true,
                (Some(x), Some(y)) => (x, a) < (y, b),
            }
        };
        let mut tree = LoserTree::new(k, |a, b| less(&pos, a, b));
        let total: usize = lists.iter().map(|l| l.len()).sum();
        for _ in 0..total {
            let w = tree.winner();
            let wv = lists[w][pos[w]];
            let min_live = (0..k)
                .filter_map(|i| lists[i].get(pos[i]))
                .min()
                .copied()
                .expect("some leaf is live");
            assert_eq!(wv, min_live, "case {case}");
            pos[w] += 1;
            tree.replay(|a, b| less(&pos, a, b));
        }
    }
}
