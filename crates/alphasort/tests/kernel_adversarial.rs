//! Adversarial inputs for the QuickSort kernel: median-of-three killers,
//! organ pipes, runs of equal elements, and random permutations — checked
//! against the standard library and bounded in comparison count where the
//! input is benign.

use alphasort_core::kernel::{insertion_sort_by, quicksort_by};
use alphasort_dmgen::SplitMix64;

fn check(v: Vec<u32>) {
    let mut ours = v.clone();
    let mut std_sorted = v;
    quicksort_by(&mut ours, |a, b| a < b);
    std_sorted.sort_unstable();
    assert_eq!(ours, std_sorted);
}

/// The classic median-of-3 killer permutation of size 2k.
fn median_of_three_killer(n: usize) -> Vec<u32> {
    let n = n - n % 2;
    let k = n / 2;
    let mut v = vec![0u32; n];
    for i in 0..k {
        if i % 2 == 0 {
            v[i] = (i + 1) as u32;
            v[i + 1] = (k + i + 1) as u32;
        }
        v[k + i] = 2 * (i + 1) as u32;
    }
    v
}

#[test]
fn survives_median_of_three_killer() {
    // Quadratic behaviour would take minutes at this size; the smaller-side
    // recursion keeps the stack flat regardless.
    check(median_of_three_killer(100_000));
}

#[test]
fn survives_many_duplicate_blocks() {
    let mut v = Vec::new();
    for b in 0..10u32 {
        v.extend(std::iter::repeat_n(b, 20_000));
    }
    check(v);
}

#[test]
fn survives_pipe_organ_and_sawtooth() {
    let n = 50_000u32;
    let mut pipe: Vec<u32> = (0..n / 2).collect();
    pipe.extend((0..n / 2).rev());
    check(pipe);
    let saw: Vec<u32> = (0..n).map(|i| i % 37).collect();
    check(saw);
}

#[test]
fn insertion_sort_matches_std_on_small_inputs() {
    for n in 0..32 {
        let mut v: Vec<u32> = (0..n).map(|i| (i * 7919 + 13) % 101).collect();
        let mut expect = v.clone();
        insertion_sort_by(&mut v, &mut |a, b| a < b);
        expect.sort_unstable();
        assert_eq!(v, expect, "n = {n}");
    }
}

/// Arbitrary data, arbitrary duplicates: kernel == std.
#[test]
fn kernel_matches_std() {
    let mut r = SplitMix64::new(0xB1);
    for _ in 0..256 {
        let len = r.next_below(2_000) as usize;
        let v: Vec<u32> = (0..len).map(|_| r.next_below(50) as u32).collect();
        check(v);
    }
}

/// The comparator sees only strict-order questions; a comparator that
/// counts must show O(n log n) behaviour on random data.
#[test]
fn comparison_count_reasonable() {
    let mut r = SplitMix64::new(0xB2);
    for case in 0..32 {
        let mut v: Vec<u64> = (0..10_000).map(|_| r.next_u64()).collect();
        let mut compares = 0u64;
        quicksort_by(&mut v, |a, b| {
            compares += 1;
            a < b
        });
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "case {case}");
        // n log2 n ≈ 132k; allow 3×.
        assert!(compares < 400_000, "case {case}: compares {compares}");
    }
}
