//! Adversarial inputs for the QuickSort kernel: median-of-three killers,
//! organ pipes, runs of equal elements, and random permutations — checked
//! against the standard library and bounded in comparison count where the
//! input is benign.

use alphasort_core::kernel::{insertion_sort_by, quicksort_by};
use alphasort_dmgen::SplitMix64;

fn check(v: Vec<u32>) {
    let mut ours = v.clone();
    let mut std_sorted = v;
    quicksort_by(&mut ours, |a, b| a < b);
    std_sorted.sort_unstable();
    assert_eq!(ours, std_sorted);
}

/// The classic median-of-3 killer permutation of size 2k.
fn median_of_three_killer(n: usize) -> Vec<u32> {
    let n = n - n % 2;
    let k = n / 2;
    let mut v = vec![0u32; n];
    for i in 0..k {
        if i % 2 == 0 {
            v[i] = (i + 1) as u32;
            v[i + 1] = (k + i + 1) as u32;
        }
        v[k + i] = 2 * (i + 1) as u32;
    }
    v
}

#[test]
fn survives_median_of_three_killer() {
    // Quadratic behaviour would take minutes at this size; the smaller-side
    // recursion keeps the stack flat regardless.
    check(median_of_three_killer(100_000));
}

#[test]
fn survives_many_duplicate_blocks() {
    let mut v = Vec::new();
    for b in 0..10u32 {
        v.extend(std::iter::repeat_n(b, 20_000));
    }
    check(v);
}

#[test]
fn survives_pipe_organ_and_sawtooth() {
    let n = 50_000u32;
    let mut pipe: Vec<u32> = (0..n / 2).collect();
    pipe.extend((0..n / 2).rev());
    check(pipe);
    let saw: Vec<u32> = (0..n).map(|i| i % 37).collect();
    check(saw);
}

#[test]
fn insertion_sort_matches_std_on_small_inputs() {
    for n in 0..32 {
        let mut v: Vec<u32> = (0..n).map(|i| (i * 7919 + 13) % 101).collect();
        let mut expect = v.clone();
        insertion_sort_by(&mut v, &mut |a, b| a < b);
        expect.sort_unstable();
        assert_eq!(v, expect, "n = {n}");
    }
}

/// Arbitrary data, arbitrary duplicates: kernel == std.
#[test]
fn kernel_matches_std() {
    let mut r = SplitMix64::new(0xB1);
    for _ in 0..256 {
        let len = r.next_below(2_000) as usize;
        let v: Vec<u32> = (0..len).map(|_| r.next_below(50) as u32).collect();
        check(v);
    }
}

/// The comparator sees only strict-order questions; a comparator that
/// counts must show O(n log n) behaviour on random data.
#[test]
fn comparison_count_reasonable() {
    let mut r = SplitMix64::new(0xB2);
    for case in 0..32 {
        let mut v: Vec<u64> = (0..10_000).map(|_| r.next_u64()).collect();
        let mut compares = 0u64;
        quicksort_by(&mut v, |a, b| {
            compares += 1;
            a < b
        });
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "case {case}");
        // n log2 n ≈ 132k; allow 3×.
        assert!(compares < 400_000, "case {case}: compares {compares}");
    }
}

// ---------------------------------------------------------------------------
// Partition-edge cases for the partitioned merge: the splitter machinery
// cutting sorted runs into disjoint key ranges must survive the same class
// of adversaries as the kernel — all-equal keys, splitters landing exactly
// on run boundary keys, empty and single-record runs, and a single run.
// ---------------------------------------------------------------------------

use alphasort_core::merge::RunMerger;
use alphasort_core::pmerge::{plan_mem_partitions, SAMPLES_PER_RANGE};
use alphasort_core::runform::{form_run, Representation, SortedRun};
use alphasort_dmgen::{generate, GenConfig, KeyDistribution, KEY_LEN, RECORD_LEN};

/// Slice `data` into sorted runs of `run_len` records.
fn record_runs(records: u64, seed: u64, dist: KeyDistribution, run_len: usize) -> Vec<SortedRun> {
    let (data, _) = generate(GenConfig {
        records,
        seed,
        dist,
    });
    data.chunks(run_len * RECORD_LEN)
        .map(|c| form_run(c.to_vec(), Representation::KeyPrefix))
        .collect()
}

/// The serial merge's pointer stream — the reference.
fn merged_ptrs(runs: &[SortedRun]) -> Vec<(u32, u32)> {
    RunMerger::new(runs).map(|p| (p.run, p.pos)).collect()
}

/// Concatenated pointer streams of the given per-range bounds rows.
fn bounded_concat(runs: &[SortedRun], rows: &[Vec<(u32, u32)>]) -> Vec<(u32, u32)> {
    rows.iter()
        .flat_map(|row| {
            RunMerger::with_bounds(runs, row)
                .map(|p| (p.run, p.pos))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Bounds rows of a [`plan_mem_partitions`] plan, as `RunMerger` wants them.
fn plan_rows(runs: &[SortedRun], ranges: usize) -> Vec<Vec<(u32, u32)>> {
    plan_mem_partitions(runs, ranges, SAMPLES_PER_RANGE)
        .bounds
        .iter()
        .map(|row| row.iter().map(|&(s, e)| (s as u32, e as u32)).collect())
        .collect()
}

/// All keys identical: every splitter equals the one key, every range but
/// the last is empty (equal keys route right), and the concatenation still
/// reproduces the serial merge exactly.
#[test]
fn partitioned_merge_with_all_equal_keys() {
    let runs = record_runs(900, 0xE0, KeyDistribution::DupHeavy { cardinality: 1 }, 250);
    for ranges in [1, 2, 4, 8] {
        let plan = plan_mem_partitions(&runs, ranges, SAMPLES_PER_RANGE);
        assert_eq!(*plan.range_records.last().expect("ranges >= 1"), 900);
        assert_eq!(plan.range_records.iter().sum::<u64>(), 900);
        let rows = plan_rows(&runs, ranges);
        assert_eq!(bounded_concat(&runs, &rows), merged_ptrs(&runs), "{ranges} ranges");
    }
}

/// First position in `run` whose key is >= `key` (the partition cut).
fn cut_at(run: &SortedRun, key: &[u8; KEY_LEN]) -> u32 {
    let (mut lo, mut hi) = (0u32, run.len() as u32);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if run.record_at(mid as usize).key < *key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Splitters pinned to exact run boundary keys (first/last record of a
/// run): the cut routes the boundary key and all its duplicates right, and
/// the two ranges concatenate to the full merge.
#[test]
fn splitter_equal_to_run_boundary_key() {
    let mut r = SplitMix64::new(0xE1);
    for case in 0..16 {
        let runs = record_runs(
            400,
            r.next_u64(),
            KeyDistribution::DupHeavy { cardinality: 3 },
            100,
        );
        for donor in &runs {
            for pos in [0, donor.len() - 1] {
                let splitter = donor.record_at(pos).key;
                let cuts: Vec<u32> = runs.iter().map(|run| cut_at(run, &splitter)).collect();
                let rows: Vec<Vec<(u32, u32)>> = vec![
                    runs.iter().zip(&cuts).map(|(_, &c)| (0, c)).collect(),
                    runs.iter()
                        .zip(&cuts)
                        .map(|(run, &c)| (c, run.len() as u32))
                        .collect(),
                ];
                assert_eq!(
                    bounded_concat(&runs, &rows),
                    merged_ptrs(&runs),
                    "case {case}, splitter at pos {pos}"
                );
            }
        }
    }
}

/// Arbitrary mixes of empty, single-record and tiny runs — including a
/// single run total — partitioned at several widths: always identical to
/// the serial merge.
#[test]
fn partitioned_merge_with_tiny_and_empty_runs() {
    let mut r = SplitMix64::new(0xE2);
    for case in 0..32 {
        let k = 1 + r.next_below(6) as usize;
        let lens: Vec<usize> = (0..k)
            .map(|_| [0, 1, 1, 2, 7][r.next_below(5) as usize])
            .collect();
        let total: usize = lens.iter().sum();
        let (data, _) = generate(GenConfig {
            records: total as u64,
            seed: 0xE2_00 + case,
            dist: KeyDistribution::DupHeavy { cardinality: 2 },
        });
        let mut off = 0;
        let runs: Vec<SortedRun> = lens
            .iter()
            .map(|&l| {
                let run = form_run(
                    data[off..off + l * RECORD_LEN].to_vec(),
                    Representation::KeyPrefix,
                );
                off += l * RECORD_LEN;
                run
            })
            .collect();
        for ranges in [1, 2, 5] {
            let rows = plan_rows(&runs, ranges);
            assert_eq!(
                bounded_concat(&runs, &rows),
                merged_ptrs(&runs),
                "case {case}, {ranges} ranges"
            );
        }
    }
}
