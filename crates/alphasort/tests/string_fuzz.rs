//! Boundary fuzz for the variable-length layout: zero-length keys, keys
//! wider than the 8-byte prefix entry, frames straddling chunk and run
//! boundaries, and malformed inputs. Malformed bytes must surface as an
//! attributed `InvalidData` error — never a panic, never a silent drop —
//! and every well-formed input must sort byte-identically to stable sort
//! no matter where the boundaries land.

use std::io;

use alphasort_core::driver::one_pass;
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::varlen::{two_pass_var, MemVarScratch};
use alphasort_core::{RecordLayout, SortConfig};
use alphasort_dmgen::{
    encode_var_record, generate_varlen, var_records_of, SplitMix64, TextCorpus, VarGenConfig,
    MAX_VAR_BODY,
};

/// Stable sort of the parsed frames by key, concatenated back.
fn stable_reference(data: &[u8]) -> Vec<u8> {
    let recs = var_records_of(data).expect("input parses");
    let mut idx: Vec<usize> = (0..recs.len()).collect();
    idx.sort_by(|&a, &b| recs[a].key().cmp(recs[b].key()).then(a.cmp(&b)));
    let mut out = Vec::with_capacity(data.len());
    for i in idx {
        out.extend_from_slice(recs[i].frame());
    }
    out
}

fn var_cfg(run_records: usize) -> SortConfig {
    SortConfig {
        run_records,
        gather_batch: 32,
        workers: 2,
        layout: RecordLayout::VarLen,
        ..Default::default()
    }
}

fn sort_one_pass(data: &[u8], chunk: usize, cfg: &SortConfig) -> io::Result<Vec<u8>> {
    let mut source = MemSource::new(data.to_vec(), chunk);
    let mut sink = MemSink::new();
    one_pass(&mut source, &mut sink, cfg)?;
    Ok(sink.into_inner())
}

fn sort_two_pass(data: &[u8], chunk: usize, cfg: &SortConfig) -> io::Result<Vec<u8>> {
    let mut source = MemSource::new(data.to_vec(), chunk);
    let mut sink = MemSink::new();
    let mut scratch = MemVarScratch::new();
    two_pass_var(&mut source, &mut sink, &mut scratch, cfg)?;
    Ok(sink.into_inner())
}

/// Zero-length keys: every record compares equal, so the output must be the
/// input in arrival order — through every chunking, including 1-byte reads.
#[test]
fn zero_length_keys_survive_every_boundary() {
    let data = generate_varlen(VarGenConfig {
        records: 300,
        seed: 0xF0,
        corpus: TextCorpus::EmptyKey,
    });
    let want = stable_reference(&data);
    for chunk in [1usize, 7, 8, 9, 997] {
        let got = sort_one_pass(&data, chunk, &var_cfg(37)).unwrap();
        assert_eq!(got, want, "one-pass chunk {chunk}");
        let got = sort_two_pass(&data, chunk, &var_cfg(37)).unwrap();
        assert_eq!(got, want, "two-pass chunk {chunk}");
    }
}

/// Keys wider than the 8-byte prefix entry: every prefix ties, forcing the
/// full-key overflow path in run formation and deep suffix scans in the
/// merge. Prefix exactly at the entry width is the off-by-one case.
#[test]
fn keys_longer_than_prefix_width_tie_correctly() {
    for prefix in [8u16, 9, 48] {
        let data = generate_varlen(VarGenConfig {
            records: 400,
            seed: 0xF1 + prefix as u64,
            corpus: TextCorpus::SharedMegaPrefix { prefix, suffix: 6 },
        });
        let want = stable_reference(&data);
        let got = sort_one_pass(&data, 311, &var_cfg(53)).unwrap();
        assert_eq!(got, want, "prefix {prefix}");
    }
}

/// Randomized boundary fuzz: arbitrary chunk sizes put frame boundaries
/// anywhere (mid-header, mid-key, mid-body), arbitrary run cuts put record
/// boundaries anywhere, and the output must be byte-identical regardless.
#[test]
fn frames_straddle_chunk_and_run_boundaries() {
    let mut r = SplitMix64::new(0xF2);
    for case in 0..32 {
        let corpus = TextCorpus::ALL[r.next_below(TextCorpus::ALL.len() as u64) as usize];
        let data = generate_varlen(VarGenConfig {
            records: 50 + r.next_below(200),
            seed: r.next_u64(),
            corpus,
        });
        let want = stable_reference(&data);
        let chunk = 1 + r.next_below(120) as usize;
        let cfg = SortConfig {
            merge_workers: r.next_below(4) as usize,
            ..var_cfg(1 + r.next_below(40) as usize)
        };
        let got = sort_one_pass(&data, chunk, &cfg).unwrap();
        assert_eq!(got, want, "case {case} one-pass {} chunk {chunk}", corpus.name());
        let got = sort_two_pass(&data, chunk, &cfg).unwrap();
        assert_eq!(got, want, "case {case} two-pass {} chunk {chunk}", corpus.name());
    }
}

/// A truncated trailing record is an attributed error from both drivers.
#[test]
fn truncated_trailing_record_is_attributed() {
    let data = generate_varlen(VarGenConfig {
        records: 40,
        seed: 0xF3,
        corpus: TextCorpus::Urls,
    });
    let cut = data.len() - 5;
    for sorter in [sort_one_pass, sort_two_pass] {
        let err = sorter(&data[..cut], 64, &var_cfg(10)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("input ends mid-record"),
            "unattributed error: {err}"
        );
    }
}

/// Cut the input at every kind of position: on a frame boundary the prefix
/// must sort cleanly; anywhere else the sort must fail with `InvalidData`.
/// No panics, and no case where bytes are silently dropped.
#[test]
fn random_truncation_fuzz_never_panics() {
    let mut r = SplitMix64::new(0xF4);
    let data = generate_varlen(VarGenConfig {
        records: 120,
        seed: 0xF5,
        corpus: TextCorpus::RandomBytes {
            min_key: 0,
            max_key: 24,
        },
    });
    let boundaries: Vec<usize> = {
        let mut acc = vec![0usize];
        for rec in var_records_of(&data).unwrap() {
            acc.push(acc.last().unwrap() + rec.len());
        }
        acc
    };
    for case in 0..64 {
        let cut = r.next_below(data.len() as u64 + 1) as usize;
        let chunk = 1 + r.next_below(99) as usize;
        match sort_one_pass(&data[..cut], chunk, &var_cfg(13)) {
            Ok(got) => {
                assert!(boundaries.contains(&cut), "case {case}: cut {cut} mid-frame sorted");
                assert_eq!(got, stable_reference(&data[..cut]), "case {case}");
            }
            Err(err) => {
                assert!(!boundaries.contains(&cut), "case {case}: clean cut {cut} rejected");
                assert_eq!(err.kind(), io::ErrorKind::InvalidData, "case {case}");
                assert!(
                    err.to_string().contains("mid-record"),
                    "case {case}: unattributed error: {err}"
                );
            }
        }
    }
}

/// Structural corruption mid-stream — an oversized body length and a key
/// descriptor past the body — fails fast with the frame's byte offset.
#[test]
fn corrupt_headers_are_rejected_with_offset() {
    let prefix = generate_varlen(VarGenConfig {
        records: 10,
        seed: 0xF6,
        corpus: TextCorpus::LogLines,
    });

    // Oversized body: a flipped length byte must not demand a huge read.
    let mut oversized = prefix.clone();
    oversized.extend_from_slice(&(MAX_VAR_BODY as u32 + 1).to_le_bytes());
    oversized.extend_from_slice(&[0u8; 8]);
    let err = sort_one_pass(&oversized, 256, &var_cfg(4)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains(&format!("byte {}", prefix.len())), "{err}");

    // Key descriptor exceeding the body.
    let mut bad_key = prefix.clone();
    bad_key.extend_from_slice(&4u32.to_le_bytes());
    bad_key.extend_from_slice(&2u16.to_le_bytes());
    bad_key.extend_from_slice(&3u16.to_le_bytes()); // 2 + 3 > 4
    bad_key.extend_from_slice(&[0u8; 4]);
    let err = sort_one_pass(&bad_key, 256, &var_cfg(4)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("key descriptor"), "{err}");
}

/// Non-zero key offsets (a pad before the key) sort by the key alone, and
/// a key at the very end of its body round-trips.
#[test]
fn key_descriptor_edges_sort_by_key_only() {
    let mut data = Vec::new();
    let keys: [&[u8]; 5] = [b"delta", b"", b"alpha", b"alphaa", b"alph"];
    for (i, key) in keys.iter().enumerate() {
        let pad = vec![0xEEu8; i]; // growing pad → varying key_off
        encode_var_record(&mut data, &pad, key, &(i as u64).to_le_bytes());
    }
    let got = sort_one_pass(&data, 3, &var_cfg(2)).unwrap();
    assert_eq!(got, stable_reference(&data));
    let order: Vec<Vec<u8>> = var_records_of(&got)
        .unwrap()
        .iter()
        .map(|r| r.key().to_vec())
        .collect();
    assert_eq!(
        order,
        vec![
            b"".to_vec(),
            b"alph".to_vec(),
            b"alpha".to_vec(),
            b"alphaa".to_vec(),
            b"delta".to_vec()
        ]
    );
}
