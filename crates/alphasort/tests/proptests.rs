//! Property tests for the sort core: every driver and representation must
//! produce a sorted permutation for arbitrary inputs and configurations.
//! Cases are driven by a seeded [`SplitMix64`] so every run is reproducible.

use alphasort_core::driver::{one_pass, two_pass, MemScratch};
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::rs::generate_runs;
use alphasort_core::runform::{form_run, Representation};
use alphasort_core::{SortConfig, SortStats};
use alphasort_dmgen::{
    generate, records_of, validate_records, GenConfig, KeyDistribution, Record, SplitMix64,
    RECORD_LEN,
};

fn any_dist(r: &mut SplitMix64) -> KeyDistribution {
    match r.next_below(7) {
        0 => KeyDistribution::Random,
        1 => KeyDistribution::RandomPrintable,
        2 => KeyDistribution::Sorted,
        3 => KeyDistribution::Reverse,
        4 => KeyDistribution::DupHeavy {
            cardinality: 1 + r.next_below(31) as u32,
        },
        5 => KeyDistribution::CommonPrefix {
            shared: r.next_below(11) as u8,
        },
        _ => KeyDistribution::NearlySorted {
            permille: r.next_below(1001) as u16,
        },
    }
}

fn any_rep(r: &mut SplitMix64) -> Representation {
    Representation::ALL[r.next_below(Representation::ALL.len() as u64) as usize]
}

/// One-pass sort: sorted permutation for arbitrary everything.
#[test]
fn one_pass_sorts_anything() {
    let mut r = SplitMix64::new(0xA1);
    for case in 0..64 {
        let n = r.next_below(1_200);
        let seed = r.next_u64();
        let dist = any_dist(&mut r);
        let rep = any_rep(&mut r);
        let (data, cs) = generate(GenConfig {
            records: n,
            seed,
            dist,
        });
        let mut source = MemSource::new(data, 1 + r.next_below(4_999) as usize);
        let mut sink = MemSink::new();
        let cfg = SortConfig {
            run_records: 1 + r.next_below(399) as usize,
            representation: rep,
            workers: r.next_below(4) as usize,
            gather_batch: 1 + r.next_below(199) as usize,
            ..Default::default()
        };
        let outcome = one_pass(&mut source, &mut sink, &cfg).unwrap();
        assert_eq!(outcome.stats.records, n, "case {case}");
        let report = validate_records(sink.data(), cs).unwrap();
        assert_eq!(report.records, n, "case {case}");
    }
}

/// Two-pass sort: same contract, through scratch.
#[test]
fn two_pass_sorts_anything() {
    let mut r = SplitMix64::new(0xA2);
    for case in 0..64 {
        let n = r.next_below(800);
        let seed = r.next_u64();
        let dist = any_dist(&mut r);
        let rep = any_rep(&mut r);
        let (data, cs) = generate(GenConfig {
            records: n,
            seed,
            dist,
        });
        let mut source = MemSource::new(data, 1 + r.next_below(2_999) as usize);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(16 * RECORD_LEN);
        let cfg = SortConfig {
            run_records: 1 + r.next_below(199) as usize,
            representation: rep,
            gather_batch: 1 + r.next_below(99) as usize,
            workers: r.next_below(3) as usize,
            max_fanin: 2 + r.next_below(10) as usize,
            ..Default::default()
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        assert_eq!(outcome.stats.records, n, "case {case}");
        let report = validate_records(sink.data(), cs).unwrap();
        assert_eq!(report.records, n, "case {case}");
    }
}

/// Replacement-selection runs concatenate to the input multiset and each
/// run is sorted, for any capacity.
#[test]
fn replacement_selection_invariants() {
    let mut r = SplitMix64::new(0xA3);
    for case in 0..64 {
        let n = r.next_below(600);
        let seed = r.next_u64();
        let dist = any_dist(&mut r);
        let capacity = 1 + r.next_below(99) as usize;
        let (data, _) = generate(GenConfig {
            records: n,
            seed,
            dist,
        });
        let input = records_of(&data);
        let runs = generate_runs(input, capacity);
        let total: usize = runs.iter().map(|run| run.len()).sum();
        assert_eq!(total as u64, n, "case {case}");
        for run in &runs {
            assert!(run.windows(2).all(|w| w[0].key <= w[1].key), "case {case}");
        }
        // Multiset equality via sorted key+seq list.
        let mut a: Vec<(Vec<u8>, u64)> = input
            .iter()
            .map(|rec| (rec.key.to_vec(), rec.seq()))
            .collect();
        let mut b: Vec<(Vec<u8>, u64)> = runs
            .iter()
            .flatten()
            .map(|rec| (rec.key.to_vec(), rec.seq()))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "case {case}");
    }
}

/// form_run agrees with the standard-library sort for every representation.
#[test]
fn run_formation_matches_std_sort() {
    let mut r = SplitMix64::new(0xA4);
    for case in 0..64 {
        let n = r.next_below(500);
        let seed = r.next_u64();
        let dist = any_dist(&mut r);
        let rep = any_rep(&mut r);
        let (data, _) = generate(GenConfig {
            records: n,
            seed,
            dist,
        });
        let mut expect: Vec<Record> = records_of(&data).to_vec();
        expect.sort_by_key(|a| a.key);
        let run = form_run(data, rep);
        let got: Vec<[u8; 10]> = run.iter_sorted().map(|rec| rec.key).collect();
        let want: Vec<[u8; 10]> = expect.iter().map(|rec| rec.key).collect();
        assert_eq!(got, want, "case {case}");
    }
}

/// The partition planner's contract, for arbitrary run sets and range
/// counts: the per-run cuts are monotone (ranges are disjoint), the union
/// of cuts covers every record of every run exactly once, and the
/// concatenated per-range merges equal the serial merge of the same runs.
#[test]
fn partition_cuts_are_disjoint_covering_and_order_preserving() {
    use alphasort_core::merge::RunMerger;
    use alphasort_core::pmerge::plan_mem_partitions;
    use alphasort_core::runform::SortedRun;

    let mut r = SplitMix64::new(0xA5);
    for case in 0..48 {
        let k = 1 + r.next_below(8) as usize;
        let dist = any_dist(&mut r);
        let runs: Vec<SortedRun> = (0..k)
            .map(|_| {
                let n = r.next_below(300);
                let (data, _) = generate(GenConfig {
                    records: n,
                    seed: r.next_u64(),
                    dist,
                });
                form_run(data, Representation::KeyPrefix)
            })
            .collect();
        let ranges = 1 + r.next_below(9) as usize;
        let samples = 1 + r.next_below(40) as usize;
        let plan = plan_mem_partitions(&runs, ranges, samples);
        assert_eq!(plan.bounds.len(), ranges, "case {case}");
        assert_eq!(plan.range_records.len(), ranges, "case {case}");

        // Disjoint + covering, per run: range j's cut picks up exactly
        // where range j-1's left off, the first starts at 0, the last ends
        // at the run's length.
        for (run_idx, run) in runs.iter().enumerate() {
            let mut prev_end = 0u64;
            for (range_idx, row) in plan.bounds.iter().enumerate() {
                let (s, e) = row[run_idx];
                assert_eq!(s, prev_end, "case {case}: run {run_idx} range {range_idx}");
                assert!(s <= e, "case {case}");
                prev_end = e;
            }
            assert_eq!(prev_end, run.len() as u64, "case {case}: run {run_idx}");
        }
        let total: u64 = runs.iter().map(|run| run.len() as u64).sum();
        assert_eq!(plan.range_records.iter().sum::<u64>(), total, "case {case}");

        // Concatenated range merges == serial merge (pointer-identical,
        // which implies byte-identical output and preserved stability).
        let serial: Vec<(u32, u32)> = RunMerger::new(&runs).map(|p| (p.run, p.pos)).collect();
        let concat: Vec<(u32, u32)> = plan
            .bounds
            .iter()
            .flat_map(|row| {
                let bounds: Vec<(u32, u32)> =
                    row.iter().map(|&(s, e)| (s as u32, e as u32)).collect();
                RunMerger::with_bounds(&runs, &bounds)
                    .map(|p| (p.run, p.pos))
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(concat, serial, "case {case}");
    }
}

/// Tie-heavy byte-string keys over a tiny alphabet, deliberately including
/// keys that are strict prefixes or extensions of earlier keys — the shapes
/// LCP/OVC comparison logic gets wrong first.
fn tie_heavy_keys(r: &mut SplitMix64, n: usize) -> Vec<Vec<u8>> {
    let mut keys: Vec<Vec<u8>> = Vec::with_capacity(n);
    for _ in 0..n {
        let key = match (keys.is_empty(), r.next_below(4)) {
            (false, 0) => {
                // Prefix of an earlier key (possibly empty, possibly whole).
                let k = &keys[r.next_below(keys.len() as u64) as usize];
                k[..r.next_below(k.len() as u64 + 1) as usize].to_vec()
            }
            (false, 1) => {
                // Proper extension of an earlier key.
                let mut k = keys[r.next_below(keys.len() as u64) as usize].clone();
                for _ in 0..=r.next_below(3) {
                    k.push(b'a' + r.next_below(2) as u8);
                }
                k
            }
            _ => (0..r.next_below(7))
                .map(|_| b'a' + r.next_below(2) as u8)
                .collect(),
        };
        keys.push(key);
    }
    keys
}

/// The OVC invariant itself: relative to a base key every live head is ≥,
/// the offsets (LCP with the base) alone reconstruct comparison order when
/// they differ, and equal offsets reduce the comparison to the suffixes.
/// This is the lemma the LCP-aware loser tree's `leaf_less` rests on.
#[test]
fn ovc_codes_reconstruct_comparison_order() {
    use alphasort_core::varlen::lcp;

    let mut r = SplitMix64::new(0xA6);
    for case in 0..64 {
        let base: Vec<u8> = (0..r.next_below(10))
            .map(|_| b'a' + r.next_below(3) as u8)
            .collect();
        // Keys ≥ base, as in a live merge where base is the last emission:
        // agree with the base up to a cut, then diverge upward or extend.
        let keys: Vec<Vec<u8>> = (0..24)
            .map(|_| {
                let cut = r.next_below(base.len() as u64 + 1) as usize;
                let mut k = base[..cut].to_vec();
                if cut < base.len() {
                    k.push(base[cut] + 1 + r.next_below(2) as u8);
                }
                for _ in 0..r.next_below(4) {
                    k.push(b'a' + r.next_below(3) as u8);
                }
                k
            })
            .collect();
        for k in &keys {
            assert!(k.as_slice() >= base.as_slice(), "case {case}: construction");
        }
        let off: Vec<usize> = keys.iter().map(|k| lcp(&base, k)).collect();
        for a in 0..keys.len() {
            for b in 0..keys.len() {
                if off[a] != off[b] {
                    // Deeper agreement with the base ⇒ strictly smaller key,
                    // with zero key bytes examined.
                    assert_eq!(
                        off[a] > off[b],
                        keys[a] < keys[b],
                        "case {case}: off {}/{} keys {:?}/{:?}",
                        off[a],
                        off[b],
                        keys[a],
                        keys[b]
                    );
                } else {
                    // Equal offsets: suffix order == full-key order.
                    let o = off[a];
                    assert_eq!(
                        keys[a][o..].cmp(&keys[b][o..]),
                        keys[a].cmp(&keys[b]),
                        "case {case}: off {o} keys {:?}/{:?}",
                        keys[a],
                        keys[b]
                    );
                }
            }
        }
    }
}

/// The LCP-aware loser-tree replay returns the exact comparator result on
/// randomized tie-heavy string sets: for arbitrary run shapes the OVC merge
/// and the naive full-key merge both equal the stable sort of the arrival
/// order, byte for byte — including empty keys and keys that are strict
/// prefixes of other keys.
#[test]
fn lcp_replay_is_exact_on_tie_heavy_string_sets() {
    use alphasort_core::varlen::{MergeMode, VarRun, VarRunMerger};
    use alphasort_dmgen::{build_var_record, parse_var_record};

    let mut r = SplitMix64::new(0xA7);
    for case in 0..48 {
        let n = 1 + r.next_below(400) as usize;
        let keys = tie_heavy_keys(&mut r, n);
        let per = 1 + r.next_below(60) as usize;
        let runs: Vec<VarRun> = keys
            .chunks(per)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                let mut frames = Vec::new();
                for (i, k) in chunk.iter().enumerate() {
                    let seq = (chunk_idx * per + i) as u64;
                    frames.extend_from_slice(&build_var_record(k, &seq.to_le_bytes()));
                }
                VarRun::from_frames(frames).unwrap()
            })
            .collect();

        // Stable reference: arrival order is the concatenated run order.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
        let want: Vec<(Vec<u8>, u64)> =
            idx.iter().map(|&i| (keys[i].clone(), i as u64)).collect();

        let refs: Vec<&VarRun> = runs.iter().collect();
        for mode in [MergeMode::Ovc, MergeMode::Naive] {
            let got: Vec<(Vec<u8>, u64)> = VarRunMerger::new(refs.clone(), mode)
                .map(|p| {
                    let run = &runs[p.run as usize];
                    let rec = parse_var_record(run.frame_at(p.pos as usize), 0).unwrap();
                    (rec.key().to_vec(), rec.seq().unwrap())
                })
                .collect();
            assert_eq!(got, want, "case {case} ({mode:?})");
        }
    }
}

/// Sanity: stats plumbed through a real run.
#[test]
fn stats_are_populated() {
    let (data, _) = generate(GenConfig::datamation(5_000, 1));
    let mut source = MemSource::new(data, 100 * RECORD_LEN);
    let mut sink = MemSink::new();
    let cfg = SortConfig {
        run_records: 1_000,
        gather_batch: 500,
        workers: 2,
        ..Default::default()
    };
    let outcome = one_pass(&mut source, &mut sink, &cfg).unwrap();
    let st: &SortStats = &outcome.stats;
    assert_eq!(st.runs, 5);
    assert_eq!(st.avg_run_len(), 1_000.0);
    assert!(st.elapsed.as_nanos() > 0);
    assert!(st.sort_time.as_nanos() > 0);
    assert!(st.one_pass);
}
