//! Property tests for the sort core: every driver and representation must
//! produce a sorted permutation for arbitrary inputs and configurations.

use alphasort_core::driver::{one_pass, two_pass, MemScratch};
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::rs::generate_runs;
use alphasort_core::runform::{form_run, Representation};
use alphasort_core::{SortConfig, SortStats};
use alphasort_dmgen::{
    generate, records_of, validate_records, GenConfig, KeyDistribution, Record, RECORD_LEN,
};
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        Just(KeyDistribution::Random),
        Just(KeyDistribution::RandomPrintable),
        Just(KeyDistribution::Sorted),
        Just(KeyDistribution::Reverse),
        (1u32..32).prop_map(|c| KeyDistribution::DupHeavy { cardinality: c }),
        (0u8..=10).prop_map(|s| KeyDistribution::CommonPrefix { shared: s }),
        (0u16..=1000).prop_map(|p| KeyDistribution::NearlySorted { permille: p }),
    ]
}

fn arb_rep() -> impl Strategy<Value = Representation> {
    prop_oneof![
        Just(Representation::Record),
        Just(Representation::Pointer),
        Just(Representation::Key),
        Just(Representation::KeyPrefix),
        Just(Representation::Codeword),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One-pass sort: sorted permutation for arbitrary everything.
    #[test]
    fn one_pass_sorts_anything(
        n in 0u64..1_200,
        seed in any::<u64>(),
        dist in arb_dist(),
        rep in arb_rep(),
        run_records in 1usize..400,
        gather_batch in 1usize..200,
        workers in 0usize..4,
        chunk in 1usize..5_000,
    ) {
        let (data, cs) = generate(GenConfig { records: n, seed, dist });
        let mut source = MemSource::new(data, chunk);
        let mut sink = MemSink::new();
        let cfg = SortConfig {
            run_records,
            representation: rep,
            workers,
            gather_batch,
            ..Default::default()
        };
        let outcome = one_pass(&mut source, &mut sink, &cfg).unwrap();
        prop_assert_eq!(outcome.stats.records, n);
        let report = validate_records(sink.data(), cs).unwrap();
        prop_assert_eq!(report.records, n);
    }

    /// Two-pass sort: same contract, through scratch.
    #[test]
    fn two_pass_sorts_anything(
        n in 0u64..800,
        seed in any::<u64>(),
        dist in arb_dist(),
        rep in arb_rep(),
        run_records in 1usize..200,
        gather_batch in 1usize..100,
        chunk in 1usize..3_000,
        workers in 0usize..3,
        max_fanin in 2usize..12,
    ) {
        let (data, cs) = generate(GenConfig { records: n, seed, dist });
        let mut source = MemSource::new(data, chunk);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(16 * RECORD_LEN);
        let cfg = SortConfig {
            run_records,
            representation: rep,
            gather_batch,
            workers,
            max_fanin,
            ..Default::default()
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        prop_assert_eq!(outcome.stats.records, n);
        let report = validate_records(sink.data(), cs).unwrap();
        prop_assert_eq!(report.records, n);
    }

    /// Replacement-selection runs concatenate to the input multiset and
    /// each run is sorted, for any capacity.
    #[test]
    fn replacement_selection_invariants(
        n in 0u64..600,
        seed in any::<u64>(),
        dist in arb_dist(),
        capacity in 1usize..100,
    ) {
        let (data, _) = generate(GenConfig { records: n, seed, dist });
        let input = records_of(&data);
        let runs = generate_runs(input, capacity);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total as u64, n);
        for run in &runs {
            prop_assert!(run.windows(2).all(|w| w[0].key <= w[1].key));
        }
        // Multiset equality via sorted key+seq list.
        let mut a: Vec<(Vec<u8>, u64)> =
            input.iter().map(|r| (r.key.to_vec(), r.seq())).collect();
        let mut b: Vec<(Vec<u8>, u64)> = runs
            .iter()
            .flatten()
            .map(|r| (r.key.to_vec(), r.seq()))
            .collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// form_run agrees with the standard-library sort for every
    /// representation.
    #[test]
    fn run_formation_matches_std_sort(
        n in 0u64..500,
        seed in any::<u64>(),
        dist in arb_dist(),
        rep in arb_rep(),
    ) {
        let (data, _) = generate(GenConfig { records: n, seed, dist });
        let mut expect: Vec<Record> = records_of(&data).to_vec();
        expect.sort_by_key(|a| a.key);
        let run = form_run(data, rep);
        let got: Vec<[u8; 10]> = run.iter_sorted().map(|r| r.key).collect();
        let want: Vec<[u8; 10]> = expect.iter().map(|r| r.key).collect();
        prop_assert_eq!(got, want);
    }
}

/// Sanity: stats plumbed through a real run.
#[test]
fn stats_are_populated() {
    let (data, _) = generate(GenConfig::datamation(5_000, 1));
    let mut source = MemSource::new(data, 100 * RECORD_LEN);
    let mut sink = MemSink::new();
    let cfg = SortConfig {
        run_records: 1_000,
        gather_batch: 500,
        workers: 2,
        ..Default::default()
    };
    let outcome = one_pass(&mut source, &mut sink, &cfg).unwrap();
    let st: &SortStats = &outcome.stats;
    assert_eq!(st.runs, 5);
    assert_eq!(st.avg_run_len(), 1_000.0);
    assert!(st.elapsed.as_nanos() > 0);
    assert!(st.sort_time.as_nanos() > 0);
    assert!(st.one_pass);
}
