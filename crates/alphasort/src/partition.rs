//! The distributive partition sort the paper speculates about (§4 fn. 1):
//!
//! "A distributive sort that partitions the key-pairs into 256 buckets
//! based on the first byte of the key would eliminate 8 of the 20 compares
//! needed for a 100 MB sort. Such a partition sort might beat AlphaSort's
//! simple QuickSort."
//!
//! [`partition_order`] implements it: one counting pass over the first key
//! byte, a scatter of the (prefix, pointer) entries into their buckets, and
//! a QuickSort per bucket. The `exp_variants` ablation measures it against
//! plain key-prefix QuickSort.

use alphasort_dmgen::records_of;

use crate::entry::PrefixEntry;
use crate::kernel::quicksort_by;

/// Number of buckets (one per possible first key byte).
pub const BUCKETS: usize = 256;

/// Sort a record buffer by 256-way first-byte partitioning + per-bucket
/// key-prefix QuickSort. Returns the sorted index permutation.
///
/// # Panics
/// If `buf.len()` is not a multiple of the record length.
pub fn partition_order(buf: &[u8]) -> Vec<u32> {
    let records = records_of(buf);
    let n = records.len();

    // Counting pass: histogram of first key bytes.
    let mut counts = [0usize; BUCKETS];
    for r in records {
        counts[r.key[0] as usize] += 1;
    }
    let mut starts = [0usize; BUCKETS];
    let mut acc = 0;
    for b in 0..BUCKETS {
        starts[b] = acc;
        acc += counts[b];
    }

    // Scatter entries into bucket order.
    let mut entries = vec![PrefixEntry { prefix: 0, idx: 0 }; n];
    let mut cursors = starts;
    for (i, r) in records.iter().enumerate() {
        let b = r.key[0] as usize;
        entries[cursors[b]] = PrefixEntry {
            prefix: r.prefix(),
            idx: i as u32,
        };
        cursors[b] += 1;
    }

    // Per-bucket QuickSort. Every entry in a bucket shares its first byte,
    // so prefix comparisons resolve on the remaining seven prefix bytes.
    for b in 0..BUCKETS {
        let lo = starts[b];
        let hi = lo + counts[b];
        quicksort_by(&mut entries[lo..hi], |a, e| {
            if a.prefix != e.prefix {
                a.prefix < e.prefix
            } else {
                records[a.idx as usize].key < records[e.idx as usize].key
            }
        });
    }
    entries.into_iter().map(|e| e.idx).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runform::key_prefix_order;
    use alphasort_dmgen::{generate, GenConfig, KeyDistribution};

    fn data(n: u64, dist: KeyDistribution) -> Vec<u8> {
        generate(GenConfig {
            records: n,
            seed: 0xBCCB,
            dist,
        })
        .0
    }

    #[test]
    fn produces_sorted_order() {
        let buf = data(5_000, KeyDistribution::Random);
        let order = partition_order(&buf);
        let records = records_of(&buf);
        assert_eq!(order.len(), 5_000);
        for w in order.windows(2) {
            assert!(records[w[0] as usize].key <= records[w[1] as usize].key);
        }
    }

    #[test]
    fn is_a_permutation() {
        let buf = data(1_000, KeyDistribution::Random);
        let mut order = partition_order(&buf);
        order.sort_unstable();
        assert!(order.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn agrees_with_key_prefix_sort_on_keys() {
        let buf = data(2_000, KeyDistribution::Random);
        let records = records_of(&buf);
        let a: Vec<[u8; 10]> = partition_order(&buf)
            .iter()
            .map(|&i| records[i as usize].key)
            .collect();
        let b: Vec<[u8; 10]> = key_prefix_order(&buf)
            .iter()
            .map(|&i| records[i as usize].key)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_first_byte_all_in_one_bucket() {
        // Common first byte defeats the partition but must stay correct.
        let buf = data(1_500, KeyDistribution::CommonPrefix { shared: 3 });
        let order = partition_order(&buf);
        let records = records_of(&buf);
        for w in order.windows(2) {
            assert!(records[w[0] as usize].key <= records[w[1] as usize].key);
        }
    }

    #[test]
    fn empty_input() {
        assert!(partition_order(&[]).is_empty());
    }
}
