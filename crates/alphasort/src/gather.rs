//! The gather step: copy records into output buffers, exactly once.
//!
//! "The record pointers emerging from the tree are used to gather (copy)
//! records from where they were read into memory to output buffers. Records
//! are only copied this one time." (§4). The paper notes this is the
//! memory-hungry part: the source records are touched in pseudo-random
//! order, so "the gathering has terrible cache and TLB behavior" and "more
//! time is spent gathering the records than is consumed in creating,
//! sorting and merging the key-prefix/pointer pairs."

use alphasort_dmgen::RECORD_LEN;

use crate::merge::{MergedPtr, RunMerger};
use crate::runform::SortedRun;

/// Copy the records named by `ptrs` (in order) onto the end of `out`.
pub fn gather_into(runs: &[SortedRun], ptrs: &[MergedPtr], out: &mut Vec<u8>) {
    out.reserve(ptrs.len() * RECORD_LEN);
    for p in ptrs {
        let rec = runs[p.run as usize].record_at(p.pos as usize);
        out.extend_from_slice(rec.as_bytes());
    }
}

/// Drive a full merge+gather of `runs` into one contiguous output buffer.
pub fn merge_gather_all(runs: &[SortedRun]) -> Vec<u8> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total * RECORD_LEN);
    for p in RunMerger::new(runs) {
        let rec = runs[p.run as usize].record_at(p.pos as usize);
        out.extend_from_slice(rec.as_bytes());
    }
    out
}

/// [`gather_into`] for variable-length runs: no fixed stride to reserve
/// by, so copies are sized per frame. Records are still copied exactly
/// once — the pointers address (run, sorted-position), the frame lookup
/// resolves offset and length.
pub fn gather_var_into(runs: &[crate::varlen::VarRun], ptrs: &[MergedPtr], out: &mut Vec<u8>) {
    for p in ptrs {
        out.extend_from_slice(runs[p.run as usize].frame_at(p.pos as usize));
    }
}

/// Pull up to `n` pointers from a merger — the root's unit of work when it
/// hands gather chores to workers buffer by buffer.
pub fn take_ptrs(merger: &mut RunMerger<'_>, n: usize) -> Vec<MergedPtr> {
    let mut v = Vec::with_capacity(n.min(merger.remaining()));
    for _ in 0..n {
        match merger.next() {
            Some(p) => v.push(p),
            None => break,
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runform::{form_run, Representation};
    use alphasort_dmgen::{generate, validate_records, GenConfig};

    fn runs_for(n: u64, run_records: usize) -> (alphasort_dmgen::Checksum, Vec<SortedRun>) {
        let (data, cs) = generate(GenConfig::datamation(n, 31));
        let runs = data
            .chunks(run_records * RECORD_LEN)
            .map(|c| form_run(c.to_vec(), Representation::KeyPrefix))
            .collect();
        (cs, runs)
    }

    #[test]
    fn merge_gather_produces_valid_sorted_permutation() {
        let (cs, runs) = runs_for(2_500, 300);
        let out = merge_gather_all(&runs);
        let report = validate_records(&out, cs).unwrap();
        assert_eq!(report.records, 2_500);
    }

    #[test]
    fn chunked_gather_equals_whole_gather() {
        let (_, runs) = runs_for(1_000, 128);
        let whole = merge_gather_all(&runs);

        let mut merger = RunMerger::new(&runs);
        let mut chunked = Vec::new();
        loop {
            let ptrs = take_ptrs(&mut merger, 77);
            if ptrs.is_empty() {
                break;
            }
            gather_into(&runs, &ptrs, &mut chunked);
        }
        assert_eq!(chunked, whole);
    }

    #[test]
    fn gather_from_record_sorted_runs() {
        let (data, cs) = generate(GenConfig::datamation(900, 32));
        let runs: Vec<SortedRun> = data
            .chunks(200 * RECORD_LEN)
            .map(|c| form_run(c.to_vec(), Representation::Record))
            .collect();
        let out = merge_gather_all(&runs);
        validate_records(&out, cs).unwrap();
    }
}
