//! Sort-array entry types: what the QuickSort actually moves.
//!
//! §4 of the paper analyses three QuickSorts by what their arrays hold —
//! whole records (R = 100 bytes), bare pointers (P = 4), or key-pointer
//! pairs (K + P = 14) — and lands on a fourth: *(key-prefix, pointer)*
//! pairs, where the prefix is "normalized to an integer type, allowing most
//! comparisons to be resolved with an integer comparison".

use alphasort_dmgen::{Record, KEY_LEN};

/// Which record model a sort operates on. The layout is threaded through
/// [`crate::SortConfig`], both drivers, `sortcli --layout`, and the sortd
/// job manifest; like the kernel registry, the choice moves CPU time only —
/// for a given layout every configuration produces byte-identical output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecordLayout {
    /// Fixed Datamation records: 100 bytes, 10-byte key at offset 0. The
    /// fast path — every fixed-stride assumption stays intact.
    #[default]
    Datamation,
    /// Length-prefixed variable-length records with an (offset, length)
    /// string-key descriptor (see [`alphasort_dmgen::varlen`]), sorted by
    /// the LCP/OVC-aware pipeline in [`crate::varlen`].
    VarLen,
}

impl RecordLayout {
    /// Every registered layout, fast path first.
    pub const ALL: [RecordLayout; 2] = [RecordLayout::Datamation, RecordLayout::VarLen];

    /// Registry name (CLI flag value, manifest field value, oracle key).
    pub fn name(self) -> &'static str {
        match self {
            RecordLayout::Datamation => "datamation",
            RecordLayout::VarLen => "varlen",
        }
    }

    /// Look a layout up by its registry name.
    pub fn from_name(name: &str) -> Option<RecordLayout> {
        RecordLayout::ALL.into_iter().find(|l| l.name() == name)
    }

    /// One-line description for help text and docs.
    pub fn describe(self) -> &'static str {
        match self {
            RecordLayout::Datamation => "fixed 100-byte records, 10-byte keys (fast path)",
            RecordLayout::VarLen => "length-prefixed records, string keys, LCP/OVC merge",
        }
    }
}

/// The prefix-entry integer for an arbitrary-length key: the first 8 key
/// bytes big-endian, zero-padded on the right when the key is shorter.
///
/// Padding with 0x00 understates short keys but never overstates them, so
/// prefix order is faithful wherever prefixes differ; equal prefixes fall
/// through to the full-key comparison (the overflow path), exactly like
/// the fixed layout's tie handling.
#[inline]
pub fn key_prefix_u64(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// Hard ceiling on records addressable within one run: the entry types
/// carry 32-bit record indices, so a run may hold at most `u32::MAX`
/// records (≈ 400 GB of 100-byte records — runs are sized to memory and
/// sit orders of magnitude below this). Keeping the ceiling at
/// `u32::MAX` rather than `u32::MAX + 1` also reserves `u32::MAX` as a
/// sentinel index no real entry can carry.
pub const MAX_RUN_RECORDS: usize = u32::MAX as usize;

/// Convert a run length (or in-run position) into the 32-bit entry index
/// space, panicking with an attributed message instead of wrapping.
///
/// Silent `as u32` truncation here would mis-sort quietly: record
/// 2³² of a run would alias record 0. Every extract and merge-bound site
/// funnels through this check; `what` names the site in the panic.
#[inline]
pub fn checked_run_len(len: usize, what: &str) -> u32 {
    assert!(
        len <= MAX_RUN_RECORDS,
        "{what}: {len} records exceed the {MAX_RUN_RECORDS}-records-per-run \
         limit of the 32-bit entry index"
    );
    len as u32
}

/// A *(key-prefix, pointer)* pair — AlphaSort's choice.
///
/// 8 prefix bytes as a big-endian `u64` plus a 4-byte record index: 12 bytes
/// more than 8× denser than records, and comparable with one integer
/// compare except on prefix ties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixEntry {
    /// First 8 key bytes, big-endian, so integer order = byte-string order.
    pub prefix: u64,
    /// Record index within the run's buffer.
    pub idx: u32,
}

impl PrefixEntry {
    /// Build the entry for record `idx` of `records`.
    #[inline]
    pub fn of(records: &[Record], idx: u32) -> Self {
        PrefixEntry {
            prefix: records[idx as usize].prefix(),
            idx,
        }
    }

    /// Extract the entry array for a whole record buffer — the paper's
    /// "streamed into an array" step that runs while input arrives.
    pub fn extract(records: &[Record]) -> Vec<PrefixEntry> {
        checked_run_len(records.len(), "PrefixEntry::extract");
        records
            .iter()
            .enumerate()
            .map(|(i, r)| PrefixEntry {
                prefix: r.prefix(),
                idx: i as u32,
            })
            .collect()
    }

    /// Compare two entries, falling through to the full keys (via the
    /// record buffer) only on a prefix tie — §4's degenerate-case handling.
    #[inline]
    pub fn cmp_via(&self, other: &Self, records: &[Record]) -> core::cmp::Ordering {
        match self.prefix.cmp(&other.prefix) {
            core::cmp::Ordering::Equal => records[self.idx as usize]
                .key
                .cmp(&records[other.idx as usize].key),
            ord => ord,
        }
    }
}

/// A *(codeword, pointer)* pair — the Baer & Lin (1989) representation §4
/// discusses: "They recommended keys be prefix compressed into codewords so
/// that the (pointer, codeword) QuickSort would fit in cache. We did not
/// use their version of codewords since they cannot be used to later merge
/// the record pointers."
///
/// The codeword here is the first 4 key bytes as a big-endian `u32`: the
/// entry shrinks to 8 bytes (twice the cache density of [`PrefixEntry`]),
/// at the price of 2³² times more ties than the 64-bit prefix — the merge
/// handicap the authors rejected it for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodewordEntry {
    /// First 4 key bytes, big-endian.
    pub code: u32,
    /// Record index within the run's buffer.
    pub idx: u32,
}

impl CodewordEntry {
    /// Build the entry for record `idx` of `records`.
    #[inline]
    pub fn of(records: &[Record], idx: u32) -> Self {
        let k = &records[idx as usize].key;
        CodewordEntry {
            code: u32::from_be_bytes([k[0], k[1], k[2], k[3]]),
            idx,
        }
    }

    /// Extract the entry array for a whole record buffer.
    pub fn extract(records: &[Record]) -> Vec<CodewordEntry> {
        (0..checked_run_len(records.len(), "CodewordEntry::extract"))
            .map(|i| CodewordEntry::of(records, i))
            .collect()
    }
}

/// A *(full key, pointer)* pair — §4's "key sort" (detached key sort).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyEntry {
    /// The complete 10-byte key.
    pub key: [u8; KEY_LEN],
    /// Record index within the run's buffer.
    pub idx: u32,
}

impl KeyEntry {
    /// Build the entry for record `idx` of `records`.
    #[inline]
    pub fn of(records: &[Record], idx: u32) -> Self {
        KeyEntry {
            key: records[idx as usize].key,
            idx,
        }
    }

    /// Extract the entry array for a whole record buffer.
    pub fn extract(records: &[Record]) -> Vec<KeyEntry> {
        checked_run_len(records.len(), "KeyEntry::extract");
        records
            .iter()
            .enumerate()
            .map(|(i, r)| KeyEntry {
                key: r.key,
                idx: i as u32,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, records_of, GenConfig};

    #[test]
    fn layout_names_round_trip() {
        for l in RecordLayout::ALL {
            assert_eq!(RecordLayout::from_name(l.name()), Some(l));
            assert!(!l.describe().is_empty());
        }
        assert_eq!(RecordLayout::from_name("no-such-layout"), None);
        assert_eq!(RecordLayout::default(), RecordLayout::Datamation);
    }

    #[test]
    fn key_prefix_is_order_faithful_where_prefixes_differ() {
        // Shorter keys pad with 0x00: never overstated, so prefix order may
        // only tie (fall through), never invert, byte-string order.
        let cases: [&[u8]; 7] = [
            b"",
            b"a",
            b"ab",
            b"abcdefgh",
            b"abcdefghZZZ",
            b"abd",
            b"\xff\xff\xff\xff\xff\xff\xff\xff\xff",
        ];
        for x in cases {
            for y in cases {
                let (px, py) = (key_prefix_u64(x), key_prefix_u64(y));
                if px != py {
                    assert_eq!(px < py, x < y, "{x:?} vs {y:?}");
                }
            }
        }
        // A key that is a prefix of another ties on the integer prefix when
        // they agree through 8 bytes — the overflow path must break it.
        assert_eq!(key_prefix_u64(b"abcdefgh"), key_prefix_u64(b"abcdefghZZZ"));
    }

    #[test]
    fn prefix_entry_is_12_bytes_padded_to_16() {
        // The array stride is what matters for cache behaviour.
        assert!(core::mem::size_of::<PrefixEntry>() <= 16);
        assert_eq!(core::mem::size_of::<KeyEntry>(), 16);
    }

    #[test]
    fn extract_preserves_indices() {
        let (data, _) = generate(GenConfig::datamation(50, 1));
        let records = records_of(&data);
        let entries = PrefixEntry::extract(records);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.idx as usize, i);
            assert_eq!(e.prefix, records[i].prefix());
        }
    }

    #[test]
    fn checked_run_len_accepts_up_to_the_index_ceiling() {
        // Contract-level boundary check: no 400 GB allocation needed, the
        // conversion itself carries the invariant.
        assert_eq!(checked_run_len(0, "t"), 0);
        assert_eq!(checked_run_len(1, "t"), 1);
        assert_eq!(checked_run_len(MAX_RUN_RECORDS, "t"), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "records-per-run")]
    fn checked_run_len_panics_past_the_ceiling() {
        // The old `as u32` wrapped this to 0 silently; it must refuse, and
        // the message must attribute the site.
        checked_run_len(MAX_RUN_RECORDS + 1, "boundary-test");
    }

    #[test]
    #[should_panic(expected = "boundary-test")]
    fn checked_run_len_panic_names_the_site() {
        checked_run_len(1 << 33, "boundary-test");
    }

    #[test]
    fn cmp_via_falls_through_on_ties() {
        let mut a = Record::with_key([1, 2, 3, 4, 5, 6, 7, 8, 0, 1], 0);
        let b = Record::with_key([1, 2, 3, 4, 5, 6, 7, 8, 0, 2], 1);
        a.payload[0] = 0xFF;
        let records = vec![a, b];
        let ea = PrefixEntry::of(&records, 0);
        let eb = PrefixEntry::of(&records, 1);
        assert_eq!(ea.prefix, eb.prefix);
        assert_eq!(ea.cmp_via(&eb, &records), core::cmp::Ordering::Less);
        assert_eq!(eb.cmp_via(&ea, &records), core::cmp::Ordering::Greater);
        assert_eq!(ea.cmp_via(&ea, &records), core::cmp::Ordering::Equal);
    }
}
