//! Key conditioning (§4).
//!
//! "Traditionally, key sort has been used for complex keys where the cost
//! of key extraction and conditioning is a significant part of the key
//! comparison cost. Key conditioning extracts the sort key from each
//! record, transforms the result to allow efficient byte compares, and
//! stores it with the record as an added field. This is often done for
//! keys involving floating point numbers, signed integers, or character
//! strings with non-standard collating sequences."
//!
//! A [`KeyCondition`] maps a typed value to bytes whose unsigned
//! lexicographic order equals the type's natural order, so the conditioned
//! keys drop straight into the (key-prefix, pointer) machinery: the
//! industrial-strength face of AlphaSort's Formula-1 core.
//!
//! ```
//! use alphasort_core::condition::{F64Condition, KeyCondition};
//!
//! let mut neg = [0u8; 8];
//! let mut pos = [0u8; 8];
//! F64Condition::condition(&-1.5, &mut neg);
//! F64Condition::condition(&2.5, &mut pos);
//! assert!(neg < pos); // byte order == numeric order, sign included
//! ```

use alphasort_dmgen::KEY_LEN;

/// A transformation from a typed key to order-preserving bytes.
pub trait KeyCondition {
    /// The source key type.
    type Key;
    /// Conditioned width in bytes.
    const WIDTH: usize;

    /// Write the conditioned form of `key` into `out[..WIDTH]`.
    ///
    /// Guarantee: `a < b` (natural order) ⇔ conditioned(a) < conditioned(b)
    /// (unsigned byte order).
    fn condition(key: &Self::Key, out: &mut [u8]);
}

/// Signed 64-bit integers: flip the sign bit, store big-endian.
pub struct I64Condition;

impl KeyCondition for I64Condition {
    type Key = i64;
    const WIDTH: usize = 8;

    fn condition(key: &i64, out: &mut [u8]) {
        let biased = (*key as u64) ^ (1 << 63);
        out[..8].copy_from_slice(&biased.to_be_bytes());
    }
}

/// IEEE-754 doubles (total order, -NaN < … < NaN): flip all bits of
/// negatives, flip only the sign bit of non-negatives.
pub struct F64Condition;

impl KeyCondition for F64Condition {
    type Key = f64;
    const WIDTH: usize = 8;

    fn condition(key: &f64, out: &mut [u8]) {
        let bits = key.to_bits();
        let conditioned = if bits & (1 << 63) != 0 {
            !bits
        } else {
            bits ^ (1 << 63)
        };
        out[..8].copy_from_slice(&conditioned.to_be_bytes());
    }
}

/// ASCII strings under a case-insensitive collation, padded/truncated to a
/// fixed width (the "non-standard collating sequence" case).
pub struct CaseInsensitiveAscii<const W: usize>;

impl<const W: usize> KeyCondition for CaseInsensitiveAscii<W> {
    type Key = Vec<u8>;
    const WIDTH: usize = W;

    fn condition(key: &Vec<u8>, out: &mut [u8]) {
        for (i, slot) in out[..W].iter_mut().enumerate() {
            *slot = key.get(i).map(|b| b.to_ascii_uppercase()).unwrap_or(0);
        }
    }
}

/// A descending-order wrapper: complements the inner conditioning so the
/// byte order reverses (ORDER BY … DESC).
pub struct Descending<C>(core::marker::PhantomData<C>);

impl<C: KeyCondition> KeyCondition for Descending<C> {
    type Key = C::Key;
    const WIDTH: usize = C::WIDTH;

    fn condition(key: &C::Key, out: &mut [u8]) {
        C::condition(key, out);
        for b in &mut out[..C::WIDTH] {
            *b = !*b;
        }
    }
}

/// Condition a typed key into a benchmark-shaped 10-byte key (truncating or
/// zero-padding), so conditioned data flows through the standard record
/// pipeline.
pub fn condition_to_record_key<C: KeyCondition>(key: &C::Key) -> [u8; KEY_LEN] {
    let mut wide = vec![0u8; C::WIDTH.max(KEY_LEN)];
    C::condition(key, &mut wide);
    let mut out = [0u8; KEY_LEN];
    out.copy_from_slice(&wide[..KEY_LEN]);
    out
}

/// A multi-field composite conditioner built at runtime: fields concatenate
/// in significance order, so unsigned byte order equals (field1, field2, …)
/// lexicographic order — SQL's multi-column ORDER BY. Built via
/// [`composite`].
pub struct CompositeBuilder<T> {
    extractors: Vec<FieldExtractor<T>>,
    width: usize,
}

/// One field's contribution to a composite key.
type FieldExtractor<T> = Box<dyn Fn(&T, &mut Vec<u8>) + Send + Sync>;

/// Start building a composite conditioner over rows of type `T`.
pub fn composite<T>() -> CompositeBuilder<T> {
    CompositeBuilder {
        extractors: Vec::new(),
        width: 0,
    }
}

impl<T> CompositeBuilder<T> {
    /// Add an `i64` field in ascending order.
    pub fn asc_i64(mut self, get: impl Fn(&T) -> i64 + Send + Sync + 'static) -> Self {
        self.width += 8;
        self.extractors.push(Box::new(move |row, out| {
            let mut buf = [0u8; 8];
            I64Condition::condition(&get(row), &mut buf);
            out.extend_from_slice(&buf);
        }));
        self
    }

    /// Add an `f64` field in ascending order.
    pub fn asc_f64(mut self, get: impl Fn(&T) -> f64 + Send + Sync + 'static) -> Self {
        self.width += 8;
        self.extractors.push(Box::new(move |row, out| {
            let mut buf = [0u8; 8];
            F64Condition::condition(&get(row), &mut buf);
            out.extend_from_slice(&buf);
        }));
        self
    }

    /// Add an `i64` field in descending order.
    pub fn desc_i64(mut self, get: impl Fn(&T) -> i64 + Send + Sync + 'static) -> Self {
        self.width += 8;
        self.extractors.push(Box::new(move |row, out| {
            let mut buf = [0u8; 8];
            Descending::<I64Condition>::condition(&get(row), &mut buf);
            out.extend_from_slice(&buf);
        }));
        self
    }

    /// Total conditioned width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Condition one row.
    pub fn condition(&self, row: &T) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.width);
        for f in &self.extractors {
            f(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_order_preserved<C: KeyCondition>(keys: &[C::Key])
    where
        C::Key: PartialOrd + core::fmt::Debug,
    {
        for a in keys {
            for b in keys {
                let mut ca = vec![0u8; C::WIDTH];
                let mut cb = vec![0u8; C::WIDTH];
                C::condition(a, &mut ca);
                C::condition(b, &mut cb);
                if a < b {
                    assert!(ca < cb, "{a:?} < {b:?} but {ca:?} >= {cb:?}");
                } else if a > b {
                    assert!(ca > cb, "{a:?} > {b:?} but {ca:?} <= {cb:?}");
                }
            }
        }
    }

    #[test]
    fn i64_conditioning_preserves_order() {
        check_order_preserved::<I64Condition>(&[i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX]);
    }

    #[test]
    fn f64_conditioning_preserves_order() {
        check_order_preserved::<F64Condition>(&[
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.5,
            1e300,
            f64::INFINITY,
        ]);
    }

    #[test]
    fn f64_negative_zero_sorts_before_positive_zero() {
        // IEEE total order distinguishes them; -0.0 must not sort after.
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        F64Condition::condition(&-0.0, &mut a);
        F64Condition::condition(&0.0, &mut b);
        assert!(a < b);
    }

    #[test]
    fn case_insensitive_collation() {
        let keys: Vec<Vec<u8>> = ["apple", "Banana", "BANANA", "cherry"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
        let cond = |k: &Vec<u8>| {
            let mut out = vec![0u8; 8];
            CaseInsensitiveAscii::<8>::condition(k, &mut out);
            out
        };
        assert!(cond(&keys[0]) < cond(&keys[1]));
        assert_eq!(cond(&keys[1]), cond(&keys[2])); // case folds together
        assert!(cond(&keys[2]) < cond(&keys[3]));
    }

    #[test]
    fn descending_reverses() {
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        Descending::<I64Condition>::condition(&1, &mut a);
        Descending::<I64Condition>::condition(&2, &mut b);
        assert!(a > b);
    }

    #[test]
    fn composite_orders_by_fields_in_significance_order() {
        #[derive(Debug)]
        struct Row {
            dept: i64,
            salary: f64,
        }
        let c = composite::<Row>()
            .asc_i64(|r| r.dept)
            .desc_i64(|r| r.salary as i64)
            .asc_f64(|r| r.salary);
        assert_eq!(c.width(), 24);

        let rows = [
            Row {
                dept: 1,
                salary: 50_000.0,
            },
            Row {
                dept: 1,
                salary: 40_000.0,
            },
            Row {
                dept: 2,
                salary: 90_000.0,
            },
        ];
        let k0 = c.condition(&rows[0]);
        let k1 = c.condition(&rows[1]);
        let k2 = c.condition(&rows[2]);
        // dept 1 before dept 2 regardless of salary.
        assert!(k0 < k2 && k1 < k2);
        // within dept 1: salary DESC → 50k before 40k.
        assert!(k0 < k1);
    }

    #[test]
    fn condition_to_record_key_pads_and_truncates() {
        let k = condition_to_record_key::<I64Condition>(&7);
        assert_eq!(k.len(), KEY_LEN);
        // 8 conditioned bytes + 2 zero pad.
        assert_eq!(&k[8..], &[0, 0]);

        let wide =
            condition_to_record_key::<CaseInsensitiveAscii<16>>(&b"abcdefghijklmnop".to_vec());
        assert_eq!(&wide[..], b"ABCDEFGHIJ");
    }

    #[test]
    fn conditioned_records_sort_with_the_standard_pipeline() {
        use crate::runform::{form_run, Representation};
        use alphasort_dmgen::Record;

        let values: Vec<i64> = vec![5, -3, 99, 0, -88, 17, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let rec = Record::with_key(condition_to_record_key::<I64Condition>(v), i as u64);
            buf.extend_from_slice(rec.as_bytes());
        }
        let run = form_run(buf, Representation::KeyPrefix);
        let sorted: Vec<i64> = run
            .iter_sorted()
            .map(|r| values[r.seq() as usize])
            .collect();
        let mut expect = values.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }
}
