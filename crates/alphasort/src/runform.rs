//! Run formation: the four QuickSort representations of §4.
//!
//! | Representation | array holds        | bytes moved per exchange |
//! |----------------|--------------------|--------------------------|
//! | `Record`       | whole records      | 2R = 200                 |
//! | `Pointer`      | record indices     | 2P = 8 (but each compare dereferences two records) |
//! | `Key`          | (key, pointer)     | 2(K+P) = 28              |
//! | `KeyPrefix`    | (prefix, pointer)  | 24, compares are integer ops |
//!
//! The paper measures record sort 30% slower than pointer sort and "270%
//! slower than key sort", and a further 25% QuickSort improvement from the
//! prefix. `exp_variants` and the `sort_variants` bench reproduce those
//! ratios with these implementations.

use alphasort_dmgen::{records_of, records_of_mut, Record, RECORD_LEN};

use crate::entry::{KeyEntry, PrefixEntry};
use crate::kernel::quicksort_by;
use crate::kernels::{prefix_entry_less, Kernel, RunFormKernel};

/// Which sort-array representation run formation uses.
///
/// All detached representations (everything but `Record`) break key ties on
/// the record's position within the run, and the merge breaks cross-run
/// ties on run number — so the full sort is **stable** for them. In-place
/// record sort exchanges records physically and is not stable (the paper's
/// §4 concedes stability to replacement-selection for exactly this reason).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Representation {
    /// Sort the 100-byte records in place.
    Record,
    /// Sort 4-byte record indices; compares dereference the records.
    Pointer,
    /// Sort (10-byte key, index) pairs.
    Key,
    /// Sort (8-byte prefix, index) pairs, full-key compare on prefix ties —
    /// AlphaSort's choice.
    KeyPrefix,
    /// Sort (4-byte codeword, index) pairs — the Baer & Lin compressed-key
    /// representation §4 considers: densest cache packing, but codewords
    /// "cannot be used to later merge the record pointers".
    Codeword,
}

impl Representation {
    /// All five: the paper's four, then the Baer & Lin codeword variant.
    pub const ALL: [Representation; 5] = [
        Representation::Record,
        Representation::Pointer,
        Representation::Key,
        Representation::KeyPrefix,
        Representation::Codeword,
    ];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Representation::Record => "record",
            Representation::Pointer => "pointer",
            Representation::Key => "key",
            Representation::KeyPrefix => "key-prefix",
            Representation::Codeword => "codeword",
        }
    }
}

/// A sorted run: the record bytes plus the order in which to read them.
pub struct SortedRun {
    buf: Vec<u8>,
    /// `None` when the records are physically sorted (record sort);
    /// otherwise the sorted index permutation.
    order: Option<Vec<u32>>,
}

impl SortedRun {
    /// Number of records in the run.
    pub fn len(&self) -> usize {
        self.buf.len() / RECORD_LEN
    }

    /// Whether the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The run's records (in *storage* order, not sorted order).
    pub fn records(&self) -> &[Record] {
        records_of(&self.buf)
    }

    /// The record at sorted position `pos`.
    #[inline]
    pub fn record_at(&self, pos: usize) -> &Record {
        let i = match &self.order {
            None => pos,
            Some(order) => order[pos] as usize,
        };
        &self.records()[i]
    }

    /// The key prefix at sorted position `pos`.
    #[inline]
    pub fn prefix_at(&self, pos: usize) -> u64 {
        self.record_at(pos).prefix()
    }

    /// Iterate records in sorted order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = &Record> + '_ {
        (0..self.len()).map(move |p| self.record_at(p))
    }

    /// Consume the run, returning its raw buffer (storage order).
    pub fn into_buf(self) -> Vec<u8> {
        self.buf
    }
}

/// Form a sorted run from a record buffer using `rep` and the scalar
/// (oracle) kernel.
///
/// # Panics
/// If `buf.len()` is not a multiple of the record length.
pub fn form_run(buf: Vec<u8>, rep: Representation) -> SortedRun {
    form_run_with(buf, rep, Kernel::Scalar)
}

/// Form a sorted run using `rep`, selecting the run-formation hot loop from
/// the kernel registry. Only the `KeyPrefix` representation has registered
/// variants (it is the paper's representation and the one the registry
/// optimizes); every other representation sorts with the scalar QuickSort
/// regardless of `kernel`. All kernels produce byte-identical runs.
///
/// # Panics
/// If `buf.len()` is not a multiple of the record length.
pub fn form_run_with(mut buf: Vec<u8>, rep: Representation, kernel: Kernel) -> SortedRun {
    match rep {
        Representation::Record => {
            sort_records_in_place(&mut buf);
            SortedRun { buf, order: None }
        }
        Representation::Pointer => {
            let order = pointer_order(&buf);
            SortedRun {
                buf,
                order: Some(order),
            }
        }
        Representation::Key => {
            let order = key_order(&buf);
            SortedRun {
                buf,
                order: Some(order),
            }
        }
        Representation::KeyPrefix => {
            let order = match kernel.runform() {
                RunFormKernel::Quicksort => key_prefix_order(&buf),
                RunFormKernel::Radix => crate::kernels::radix_prefix_order(&buf),
                RunFormKernel::Network => crate::kernels::network_prefix_order(&buf),
            };
            SortedRun {
                buf,
                order: Some(order),
            }
        }
        Representation::Codeword => {
            let order = codeword_order(&buf);
            SortedRun {
                buf,
                order: Some(order),
            }
        }
    }
}

/// §4 "record sort": QuickSort the records themselves. Each exchange moves
/// 200 bytes; each compare touches two records in situ.
pub fn sort_records_in_place(buf: &mut [u8]) {
    let records = records_of_mut(buf);
    quicksort_by(records, |a, b| a.key < b.key);
}

/// §4 "pointer sort": QuickSort indices; every compare dereferences two
/// records (poor locality — the point of the experiment).
pub fn pointer_order(buf: &[u8]) -> Vec<u32> {
    let records = records_of(buf);
    let mut order: Vec<u32> = (0..records.len() as u32).collect();
    quicksort_by(&mut order, |&a, &b| {
        // Final index tie-break: indices follow arrival order within the
        // run, so equal keys keep input order (stability, for free).
        (&records[a as usize].key, a) < (&records[b as usize].key, b)
    });
    order
}

/// §4 "key sort" (detached keys): QuickSort (full key, index) pairs; no
/// record access during the sort.
pub fn key_order(buf: &[u8]) -> Vec<u32> {
    let records = records_of(buf);
    let mut entries = KeyEntry::extract(records);
    quicksort_by(&mut entries, |a, b| (&a.key, a.idx) < (&b.key, b.idx));
    entries.into_iter().map(|e| e.idx).collect()
}

/// AlphaSort's key-prefix sort: integer compares on the 8-byte prefix,
/// full-key fall-through only on ties.
pub fn key_prefix_order(buf: &[u8]) -> Vec<u32> {
    let records = records_of(buf);
    let mut entries = PrefixEntry::extract(records);
    quicksort_by(&mut entries, |a, b| prefix_entry_less(records, a, b));
    entries.into_iter().map(|e| e.idx).collect()
}

/// Baer & Lin codeword sort: 8-byte (u32 codeword, u32 index) entries —
/// densest packing, most ties.
pub fn codeword_order(buf: &[u8]) -> Vec<u32> {
    let records = records_of(buf);
    let mut entries = crate::entry::CodewordEntry::extract(records);
    quicksort_by(&mut entries, |a, b| {
        if a.code != b.code {
            a.code < b.code
        } else {
            (&records[a.idx as usize].key, a.idx) < (&records[b.idx as usize].key, b.idx)
        }
    });
    entries.into_iter().map(|e| e.idx).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, GenConfig, KeyDistribution};

    fn dataset(n: u64, dist: KeyDistribution) -> Vec<u8> {
        generate(GenConfig {
            records: n,
            seed: 0xA1FA,
            dist,
        })
        .0
    }

    fn assert_run_sorted(run: &SortedRun, n: usize) {
        assert_eq!(run.len(), n);
        for p in 1..run.len() {
            assert!(
                run.record_at(p - 1).key <= run.record_at(p).key,
                "out of order at {p}"
            );
        }
    }

    #[test]
    fn all_representations_sort_random_input() {
        let data = dataset(2_000, KeyDistribution::Random);
        for rep in Representation::ALL {
            let run = form_run(data.clone(), rep);
            assert_run_sorted(&run, 2_000);
        }
    }

    #[test]
    fn all_representations_agree_on_order() {
        let data = dataset(500, KeyDistribution::Random);
        let reference: Vec<[u8; 10]> = form_run(data.clone(), Representation::Record)
            .iter_sorted()
            .map(|r| r.key)
            .collect();
        for rep in [
            Representation::Pointer,
            Representation::Key,
            Representation::KeyPrefix,
        ] {
            let run = form_run(data.clone(), rep);
            let keys: Vec<[u8; 10]> = run.iter_sorted().map(|r| r.key).collect();
            assert_eq!(keys, reference, "{} disagrees", rep.name());
        }
    }

    #[test]
    fn every_kernel_forms_an_identical_key_prefix_run() {
        for dist in [
            KeyDistribution::Random,
            KeyDistribution::DupHeavy { cardinality: 2 },
            KeyDistribution::CommonPrefix { shared: 8 },
        ] {
            let data = dataset(1_200, dist);
            let reference: Vec<u32> = key_prefix_order(&data);
            for kernel in Kernel::ALL {
                let run = form_run_with(data.clone(), Representation::KeyPrefix, kernel);
                assert_eq!(
                    run.order.as_deref(),
                    Some(&reference[..]),
                    "{} on {dist:?}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn key_prefix_handles_common_prefix_degeneracy() {
        // All prefixes equal: every compare falls through to the full key.
        let data = dataset(1_000, KeyDistribution::CommonPrefix { shared: 8 });
        let run = form_run(data, Representation::KeyPrefix);
        assert_run_sorted(&run, 1_000);
    }

    #[test]
    fn duplicate_heavy_input_sorts() {
        let data = dataset(1_500, KeyDistribution::DupHeavy { cardinality: 7 });
        for rep in Representation::ALL {
            let run = form_run(data.clone(), rep);
            assert_run_sorted(&run, 1_500);
        }
    }

    #[test]
    fn presorted_and_reverse_inputs() {
        for dist in [KeyDistribution::Sorted, KeyDistribution::Reverse] {
            let data = dataset(1_000, dist);
            let run = form_run(data, Representation::KeyPrefix);
            assert_run_sorted(&run, 1_000);
        }
    }

    #[test]
    fn empty_run() {
        let run = form_run(Vec::new(), Representation::KeyPrefix);
        assert!(run.is_empty());
        assert_eq!(run.iter_sorted().count(), 0);
    }

    #[test]
    fn record_sort_buffer_is_physically_sorted() {
        let data = dataset(300, KeyDistribution::Random);
        let run = form_run(data, Representation::Record);
        let recs = run.records();
        assert!(recs.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn permutation_is_preserved() {
        let data = dataset(800, KeyDistribution::Random);
        let mut rc_in = alphasort_dmgen::RunningChecksum::new();
        rc_in.update_bytes(&data);
        for rep in Representation::ALL {
            let run = form_run(data.clone(), rep);
            let mut rc_out = alphasort_dmgen::RunningChecksum::new();
            for p in 0..run.len() {
                rc_out.update(run.record_at(p));
            }
            assert_eq!(rc_out.finish(), rc_in.finish(), "{}", rep.name());
        }
    }
}
