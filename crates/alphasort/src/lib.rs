//! AlphaSort: a cache-conscious external sort (SIGMOD 1994).
//!
//! The paper's central observation is that on RISC processors "reducing
//! cache misses has replaced reducing instructions as the most important
//! processor optimization". AlphaSort therefore:
//!
//! 1. QuickSorts *(key-prefix, pointer)* pairs instead of records or bare
//!    pointers, keeping the inner loop inside the on-chip cache (§4) —
//!    [`runform`] implements all four representations so the paper's 3:1
//!    CPU comparisons can be measured;
//! 2. generates runs with QuickSort as record groups arrive from disk,
//!    overlapping sort with input (§7), rather than with
//!    replacement-selection ([`rs`] implements the replacement-selection
//!    baseline, the OpenVMS-sort approach);
//! 3. merges the QuickSorted runs with a small, cache-resident tournament
//!    tree ([`merge`]) and *gathers* each record exactly once into the
//!    output buffers ([`gather`]);
//! 4. runs one-pass when memory allows and two-pass otherwise
//!    ([`driver`], [`planner`]), striping both input and output;
//! 5. on multiprocessors, splits QuickSort and gather work into chores for
//!    worker threads while the root does all IO ([`parallel`]).
//!
//! Extensions the paper discusses but does not adopt are in [`ovc`]
//! (offset-value coding, the DFsort/SyncSort technique), [`partition`]
//! (the 256-bucket distributive sort "that might beat AlphaSort"), the
//! Baer & Lin codeword representation ([`runform::Representation::Codeword`]),
//! and [`condition`] (key conditioning for floats, signed integers and
//! non-standard collations). [`baseline`] implements the shared-nothing
//! partitioned sort AlphaSort displaced (§2's Hypercube design), and
//! [`io_file`] + the `sortcli`/`gensort`/`valsort` binaries are the
//! "street-legal" productized face (§8's Daytona category).
//!
//! ```
//! use alphasort_core::driver::one_pass;
//! use alphasort_core::io::{MemSink, MemSource};
//! use alphasort_core::SortConfig;
//! use alphasort_dmgen::{generate, validate_records, GenConfig};
//!
//! let (input, checksum) = generate(GenConfig::datamation(10_000, 42));
//! let mut source = MemSource::new(input, 64 * 1024);
//! let mut sink = MemSink::new();
//! let cfg = SortConfig { run_records: 2_000, workers: 2, ..Default::default() };
//!
//! let outcome = one_pass(&mut source, &mut sink, &cfg)?;
//! assert_eq!(outcome.stats.records, 10_000);
//! assert_eq!(outcome.stats.runs, 5);
//! validate_records(sink.data(), checksum).expect("sorted permutation");
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod baseline;
pub mod condition;
pub mod driver;
pub mod entry;
pub mod gather;
pub mod io;
pub mod io_file;
pub mod kernel;
pub mod kernels;
pub mod merge;
pub mod mergeplan;
pub mod ovc;
pub mod parallel;
pub mod partition;
pub mod planner;
pub mod pmerge;
pub mod rs;
pub mod runform;
pub mod splitter;
pub mod stats;
pub mod varlen;

pub use driver::{ExternalSorter, SortConfig, SortOutcome};
pub use entry::{key_prefix_u64, CodewordEntry, KeyEntry, PrefixEntry, RecordLayout};
pub use kernels::Kernel;
pub use io::{MemSink, MemSource, RecordSink, RecordSource};
pub use planner::{PassPlan, Planner};
pub use runform::{Representation, SortedRun};
pub use stats::SortStats;
