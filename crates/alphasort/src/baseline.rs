//! The shared-nothing baseline: partitioned parallel sort (§2).
//!
//! Before AlphaSort, the record holder was DeWitt, Naughton and Schneider's
//! sort on a 32-node Intel Hypercube: "They read the disks in parallel,
//! performing a preliminary sort of the data at each source, and partition
//! it into equal-sized parts. Each reader-sorter sends the partitions to
//! their respective target partitions. Each target partition processor
//! merges the many input streams into a sorted run that is stored on the
//! local disk." Their splitters came from sampling — *probabilistic
//! splitting*.
//!
//! This module implements that design over threads (nodes) and in-memory
//! exchange (the interconnect), so the paper's Table 1 comparison has an
//! executable baseline: one shared-memory machine running the AlphaSort
//! pipeline vs. the same machine pretending to be a shared-nothing
//! cluster.

use std::time::{Duration, Instant};

use alphasort_dmgen::{records_of, Record, RECORD_LEN};

use crate::rs::LoserTree;
use crate::runform::{form_run, Representation};

/// Configuration for the partitioned sort.
#[derive(Clone, Debug)]
pub struct PartitionSortConfig {
    /// Number of nodes (reader-sorters and target partitions).
    pub nodes: usize,
    /// Sample size per node for probabilistic splitting.
    pub samples_per_node: usize,
    /// Run-formation representation each node uses locally.
    pub representation: Representation,
}

impl Default for PartitionSortConfig {
    fn default() -> Self {
        PartitionSortConfig {
            nodes: 4,
            samples_per_node: 128,
            representation: Representation::KeyPrefix,
        }
    }
}

/// Phase timings and balance statistics of one partitioned sort.
#[derive(Clone, Debug, Default)]
pub struct PartitionSortStats {
    /// Sampling + splitter selection.
    pub split_time: Duration,
    /// Scatter: each reader partitions its share and "sends" it.
    pub scatter_time: Duration,
    /// Per-node local sorts (max over nodes — the critical path).
    pub sort_time: Duration,
    /// Final concatenation/merge of node outputs.
    pub merge_time: Duration,
    /// Records each target node received (skew diagnostic: probabilistic
    /// splitting aims for "equal-sized parts").
    pub partition_sizes: Vec<u64>,
}

impl PartitionSortStats {
    /// Largest partition over the ideal share — 1.0 is perfect balance.
    pub fn skew(&self) -> f64 {
        let total: u64 = self.partition_sizes.iter().sum();
        if total == 0 || self.partition_sizes.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.partition_sizes.len() as f64;
        let max = *self.partition_sizes.iter().max().expect("non-empty") as f64;
        max / ideal
    }
}

/// Sort `input` (whole records) with the shared-nothing algorithm.
/// Returns the sorted bytes plus phase stats.
///
/// # Panics
/// If `input.len()` is not a multiple of the record length or the config
/// has zero nodes.
pub fn partition_sort(input: &[u8], cfg: &PartitionSortConfig) -> (Vec<u8>, PartitionSortStats) {
    assert!(cfg.nodes >= 1, "need at least one node");
    assert!(input.len().is_multiple_of(RECORD_LEN));
    let records = records_of(input);
    let n = records.len();
    let mut stats = PartitionSortStats::default();
    if n == 0 {
        stats.partition_sizes = vec![0; cfg.nodes];
        return (Vec::new(), stats);
    }

    // --- probabilistic splitting: sample, sort the sample, pick quantiles.
    let t0 = Instant::now();
    let sample_n = (cfg.samples_per_node * cfg.nodes).min(n.max(1));
    let mut sample: Vec<[u8; 10]> = (0..sample_n)
        .map(|i| {
            // Deterministic stride sampling with a golden-ratio hop: cheap
            // and adequate for random benchmark keys.
            let idx = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n.max(1) as u64;
            records[idx as usize].key
        })
        .collect();
    sample.sort_unstable();
    let splitters: Vec<[u8; 10]> = (1..cfg.nodes)
        .map(|k| sample[k * sample.len() / cfg.nodes])
        .collect();
    stats.split_time = t0.elapsed();

    // --- scatter: readers partition their share by binary search on the
    // splitters and append to per-target buffers (the "network send").
    let t0 = Instant::now();
    let reader_shares: Vec<&[Record]> = {
        let per = n.div_ceil(cfg.nodes.max(1));
        records.chunks(per.max(1)).collect()
    };
    let mut per_target: Vec<Vec<u8>> = vec![Vec::new(); cfg.nodes];
    let scattered: Vec<Vec<Vec<u8>>> = std::thread::scope(|scope| {
        let splitters = &splitters;
        let handles: Vec<_> = reader_shares
            .iter()
            .map(|share| {
                scope.spawn(move || {
                    let mut outs: Vec<Vec<u8>> = vec![Vec::new(); splitters.len() + 1];
                    for r in *share {
                        let t = splitters.partition_point(|s| *s <= r.key);
                        outs[t].extend_from_slice(r.as_bytes());
                    }
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect()
    });
    for outs in scattered {
        for (t, bytes) in outs.into_iter().enumerate() {
            per_target[t].extend_from_slice(&bytes);
        }
    }
    stats.partition_sizes = per_target
        .iter()
        .map(|p| (p.len() / RECORD_LEN) as u64)
        .collect();
    stats.scatter_time = t0.elapsed();

    // --- local sorts, one thread per target node.
    let t0 = Instant::now();
    let rep = cfg.representation;
    let sorted_parts: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_target
            .into_iter()
            .map(|part| {
                scope.spawn(move || {
                    let run = form_run(part, rep);
                    let mut out = Vec::with_capacity(run.len() * RECORD_LEN);
                    for r in run.iter_sorted() {
                        out.extend_from_slice(r.as_bytes());
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sorter"))
            .collect()
    });
    stats.sort_time = t0.elapsed();

    // --- output: partitions are disjoint key ranges; concatenate in order.
    let t0 = Instant::now();
    let mut out = Vec::with_capacity(input.len());
    for p in sorted_parts {
        out.extend_from_slice(&p);
    }
    stats.merge_time = t0.elapsed();
    (out, stats)
}

/// The target-side variant DeWitt's design actually runs: each reader
/// pre-sorts its share, targets *merge* the per-reader streams instead of
/// sorting from scratch. Exposed separately so the two strategies can be
/// compared.
pub fn partition_merge_sort(
    input: &[u8],
    cfg: &PartitionSortConfig,
) -> (Vec<u8>, PartitionSortStats) {
    assert!(cfg.nodes >= 1);
    assert!(input.len().is_multiple_of(RECORD_LEN));
    let records = records_of(input);
    let n = records.len();
    let mut stats = PartitionSortStats::default();
    if n == 0 {
        stats.partition_sizes = vec![0; cfg.nodes];
        return (Vec::new(), stats);
    }

    // Splitters as above.
    let t0 = Instant::now();
    let sample_n = (cfg.samples_per_node * cfg.nodes).min(n.max(1));
    let mut sample: Vec<[u8; 10]> = (0..sample_n)
        .map(|i| {
            let idx = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n.max(1) as u64;
            records[idx as usize].key
        })
        .collect();
    sample.sort_unstable();
    let splitters: Vec<[u8; 10]> = (1..cfg.nodes)
        .map(|k| sample[k * sample.len() / cfg.nodes])
        .collect();
    stats.split_time = t0.elapsed();

    // Readers pre-sort their share, then split it into target ranges: each
    // target receives one already-sorted stream per reader.
    let t0 = Instant::now();
    let per = n.div_ceil(cfg.nodes.max(1)).max(1);
    let rep = cfg.representation;
    let reader_streams: Vec<Vec<Vec<Record>>> = std::thread::scope(|scope| {
        let splitters = &splitters;
        let handles: Vec<_> = records
            .chunks(per)
            .map(|share| {
                scope.spawn(move || {
                    let run = form_run(
                        share.iter().flat_map(|r| r.as_bytes()).copied().collect(),
                        rep,
                    );
                    let mut outs: Vec<Vec<Record>> = vec![Vec::new(); splitters.len() + 1];
                    for r in run.iter_sorted() {
                        let t = splitters.partition_point(|s| *s <= r.key);
                        outs[t].push(*r);
                    }
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect()
    });
    stats.scatter_time = t0.elapsed();

    // Targets merge their per-reader streams with a loser tree.
    let t0 = Instant::now();
    let readers = reader_streams.len();
    let streams_by_target: Vec<Vec<Vec<Record>>> = (0..cfg.nodes)
        .map(|t| (0..readers).map(|r| reader_streams[r][t].clone()).collect())
        .collect();
    stats.partition_sizes = streams_by_target
        .iter()
        .map(|streams| streams.iter().map(|s| s.len() as u64).sum())
        .collect();
    let sorted_parts: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams_by_target
            .iter()
            .map(|streams| {
                scope.spawn(move || {
                    let total: usize = streams.iter().map(|s| s.len()).sum();
                    let mut out = Vec::with_capacity(total * RECORD_LEN);
                    if streams.is_empty() {
                        return out;
                    }
                    let mut pos = vec![0usize; streams.len()];
                    let less = |pos: &Vec<usize>, a: usize, b: usize| -> bool {
                        match (streams[a].get(pos[a]), streams[b].get(pos[b])) {
                            (None, _) => false,
                            (Some(_), None) => true,
                            (Some(x), Some(y)) => (&x.key, a) < (&y.key, b),
                        }
                    };
                    let mut tree = LoserTree::new(streams.len(), |a, b| less(&pos, a, b));
                    for _ in 0..total {
                        let w = tree.winner();
                        out.extend_from_slice(streams[w][pos[w]].as_bytes());
                        pos[w] += 1;
                        tree.replay(|a, b| less(&pos, a, b));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("target"))
            .collect()
    });
    stats.sort_time = t0.elapsed();

    let t0 = Instant::now();
    let mut out = Vec::with_capacity(input.len());
    for p in sorted_parts {
        out.extend_from_slice(&p);
    }
    stats.merge_time = t0.elapsed();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, validate_records, GenConfig, KeyDistribution};

    fn dataset(n: u64, dist: KeyDistribution) -> (Vec<u8>, alphasort_dmgen::Checksum) {
        generate(GenConfig {
            records: n,
            seed: 0xC0BE,
            dist,
        })
    }

    #[test]
    fn partition_sort_produces_valid_output() {
        let (input, cs) = dataset(20_000, KeyDistribution::Random);
        let (out, stats) = partition_sort(&input, &PartitionSortConfig::default());
        let report = validate_records(&out, cs).unwrap();
        assert_eq!(report.records, 20_000);
        assert_eq!(stats.partition_sizes.len(), 4);
    }

    #[test]
    fn partition_merge_sort_produces_valid_output() {
        let (input, cs) = dataset(20_000, KeyDistribution::Random);
        let (out, _) = partition_merge_sort(&input, &PartitionSortConfig::default());
        validate_records(&out, cs).unwrap();
    }

    #[test]
    fn probabilistic_splitting_balances_random_keys() {
        let (input, _) = dataset(50_000, KeyDistribution::Random);
        let cfg = PartitionSortConfig {
            nodes: 8,
            samples_per_node: 256,
            ..Default::default()
        };
        let (_, stats) = partition_sort(&input, &cfg);
        assert!(stats.skew() < 1.35, "skew {}", stats.skew());
    }

    #[test]
    fn skewed_keys_defeat_balance_but_not_correctness() {
        let (input, cs) = dataset(10_000, KeyDistribution::DupHeavy { cardinality: 2 });
        let cfg = PartitionSortConfig {
            nodes: 8,
            ..Default::default()
        };
        let (out, stats) = partition_sort(&input, &cfg);
        validate_records(&out, cs).unwrap();
        // Two distinct keys over 8 nodes: some node gets ≥ 4× its share.
        assert!(stats.skew() > 3.0, "skew {}", stats.skew());
    }

    #[test]
    fn single_node_degenerates_to_local_sort() {
        let (input, cs) = dataset(5_000, KeyDistribution::Random);
        let cfg = PartitionSortConfig {
            nodes: 1,
            ..Default::default()
        };
        let (out, stats) = partition_sort(&input, &cfg);
        validate_records(&out, cs).unwrap();
        assert_eq!(stats.partition_sizes, vec![5_000]);
    }

    #[test]
    fn all_distributions_sort_correctly() {
        for dist in [
            KeyDistribution::Sorted,
            KeyDistribution::Reverse,
            KeyDistribution::CommonPrefix { shared: 8 },
            KeyDistribution::RandomPrintable,
        ] {
            let (input, cs) = dataset(6_000, dist);
            let (out, _) = partition_sort(&input, &PartitionSortConfig::default());
            validate_records(&out, cs).unwrap();
            let (out2, _) = partition_merge_sort(&input, &PartitionSortConfig::default());
            validate_records(&out2, cs).unwrap();
        }
    }

    #[test]
    fn empty_input() {
        let (out, _) = partition_sort(&[], &PartitionSortConfig::default());
        assert!(out.is_empty());
    }
}
