//! The merge phase: a small tournament over the QuickSorted runs.
//!
//! "AlphaSort runs a tournament scanning the ten QuickSorted runs of the
//! (key-prefix, pointer) pairs in sequential order, picking the minimum
//! key-prefix among the runs. If there is a tie, it examines the full keys
//! in the records." (§7). Because the tree has one node per *run* — ten to
//! a hundred, not a million — it stays cache resident; the expensive part
//! is the gather that follows ([`crate::gather`]).
//!
//! Two mergers:
//! * [`RunMerger`] — merges in-memory [`SortedRun`]s, yielding (run, pos)
//!   pointer pairs for the gather (one-pass sort).
//! * [`StreamMerger`] — merges record *streams* (two-pass sort's second
//!   pass, where runs come back from scratch disks).

use alphasort_dmgen::Record;

use crate::entry::checked_run_len;
use crate::kernels::TreeKernel;
use crate::rs::LoserTree;
use crate::runform::SortedRun;

/// Merged pointer: run index and sorted position within that run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergedPtr {
    /// Which run the record comes from.
    pub run: u32,
    /// Sorted position within the run.
    pub pos: u32,
}

/// K-way merger over in-memory sorted runs.
///
/// Yields [`MergedPtr`]s in global key order — the "sorted string of record
/// pointers" the workers gather from.
pub struct RunMerger<'a> {
    runs: &'a [SortedRun],
    pos: Vec<u32>,
    /// One-past-the-end sorted position per run; `run.len()` for a full
    /// merge, a partition cut for a range-restricted one.
    end: Vec<u32>,
    tree: LoserTree,
    tree_kernel: TreeKernel,
    remaining: usize,
}

impl<'a> RunMerger<'a> {
    /// Start merging `runs` (each already sorted).
    ///
    /// # Panics
    /// If `runs` is empty, or a run exceeds the
    /// [`crate::entry::MAX_RUN_RECORDS`] index ceiling (the bound arrays
    /// hold 32-bit positions; `r.len() as u32` used to wrap here silently).
    pub fn new(runs: &'a [SortedRun]) -> Self {
        Self::new_with_kernel(runs, TreeKernel::Branchy)
    }

    /// [`new`](Self::new) with an explicit tree-replay kernel.
    pub fn new_with_kernel(runs: &'a [SortedRun], tree_kernel: TreeKernel) -> Self {
        let bounds: Vec<(u32, u32)> = runs
            .iter()
            .map(|r| (0, checked_run_len(r.len(), "RunMerger::new run")))
            .collect();
        Self::with_bounds_kernel(runs, &bounds, tree_kernel)
    }

    /// Merge only `bounds[r] = [start, end)` of each run's sorted order —
    /// one range of a partitioned merge. Equal keys still tie-break by run
    /// index, so concatenating range merges planned by
    /// [`crate::pmerge`] reproduces [`new`](Self::new) byte for byte.
    ///
    /// # Panics
    /// If `runs` is empty, `bounds` and `runs` disagree in length, or a
    /// bound falls outside its run.
    pub fn with_bounds(runs: &'a [SortedRun], bounds: &[(u32, u32)]) -> Self {
        Self::with_bounds_kernel(runs, bounds, TreeKernel::Branchy)
    }

    /// [`with_bounds`](Self::with_bounds) with an explicit tree-replay
    /// kernel.
    pub fn with_bounds_kernel(
        runs: &'a [SortedRun],
        bounds: &[(u32, u32)],
        tree_kernel: TreeKernel,
    ) -> Self {
        assert!(!runs.is_empty(), "need at least one run to merge");
        assert_eq!(bounds.len(), runs.len(), "one bound pair per run");
        let mut pos = Vec::with_capacity(runs.len());
        let mut end = Vec::with_capacity(runs.len());
        let mut remaining = 0usize;
        for (r, &(s, e)) in runs.iter().zip(bounds) {
            assert!(s <= e && e as usize <= r.len(), "bounds outside run");
            pos.push(s);
            end.push(e);
            remaining += (e - s) as usize;
        }
        let tree = LoserTree::new(runs.len(), |a, b| Self::leaf_less(runs, &pos, &end, a, b));
        RunMerger {
            runs,
            pos,
            end,
            tree,
            tree_kernel,
            remaining,
        }
    }

    /// Compare run heads: prefix first (the cheap integer compare), full key
    /// on ties, run index last so the merge is deterministic and stable
    /// across runs.
    #[inline]
    fn leaf_less(runs: &[SortedRun], pos: &[u32], end: &[u32], a: usize, b: usize) -> bool {
        let (pa, pb) = (pos[a] as usize, pos[b] as usize);
        let a_live = pos[a] < end[a];
        let b_live = pos[b] < end[b];
        match (a_live, b_live) {
            (false, _) => false,
            (true, false) => true,
            (true, true) => {
                let ra = runs[a].record_at(pa);
                let rb = runs[b].record_at(pb);
                let (fa, fb) = (ra.prefix(), rb.prefix());
                if fa != fb {
                    return fa < fb;
                }
                if ra.key != rb.key {
                    return ra.key < rb.key;
                }
                a < b
            }
        }
    }

    /// Total records still to come.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Iterator for RunMerger<'_> {
    type Item = MergedPtr;

    fn next(&mut self) -> Option<MergedPtr> {
        if self.remaining == 0 {
            return None;
        }
        let w = self.tree.winner();
        let out = MergedPtr {
            run: w as u32,
            pos: self.pos[w],
        };
        self.pos[w] += 1;
        self.remaining -= 1;
        let (runs, pos, end) = (self.runs, &self.pos, &self.end);
        self.tree
            .replay_with(self.tree_kernel, |a, b| Self::leaf_less(runs, pos, end, a, b));
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// A stream of key-ascending records (one run coming back from disk).
pub trait RunStream {
    /// The record at the head of the stream, or `None` when exhausted.
    fn head(&self) -> Option<&Record>;
    /// Discard the head and expose the next record.
    ///
    /// IO-backed implementations surface read errors here.
    fn advance(&mut self) -> std::io::Result<()>;
}

/// A [`RunStream`] over an in-memory record slice (tests and small merges).
pub struct SliceStream<'a> {
    records: &'a [Record],
    pos: usize,
}

impl<'a> SliceStream<'a> {
    /// Stream over `records` (must be key-ascending).
    pub fn new(records: &'a [Record]) -> Self {
        SliceStream { records, pos: 0 }
    }
}

impl RunStream for SliceStream<'_> {
    fn head(&self) -> Option<&Record> {
        self.records.get(self.pos)
    }

    fn advance(&mut self) -> std::io::Result<()> {
        self.pos += 1;
        Ok(())
    }
}

/// K-way merger over record streams.
pub struct StreamMerger<S: RunStream> {
    streams: Vec<S>,
    tree: LoserTree,
    tree_kernel: TreeKernel,
}

impl<S: RunStream> StreamMerger<S> {
    /// Start merging `streams` (each key-ascending).
    ///
    /// # Panics
    /// If `streams` is empty.
    pub fn new(streams: Vec<S>) -> Self {
        Self::new_with_kernel(streams, TreeKernel::Branchy)
    }

    /// [`new`](Self::new) with an explicit tree-replay kernel.
    pub fn new_with_kernel(streams: Vec<S>, tree_kernel: TreeKernel) -> Self {
        assert!(!streams.is_empty(), "need at least one stream to merge");
        let tree = LoserTree::new(streams.len(), |a, b| Self::leaf_less(&streams, a, b));
        StreamMerger {
            streams,
            tree,
            tree_kernel,
        }
    }

    #[inline]
    fn leaf_less(streams: &[S], a: usize, b: usize) -> bool {
        match (streams[a].head(), streams[b].head()) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(ra), Some(rb)) => {
                let (fa, fb) = (ra.prefix(), rb.prefix());
                if fa != fb {
                    return fa < fb;
                }
                if ra.key != rb.key {
                    return ra.key < rb.key;
                }
                a < b
            }
        }
    }

    /// Pop the next record in global key order.
    pub fn next_record(&mut self) -> std::io::Result<Option<Record>> {
        let w = self.tree.winner();
        let out = match self.streams[w].head() {
            None => return Ok(None),
            Some(r) => *r,
        };
        self.streams[w].advance()?;
        let streams = &self.streams;
        self.tree
            .replay_with(self.tree_kernel, |a, b| Self::leaf_less(streams, a, b));
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runform::{form_run, Representation};
    use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution, RECORD_LEN};

    fn make_runs(n: u64, run_records: usize, dist: KeyDistribution) -> (Vec<u8>, Vec<SortedRun>) {
        let (data, _) = generate(GenConfig {
            records: n,
            seed: 4242,
            dist,
        });
        let runs = data
            .chunks(run_records * RECORD_LEN)
            .map(|c| form_run(c.to_vec(), Representation::KeyPrefix))
            .collect();
        (data, runs)
    }

    #[test]
    fn merge_produces_global_key_order() {
        let (_, runs) = make_runs(3_000, 250, KeyDistribution::Random);
        assert_eq!(runs.len(), 12);
        let merged: Vec<MergedPtr> = RunMerger::new(&runs).collect();
        assert_eq!(merged.len(), 3_000);
        let mut prev: Option<[u8; 10]> = None;
        for p in &merged {
            let k = runs[p.run as usize].record_at(p.pos as usize).key;
            if let Some(pk) = prev {
                assert!(pk <= k, "merge out of order");
            }
            prev = Some(k);
        }
    }

    #[test]
    fn merge_emits_each_pointer_once() {
        let (_, runs) = make_runs(1_000, 99, KeyDistribution::Random);
        let mut seen = std::collections::HashSet::new();
        for p in RunMerger::new(&runs) {
            assert!(seen.insert((p.run, p.pos)), "duplicate pointer {p:?}");
        }
        assert_eq!(seen.len(), 1_000);
    }

    #[test]
    fn merge_single_run_is_identity() {
        let (_, runs) = make_runs(500, 500, KeyDistribution::Random);
        assert_eq!(runs.len(), 1);
        let merged: Vec<MergedPtr> = RunMerger::new(&runs).collect();
        for (i, p) in merged.iter().enumerate() {
            assert_eq!((p.run, p.pos as usize), (0, i));
        }
    }

    #[test]
    fn merge_handles_duplicate_keys_with_run_stability() {
        let (_, runs) = make_runs(2_000, 100, KeyDistribution::DupHeavy { cardinality: 5 });
        let merged: Vec<MergedPtr> = RunMerger::new(&runs).collect();
        // On equal keys, lower run index must come first.
        for w in merged.windows(2) {
            let ka = runs[w[0].run as usize].record_at(w[0].pos as usize).key;
            let kb = runs[w[1].run as usize].record_at(w[1].pos as usize).key;
            if ka == kb && w[0].run != w[1].run {
                assert!(w[0].run < w[1].run, "tie broken against run order");
            }
        }
    }

    #[test]
    fn merge_uneven_run_lengths() {
        // 10 runs of wildly different sizes, including empty-ish tails.
        let (data, _) = generate(GenConfig::datamation(1_000, 5));
        let mut runs = Vec::new();
        let mut off = 0;
        for (i, size) in [1usize, 499, 10, 200, 90, 100, 50, 25, 20, 5]
            .iter()
            .enumerate()
        {
            let bytes = size * RECORD_LEN;
            runs.push(form_run(
                data[off..off + bytes].to_vec(),
                if i % 2 == 0 {
                    Representation::Record
                } else {
                    Representation::KeyPrefix
                },
            ));
            off += bytes;
        }
        let merged: Vec<MergedPtr> = RunMerger::new(&runs).collect();
        assert_eq!(merged.len(), 1_000);
        let keys: Vec<[u8; 10]> = merged
            .iter()
            .map(|p| runs[p.run as usize].record_at(p.pos as usize).key)
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bounded_merges_concatenate_to_the_full_merge() {
        let (_, runs) = make_runs(2_000, 170, KeyDistribution::DupHeavy { cardinality: 9 });
        let full: Vec<MergedPtr> = RunMerger::new(&runs).collect();
        let plan = crate::pmerge::plan_mem_partitions(&runs, 4, 16);
        let mut cat = Vec::new();
        for row in &plan.bounds {
            let b: Vec<(u32, u32)> = row.iter().map(|&(s, e)| (s as u32, e as u32)).collect();
            cat.extend(RunMerger::with_bounds(&runs, &b));
        }
        // Pointer-for-pointer identical: the partition respects both key
        // order and the run-index tie-break.
        assert_eq!(cat, full);
    }

    #[test]
    fn branchless_tree_merge_is_pointer_identical() {
        let (_, runs) = make_runs(2_000, 130, KeyDistribution::DupHeavy { cardinality: 4 });
        let branchy: Vec<MergedPtr> = RunMerger::new(&runs).collect();
        let branchless: Vec<MergedPtr> =
            RunMerger::new_with_kernel(&runs, TreeKernel::Branchless).collect();
        assert_eq!(branchy, branchless);
    }

    #[test]
    fn empty_bounds_yield_nothing() {
        let (_, runs) = make_runs(300, 100, KeyDistribution::Random);
        let bounds: Vec<(u32, u32)> = runs.iter().map(|_| (0, 0)).collect();
        assert_eq!(RunMerger::with_bounds(&runs, &bounds).count(), 0);
    }

    #[test]
    fn stream_merger_matches_run_merger() {
        let (data, _) = generate(GenConfig::datamation(1_200, 6));
        let records = records_of(&data);
        let mut sorted_runs: Vec<Vec<Record>> = records
            .chunks(100)
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_by_key(|a| a.key);
                v
            })
            .collect();
        sorted_runs.push(Vec::new()); // an empty stream must be harmless

        let streams: Vec<SliceStream> = sorted_runs.iter().map(|r| SliceStream::new(r)).collect();
        let mut m = StreamMerger::new(streams);
        let mut out = Vec::new();
        while let Some(r) = m.next_record().unwrap() {
            out.push(r);
        }
        assert_eq!(out.len(), 1_200);
        assert!(out.windows(2).all(|w| w[0].key <= w[1].key));
    }
}
