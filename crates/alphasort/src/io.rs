//! Record sources and sinks: what the external sort reads and writes.
//!
//! The drivers are generic over [`RecordSource`] / [`RecordSink`] so the
//! same sort runs over striped simulated disks ([`StripeSource`] /
//! [`StripeSink`]) or plain memory ([`MemSource`] / [`MemSink`]) in tests.

use std::io;
use std::sync::Arc;

use alphasort_stripefs::{RunChecksums, StripedFile, StripedReader, StripedWriter};

/// A sequential supplier of whole-record byte chunks.
pub trait RecordSource: Send {
    /// The next chunk (a whole number of records), or `None` at end.
    /// Chunk sizes are the source's choice (a striped source returns
    /// strides).
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>>;

    /// Total bytes this source will deliver, if known up front (a striped
    /// file knows; a pipe would not).
    fn size_hint(&self) -> Option<u64>;
}

/// A sequential consumer of whole-record byte chunks.
pub trait RecordSink: Send {
    /// Append `data` (a whole number of records).
    fn push(&mut self, data: &[u8]) -> io::Result<()>;

    /// Flush everything and return the total byte count accepted.
    fn complete(&mut self) -> io::Result<u64>;
}

/// In-memory source: hands out the buffer in fixed-size chunks.
pub struct MemSource {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl MemSource {
    /// Serve `data` in `chunk`-byte pieces (the final piece may be short).
    pub fn new(data: Vec<u8>, chunk: usize) -> Self {
        assert!(chunk > 0);
        MemSource {
            data,
            pos: 0,
            chunk,
        }
    }
}

impl RecordSource for MemSource {
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let end = (self.pos + self.chunk).min(self.data.len());
        let chunk = self.data[self.pos..end].to_vec();
        self.pos = end;
        Ok(Some(chunk))
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.data.len() as u64)
    }
}

/// In-memory sink: accumulates everything into one buffer.
#[derive(Default)]
pub struct MemSink {
    data: Vec<u8>,
}

impl MemSink {
    /// Fresh empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated output.
    pub fn into_inner(self) -> Vec<u8> {
        self.data
    }

    /// Borrow the accumulated output.
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

impl RecordSink for MemSink {
    fn push(&mut self, data: &[u8]) -> io::Result<()> {
        self.data.extend_from_slice(data);
        Ok(())
    }

    fn complete(&mut self) -> io::Result<u64> {
        Ok(self.data.len() as u64)
    }
}

/// Source over a striped file, with the reader's N-deep read-ahead.
/// Optionally restricted to a byte window of the file
/// ([`verified_window`](Self::verified_window)): the reader fetches whole
/// (checksum-indexed) strides and this adapter trims the window edges.
pub struct StripeSource {
    reader: StripedReader,
    /// Leading bytes of the first stride to drop (window start within its
    /// stride); 0 for whole-file sources.
    skip: usize,
    /// Window bytes still to deliver (the whole file for plain sources).
    remaining: u64,
    /// Window length, for `size_hint`.
    total: u64,
}

impl StripeSource {
    fn whole(reader: StripedReader) -> Self {
        let total = reader.total_len();
        StripeSource {
            reader,
            skip: 0,
            remaining: total,
            total,
        }
    }

    /// Read `file` sequentially with the default (triple-buffer) depth.
    pub fn new(file: Arc<StripedFile>) -> Self {
        Self::whole(StripedReader::new(file))
    }

    /// Read `file` sequentially keeping `depth` strides in flight.
    pub fn with_depth(file: Arc<StripedFile>, depth: usize) -> Self {
        Self::whole(StripedReader::with_depth(file, depth))
    }

    /// Read `file` sequentially, verifying every delivered stride against
    /// `checks`; a corrupt segment surfaces as `InvalidData` naming the
    /// member disk and offsets.
    pub fn verified(file: Arc<StripedFile>, checks: RunChecksums) -> io::Result<Self> {
        Ok(Self::whole(StripedReader::verified(file, checks)?))
    }

    /// Read only the byte window `[off, off + len)` of `file`, verifying
    /// the strides it touches against the whole-file `checks`. The first
    /// and last strides are fetched whole (checksums are per stride) and
    /// trimmed here, so callers see exactly the window — the partitioned
    /// merge reads one key range of a scratch run through this.
    pub fn verified_window(
        file: Arc<StripedFile>,
        checks: RunChecksums,
        off: u64,
        len: u64,
    ) -> io::Result<Self> {
        let stride = file.stride();
        let aligned = off - off % stride;
        let reader = StripedReader::verified_ranged(file, checks, aligned, off + len)?;
        Ok(StripeSource {
            reader,
            skip: (off - aligned) as usize,
            remaining: len,
            total: len,
        })
    }
}

impl RecordSource for StripeSource {
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        while self.remaining > 0 {
            let Some(mut chunk) = self.reader.next_stride().transpose()? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("striped source ended {} bytes short of its window", self.remaining),
                ));
            };
            if self.skip >= chunk.len() {
                self.skip -= chunk.len();
                continue;
            }
            if self.skip > 0 {
                chunk.drain(..self.skip);
                self.skip = 0;
            }
            if chunk.len() as u64 > self.remaining {
                chunk.truncate(self.remaining as usize);
            }
            self.remaining -= chunk.len() as u64;
            return Ok(Some(chunk));
        }
        Ok(None)
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

/// Sink over a striped file, with the writer's N-deep write-behind.
pub struct StripeSink {
    writer: Option<StripedWriter>,
    written: u64,
    /// Whether the writer fingerprints strides as they go out.
    checksummed: bool,
    /// Fingerprints collected by `complete()` on a checksummed sink.
    checks: Option<RunChecksums>,
}

impl StripeSink {
    /// Write `file` sequentially with the default (triple-buffer) depth.
    pub fn new(file: Arc<StripedFile>) -> Self {
        StripeSink {
            writer: Some(StripedWriter::new(file)),
            written: 0,
            checksummed: false,
            checks: None,
        }
    }

    /// Write `file` sequentially keeping `depth` strides in flight.
    pub fn with_depth(file: Arc<StripedFile>, depth: usize) -> Self {
        StripeSink {
            writer: Some(StripedWriter::with_depth(file, depth)),
            written: 0,
            checksummed: false,
            checks: None,
        }
    }

    /// Like [`new`](Self::new), but every issued stride is fingerprinted;
    /// after `complete()`, [`take_checksums`](Self::take_checksums) yields
    /// the recorded [`RunChecksums`].
    pub fn checksummed(file: Arc<StripedFile>) -> Self {
        StripeSink {
            writer: Some(StripedWriter::with_checksums(file)),
            written: 0,
            checksummed: true,
            checks: None,
        }
    }

    /// The fingerprints recorded by a [`checksummed`](Self::checksummed)
    /// sink, available once after `complete()`.
    pub fn take_checksums(&mut self) -> Option<RunChecksums> {
        self.checks.take()
    }
}

impl RecordSink for StripeSink {
    fn push(&mut self, data: &[u8]) -> io::Result<()> {
        match self.writer.as_mut() {
            Some(w) => w.push(data),
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "push on a stripe sink that was already completed",
            )),
        }
    }

    fn complete(&mut self) -> io::Result<u64> {
        if let Some(w) = self.writer.take() {
            if self.checksummed {
                let (n, checks) = w.finish_checksummed()?;
                self.written = n;
                self.checks = Some(checks);
            } else {
                self.written = w.finish()?;
            }
        }
        Ok(self.written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
    use alphasort_stripefs::Volume;

    #[test]
    fn mem_source_chunks_and_hints() {
        let mut s = MemSource::new((0..=99u8).collect(), 40);
        assert_eq!(s.size_hint(), Some(100));
        assert_eq!(s.next_chunk().unwrap().unwrap().len(), 40);
        assert_eq!(s.next_chunk().unwrap().unwrap().len(), 40);
        assert_eq!(s.next_chunk().unwrap().unwrap().len(), 20);
        assert!(s.next_chunk().unwrap().is_none());
    }

    #[test]
    fn mem_sink_accumulates() {
        let mut k = MemSink::new();
        k.push(b"ab").unwrap();
        k.push(b"cd").unwrap();
        assert_eq!(k.complete().unwrap(), 4);
        assert_eq!(k.into_inner(), b"abcd");
    }

    #[test]
    fn stripe_source_and_sink_roundtrip() {
        let disks = (0..3)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        let v = Volume::new(Arc::new(IoEngine::new(disks)));
        let data: Vec<u8> = (0..5_000).map(|i| (i % 241) as u8).collect();

        let out = Arc::new(v.create_across_all("out", 256, data.len() as u64));
        let mut sink = StripeSink::new(Arc::clone(&out));
        for c in data.chunks(333) {
            sink.push(c).unwrap();
        }
        assert_eq!(sink.complete().unwrap(), 5_000);

        let mut src = StripeSource::new(out);
        assert_eq!(src.size_hint(), Some(5_000));
        let mut got = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            got.extend_from_slice(&c);
        }
        assert_eq!(got, data);
    }
}
