//! The two-pass sort: spill runs to scratch, merge them back.
//!
//! §6: "When should the QuickSorted intermediate runs be stored on disk? A
//! two-pass sort uses less memory, but uses twice the disk bandwidth."
//! Pass 1 reads the input in memory-sized chunks, QuickSorts each, and
//! streams the sorted run to a scratch file. Pass 2 opens every run and
//! merges the record streams through a tournament into the output sink.
//! Memory use is one run buffer in pass 1 and one read-ahead buffer per run
//! in pass 2, regardless of input size.

use std::collections::VecDeque;
use std::io;
use std::time::Instant;

use alphasort_dmgen::RECORD_LEN;
use alphasort_obs as obs;

use crate::driver::scratch::{BufferedRunStream, RecoveredRun, ScratchStore};
use crate::driver::{SortConfig, SortOutcome};
use crate::io::{RecordSink, RecordSource};
use crate::merge::StreamMerger;
use crate::parallel::SortPool;
use crate::planner::PassPlan;
use crate::runform::SortedRun;
use crate::stats::{timed_phase, SortStats};

/// Sort `source` into `sink`, staging runs in `scratch`.
pub fn two_pass<Src, Snk, Scr>(
    source: &mut Src,
    sink: &mut Snk,
    scratch: &mut Scr,
    cfg: &SortConfig,
) -> io::Result<SortOutcome>
where
    Src: RecordSource,
    Snk: RecordSink,
    Scr: ScratchStore,
{
    assert!(cfg.run_records > 0 && cfg.gather_batch > 0);
    let mut top = obs::span(obs::phase::TWO_PASS);
    let t_start = Instant::now();
    let mut stats = SortStats {
        one_pass: false,
        ..Default::default()
    };
    let run_bytes = cfg.run_records * RECORD_LEN;

    // ---- pass 1: run formation + spill, overlapped ------------------------
    // Workers QuickSort run buffers while the root keeps reading and spills
    // completed runs — the §5 chore decomposition applied to the spill pass
    // (runs must reach scratch in submission order, so the pool hands them
    // back in order).
    //
    // A resumed scratch reports the input ranges its surviving runs cover;
    // those bytes are read and discarded (the sorted records already sit in
    // scratch) and only the gaps are re-sorted and re-spilled.
    let mut pending: VecDeque<RecoveredRun> = {
        let mut spans = scratch.recovered_runs()?;
        spans.sort_by_key(|r| r.start_record);
        spans.into()
    };
    let resuming = !pending.is_empty();
    // Absolute byte position within the input.
    let mut abs: u64 = 0;
    let mut cur: Vec<u8> = Vec::with_capacity(run_bytes);
    let mut pool = SortPool::new(cfg.workers, cfg.representation);
    let spill = |run: &SortedRun, stats: &mut SortStats, scratch: &mut Scr| -> io::Result<()> {
        stats.runs += 1;
        stats.run_lengths.push(run.len() as u64);
        stats.records += run.len() as u64;
        if resuming {
            stats.runs_reformed += 1;
            obs::metrics::counter_add("run.reformed", 1);
        }
        timed_phase(
            obs::phase::SPILL,
            &mut stats.spill_time,
            || -> io::Result<()> {
                let mut writer = scratch.create_run((run.len() * RECORD_LEN) as u64)?;
                // Stream the run out in gather-batch sized pieces so the spill
                // writer's pipeline stays busy without a whole-run staging copy.
                let mut staging = Vec::with_capacity(cfg.gather_batch * RECORD_LEN);
                for rec in run.iter_sorted() {
                    staging.extend_from_slice(rec.as_bytes());
                    if staging.len() >= cfg.gather_batch * RECORD_LEN {
                        writer.push(&staging)?;
                        staging.clear();
                    }
                }
                if !staging.is_empty() {
                    writer.push(&staging)?;
                }
                scratch.seal_run(writer)
            },
        )
    };

    loop {
        let mut rd = obs::span(obs::phase::READ);
        let t0 = Instant::now();
        let chunk = source.next_chunk();
        stats.read_wait += t0.elapsed();
        if let Ok(Some(c)) = &chunk {
            rd.attr("bytes", c.len() as u64);
        }
        drop(rd);
        let Some(chunk) = chunk? else { break };
        stats.bytes_sorted += chunk.len() as u64;
        let mut off = 0;
        while off < chunk.len() {
            // Inside a recovered span: these records already sit in scratch,
            // sorted and checksummed. Account the run when its span is fully
            // passed; nothing is re-sorted.
            if let Some(r) = pending.front() {
                let span_start = r.start_record * RECORD_LEN as u64;
                let span_end = span_start + r.records * RECORD_LEN as u64;
                if abs >= span_start {
                    let skip = ((span_end - abs) as usize).min(chunk.len() - off);
                    off += skip;
                    abs += skip as u64;
                    if abs == span_end {
                        stats.runs += 1;
                        stats.run_lengths.push(r.records);
                        stats.records += r.records;
                        stats.runs_recovered += 1;
                        obs::metrics::counter_add("run.recovered", 1);
                        pending.pop_front();
                    }
                    continue;
                }
            }
            // Take at most up to the next recovered span: a gap run must
            // end exactly at the span boundary so the re-formed runs cover
            // precisely the records the recovered ones do not.
            let until_span = pending
                .front()
                .map(|r| r.start_record * RECORD_LEN as u64 - abs)
                .unwrap_or(u64::MAX);
            let take = (run_bytes - cur.len())
                .min(chunk.len() - off)
                .min(until_span.min(usize::MAX as u64) as usize);
            cur.extend_from_slice(&chunk[off..off + take]);
            off += take;
            abs += take as u64;
            let at_span_boundary = take as u64 == until_span;
            if cur.len() == run_bytes || (at_span_boundary && !cur.is_empty()) {
                let full = std::mem::replace(&mut cur, Vec::with_capacity(run_bytes));
                pool.submit(full);
            }
        }
        // Spill whatever the workers have finished, without stalling input.
        while let Some((run, d)) = pool.try_next_in_order() {
            stats.sort_time += d;
            spill(&run, &mut stats, scratch)?;
        }
    }
    if !cur.is_empty() {
        if !cur.len().is_multiple_of(RECORD_LEN) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "input ends mid-record ({} trailing bytes)",
                    cur.len() % RECORD_LEN
                ),
            ));
        }
        pool.submit(std::mem::take(&mut cur));
    }
    while let Some((run, d)) = pool.next_in_order() {
        stats.sort_time += d;
        spill(&run, &mut stats, scratch)?;
    }
    drop(pool.finish()); // joins worker threads (no runs remain)

    if let Some(r) = pending.front() {
        // The scratch thinks it holds runs past the end of the input: the
        // resume was pointed at a different (or truncated) input file.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "recovered run covering records {}..{} extends past the input \
                 ({} bytes read); wrong or truncated input for this scratch manifest",
                r.start_record,
                r.start_record + r.records,
                abs,
            ),
        ));
    }

    if stats.records == 0 {
        let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
        stats.elapsed = t_start.elapsed();
        return Ok(SortOutcome {
            stats,
            bytes,
            plan: PassPlan::TwoPass,
        });
    }

    // ---- intermediate cascade passes (runs > fan-in) -----------------------
    // Beyond the paper's regime: when inputs are thousands of times memory,
    // the run count exceeds a practical merge width, so groups of `fanin`
    // runs merge into longer scratch runs until one final merge remains
    // (Knuth's cascade merge). Each extra level costs one more full
    // read+write of the data — the same bandwidth arithmetic as §6.
    let fanin = cfg.max_fanin.max(2);
    let mut sources = timed_phase(obs::phase::SPILL, &mut stats.spill_time, || {
        scratch.open_runs()
    })?;
    while sources.len() > fanin {
        stats.merge_passes += 1;
        let level = std::mem::take(&mut sources);
        let mut level_iter = level.into_iter().peekable();
        while level_iter.peek().is_some() {
            let group: Vec<Scr::Source> = level_iter.by_ref().take(fanin).collect();
            // The merged run is as big as its inputs together; scratch
            // stores allocate extents from this hint.
            let group_bytes: u64 = group.iter().filter_map(|s| s.size_hint()).sum();
            let mut streams = Vec::with_capacity(group.len());
            for s in group {
                streams.push(BufferedRunStream::new(s)?);
            }
            let mut merger = StreamMerger::new(streams);
            timed_phase(
                obs::phase::SPILL,
                &mut stats.spill_time,
                || -> io::Result<()> {
                    let mut writer = scratch.create_run(group_bytes)?;
                    let mut staging = Vec::with_capacity(cfg.gather_batch * RECORD_LEN);
                    while let Some(r) = merger.next_record()? {
                        staging.extend_from_slice(r.as_bytes());
                        if staging.len() >= cfg.gather_batch * RECORD_LEN {
                            writer.push(&staging)?;
                            staging.clear();
                        }
                    }
                    if !staging.is_empty() {
                        writer.push(&staging)?;
                    }
                    scratch.seal_run(writer)
                },
            )?;
        }
        sources = timed_phase(obs::phase::SPILL, &mut stats.spill_time, || {
            scratch.open_runs()
        })?;
    }

    // ---- final merge into the sink -----------------------------------------
    let mut streams = Vec::with_capacity(sources.len());
    for s in sources {
        streams.push(BufferedRunStream::new(s)?);
    }
    let mut merger = StreamMerger::new(streams);
    let mut staging = Vec::with_capacity(cfg.gather_batch * RECORD_LEN);
    let batch_bytes = cfg.gather_batch * RECORD_LEN;
    loop {
        // Merge a whole output batch per timing/span window: per-record
        // clock reads (and per-record spans) would dominate the merge
        // itself at 10M records.
        let done = timed_phase(
            obs::phase::MERGE,
            &mut stats.merge_time,
            || -> io::Result<bool> {
                while staging.len() < batch_bytes {
                    match merger.next_record()? {
                        Some(r) => staging.extend_from_slice(r.as_bytes()),
                        None => return Ok(true),
                    }
                }
                Ok(false)
            },
        )?;
        if !staging.is_empty() {
            timed_phase(obs::phase::WRITE, &mut stats.write_wait, || {
                sink.push(&staging)
            })?;
            staging.clear();
        }
        if done {
            break;
        }
    }
    let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
    stats.elapsed = t_start.elapsed();
    obs::metrics::counter_add("sort.records", stats.records);
    obs::metrics::counter_add("sort.bytes", stats.bytes_sorted);
    top.attr("records", stats.records);
    top.attr("bytes", stats.bytes_sorted);
    Ok(SortOutcome {
        stats,
        bytes,
        plan: PassPlan::TwoPass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::scratch::MemScratch;
    use crate::io::{MemSink, MemSource};
    use alphasort_dmgen::{generate, validate_records, GenConfig, KeyDistribution};

    fn sort_two_pass(n: u64, dist: KeyDistribution, cfg: &SortConfig) {
        let (data, cs) = generate(GenConfig {
            records: n,
            seed: 0xF00D,
            dist,
        });
        let mut source = MemSource::new(data, 12_345); // deliberately ragged
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(40 * RECORD_LEN);
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, cfg).unwrap();
        assert_eq!(outcome.stats.records, n);
        assert!(!outcome.stats.one_pass);
        let report = validate_records(sink.data(), cs).unwrap();
        assert_eq!(report.records, n);
    }

    #[test]
    fn sorts_with_many_runs() {
        let cfg = SortConfig {
            run_records: 250,
            gather_batch: 100,
            ..Default::default()
        };
        sort_two_pass(5_000, KeyDistribution::Random, &cfg); // 20 runs
    }

    #[test]
    fn sorts_with_workers_overlapping_spill() {
        let cfg = SortConfig {
            run_records: 200,
            gather_batch: 64,
            workers: 3,
            ..Default::default()
        };
        sort_two_pass(6_000, KeyDistribution::Random, &cfg); // 30 runs
    }

    #[test]
    fn sorts_with_single_run() {
        let cfg = SortConfig {
            run_records: 100_000,
            gather_batch: 100,
            ..Default::default()
        };
        sort_two_pass(1_000, KeyDistribution::Random, &cfg);
    }

    #[test]
    fn sorts_adversarial_distributions() {
        let cfg = SortConfig {
            run_records: 300,
            gather_batch: 64,
            ..Default::default()
        };
        for dist in [
            KeyDistribution::Sorted,
            KeyDistribution::Reverse,
            KeyDistribution::DupHeavy { cardinality: 2 },
            KeyDistribution::CommonPrefix { shared: 10 },
        ] {
            sort_two_pass(2_000, dist, &cfg);
        }
    }

    #[test]
    fn empty_input() {
        let mut source = MemSource::new(Vec::new(), 100);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(100 * RECORD_LEN);
        let outcome =
            two_pass(&mut source, &mut sink, &mut scratch, &SortConfig::default()).unwrap();
        assert_eq!(outcome.bytes, 0);
    }

    #[test]
    fn cascade_merge_handles_many_runs() {
        // 40 runs with fan-in 4: two intermediate levels (40 → 10 → 3),
        // then the final merge.
        let (data, cs) = generate(GenConfig::datamation(2_000, 21));
        let mut source = MemSource::new(data, 10_000);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(25 * RECORD_LEN);
        let cfg = SortConfig {
            run_records: 50, // 40 runs
            gather_batch: 32,
            max_fanin: 4,
            ..Default::default()
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        assert_eq!(outcome.stats.runs, 40);
        assert_eq!(outcome.stats.merge_passes, 2);
        let report = validate_records(sink.data(), cs).unwrap();
        assert_eq!(report.records, 2_000);
    }

    #[test]
    fn cascade_fanin_exactly_at_boundary_needs_no_extra_pass() {
        let (data, cs) = generate(GenConfig::datamation(1_000, 22));
        let mut source = MemSource::new(data, 10_000);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(25 * RECORD_LEN);
        let cfg = SortConfig {
            run_records: 125, // exactly 8 runs
            gather_batch: 32,
            max_fanin: 8,
            ..Default::default()
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        assert_eq!(outcome.stats.merge_passes, 0);
        validate_records(sink.data(), cs).unwrap();
    }

    #[test]
    fn run_count_matches_input_over_memory() {
        let (data, _) = generate(GenConfig::datamation(1_000, 2));
        let mut source = MemSource::new(data, 64 * 1024);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(50 * RECORD_LEN);
        let cfg = SortConfig {
            run_records: 128,
            gather_batch: 64,
            ..Default::default()
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        assert_eq!(outcome.stats.runs, 8); // ceil(1000 / 128)
        assert_eq!(*outcome.stats.run_lengths.last().unwrap(), 1_000 % 128);
    }
}
