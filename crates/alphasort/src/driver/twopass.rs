//! The two-pass sort: spill runs to scratch, merge them back.
//!
//! §6: "When should the QuickSorted intermediate runs be stored on disk? A
//! two-pass sort uses less memory, but uses twice the disk bandwidth."
//! Pass 1 reads the input in memory-sized chunks, QuickSorts each, and
//! streams the sorted run to a scratch file. Pass 2 opens every run and
//! merges the record streams through a tournament into the output sink.
//! Memory use is one run buffer in pass 1 and one read-ahead buffer per run
//! in pass 2, regardless of input size.

use std::collections::VecDeque;
use std::io;
use std::sync::mpsc::sync_channel;
use std::time::{Duration, Instant};

use alphasort_dmgen::RECORD_LEN;
use alphasort_obs as obs;

use crate::driver::scratch::{BufferedRunStream, RecoveredRun, ScratchStore};
use crate::driver::{SortConfig, SortOutcome};
use crate::io::{RecordSink, RecordSource};
use crate::merge::StreamMerger;
use crate::parallel::SortPool;
use crate::planner::PassPlan;
use crate::pmerge::{plan_partitions_with, SAMPLES_PER_RANGE};
use crate::runform::SortedRun;
use crate::stats::{timed_phase, SortStats};

/// Sort `source` into `sink`, staging runs in `scratch`.
pub fn two_pass<Src, Snk, Scr>(
    source: &mut Src,
    sink: &mut Snk,
    scratch: &mut Scr,
    cfg: &SortConfig,
) -> io::Result<SortOutcome>
where
    Src: RecordSource,
    Snk: RecordSink,
    Scr: ScratchStore,
{
    if cfg.layout == crate::entry::RecordLayout::VarLen {
        // Var-len runs stage in their own in-memory scratch (striped
        // var-len scratch is a roadmap item); the caller's fixed-layout
        // scratch is not touched. Resumable var-len sorts call
        // `varlen::two_pass_var` directly with a recovered scratch.
        let mut vs = crate::varlen::MemVarScratch::new();
        return crate::varlen::two_pass_var(source, sink, &mut vs, cfg);
    }
    assert!(cfg.run_records > 0 && cfg.gather_batch > 0);
    let mut top = obs::span(obs::phase::TWO_PASS);
    let t_start = Instant::now();
    let mut stats = SortStats {
        one_pass: false,
        ..Default::default()
    };
    let run_bytes = cfg.run_records * RECORD_LEN;

    // ---- pass 1: run formation + spill, overlapped ------------------------
    // Workers QuickSort run buffers while the root keeps reading and spills
    // completed runs — the §5 chore decomposition applied to the spill pass
    // (runs must reach scratch in submission order, so the pool hands them
    // back in order).
    //
    // A resumed scratch reports the input ranges its surviving runs cover;
    // those bytes are read and discarded (the sorted records already sit in
    // scratch) and only the gaps are re-sorted and re-spilled.
    let mut pending: VecDeque<RecoveredRun> = {
        let mut spans = scratch.recovered_runs()?;
        spans.sort_by_key(|r| r.start_record);
        spans.into()
    };
    let resuming = !pending.is_empty();
    // Absolute byte position within the input.
    let mut abs: u64 = 0;
    let mut cur: Vec<u8> = Vec::with_capacity(run_bytes);
    let mut pool = SortPool::with_kernel(cfg.workers, cfg.representation, cfg.kernel);
    let spill = |run: &SortedRun, stats: &mut SortStats, scratch: &mut Scr| -> io::Result<()> {
        stats.runs += 1;
        stats.run_lengths.push(run.len() as u64);
        stats.records += run.len() as u64;
        if resuming {
            stats.runs_reformed += 1;
            obs::metrics::counter_add("run.reformed", 1);
        }
        timed_phase(
            obs::phase::SPILL,
            &mut stats.spill_time,
            || -> io::Result<()> {
                let mut writer = scratch.create_run((run.len() * RECORD_LEN) as u64)?;
                // Stream the run out in gather-batch sized pieces so the spill
                // writer's pipeline stays busy without a whole-run staging copy.
                let mut staging = Vec::with_capacity(cfg.gather_batch * RECORD_LEN);
                for rec in run.iter_sorted() {
                    staging.extend_from_slice(rec.as_bytes());
                    if staging.len() >= cfg.gather_batch * RECORD_LEN {
                        writer.push(&staging)?;
                        staging.clear();
                    }
                }
                if !staging.is_empty() {
                    writer.push(&staging)?;
                }
                scratch.seal_run(writer)
            },
        )
    };

    loop {
        let mut rd = obs::span(obs::phase::READ);
        let t0 = Instant::now();
        let chunk = source.next_chunk();
        stats.read_wait += t0.elapsed();
        if let Ok(Some(c)) = &chunk {
            rd.attr("bytes", c.len() as u64);
        }
        drop(rd);
        let Some(chunk) = chunk? else { break };
        stats.bytes_sorted += chunk.len() as u64;
        let mut off = 0;
        while off < chunk.len() {
            // Inside a recovered span: these records already sit in scratch,
            // sorted and checksummed. Account the run when its span is fully
            // passed; nothing is re-sorted.
            if let Some(r) = pending.front() {
                let span_start = r.start_record * RECORD_LEN as u64;
                let span_end = span_start + r.records * RECORD_LEN as u64;
                if abs >= span_start {
                    let skip = ((span_end - abs) as usize).min(chunk.len() - off);
                    off += skip;
                    abs += skip as u64;
                    if abs == span_end {
                        stats.runs += 1;
                        stats.run_lengths.push(r.records);
                        stats.records += r.records;
                        stats.runs_recovered += 1;
                        obs::metrics::counter_add("run.recovered", 1);
                        pending.pop_front();
                    }
                    continue;
                }
            }
            // Take at most up to the next recovered span: a gap run must
            // end exactly at the span boundary so the re-formed runs cover
            // precisely the records the recovered ones do not.
            let until_span = pending
                .front()
                .map(|r| r.start_record * RECORD_LEN as u64 - abs)
                .unwrap_or(u64::MAX);
            let take = (run_bytes - cur.len())
                .min(chunk.len() - off)
                .min(until_span.min(usize::MAX as u64) as usize);
            cur.extend_from_slice(&chunk[off..off + take]);
            off += take;
            abs += take as u64;
            let at_span_boundary = take as u64 == until_span;
            if cur.len() == run_bytes || (at_span_boundary && !cur.is_empty()) {
                let full = std::mem::replace(&mut cur, Vec::with_capacity(run_bytes));
                pool.submit(full);
            }
        }
        // Spill whatever the workers have finished, without stalling input.
        while let Some((run, d)) = pool.try_next_in_order() {
            stats.sort_time += d;
            spill(&run, &mut stats, scratch)?;
        }
    }
    if !cur.is_empty() {
        if !cur.len().is_multiple_of(RECORD_LEN) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "input ends mid-record ({} trailing bytes)",
                    cur.len() % RECORD_LEN
                ),
            ));
        }
        pool.submit(std::mem::take(&mut cur));
    }
    while let Some((run, d)) = pool.next_in_order() {
        stats.sort_time += d;
        spill(&run, &mut stats, scratch)?;
    }
    drop(pool.finish()); // joins worker threads (no runs remain)

    if let Some(r) = pending.front() {
        // The scratch thinks it holds runs past the end of the input: the
        // resume was pointed at a different (or truncated) input file.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "recovered run covering records {}..{} extends past the input \
                 ({} bytes read); wrong or truncated input for this scratch manifest",
                r.start_record,
                r.start_record + r.records,
                abs,
            ),
        ));
    }

    if stats.records == 0 {
        let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
        stats.elapsed = t_start.elapsed();
        return Ok(SortOutcome {
            stats,
            bytes,
            plan: PassPlan::TwoPass,
        });
    }

    // ---- intermediate cascade passes (runs > fan-in) -----------------------
    // Beyond the paper's regime: when inputs are thousands of times memory,
    // the run count exceeds a practical merge width, so groups of `fanin`
    // runs merge into longer scratch runs until one final merge remains
    // (Knuth's cascade merge). Each extra level costs one more full
    // read+write of the data — the same bandwidth arithmetic as §6.
    let fanin = cfg.max_fanin.max(2);
    while scratch.sealed_run_records()?.len() > fanin {
        stats.merge_passes += 1;
        let level = timed_phase(obs::phase::SPILL, &mut stats.spill_time, || {
            scratch.open_runs()
        })?;
        let mut level_iter = level.into_iter().peekable();
        while level_iter.peek().is_some() {
            let group: Vec<Scr::Source> = level_iter.by_ref().take(fanin).collect();
            // The merged run is as big as its inputs together; scratch
            // stores allocate extents from this hint.
            let group_bytes: u64 = group.iter().filter_map(|s| s.size_hint()).sum();
            let mut streams = Vec::with_capacity(group.len());
            for s in group {
                streams.push(BufferedRunStream::new(s)?);
            }
            let mut merger = StreamMerger::new_with_kernel(streams, cfg.kernel.tree());
            timed_phase(
                obs::phase::SPILL,
                &mut stats.spill_time,
                || -> io::Result<()> {
                    let mut writer = scratch.create_run(group_bytes)?;
                    let mut staging = Vec::with_capacity(cfg.gather_batch * RECORD_LEN);
                    while let Some(r) = merger.next_record()? {
                        staging.extend_from_slice(r.as_bytes());
                        if staging.len() >= cfg.gather_batch * RECORD_LEN {
                            writer.push(&staging)?;
                            staging.clear();
                        }
                    }
                    if !staging.is_empty() {
                        writer.push(&staging)?;
                    }
                    scratch.seal_run(writer)
                },
            )?;
        }
    }

    // ---- final merge into the sink -----------------------------------------
    if cfg.merge_workers > 0 {
        let bytes = partitioned_final_merge(sink, scratch, cfg, &mut stats)?;
        stats.elapsed = t_start.elapsed();
        obs::metrics::counter_add("sort.records", stats.records);
        obs::metrics::counter_add("sort.bytes", stats.bytes_sorted);
        top.attr("records", stats.records);
        top.attr("bytes", stats.bytes_sorted);
        return Ok(SortOutcome {
            stats,
            bytes,
            plan: PassPlan::TwoPass,
        });
    }
    let sources = timed_phase(obs::phase::SPILL, &mut stats.spill_time, || {
        scratch.open_runs()
    })?;
    let mut streams = Vec::with_capacity(sources.len());
    for s in sources {
        streams.push(BufferedRunStream::new(s)?);
    }
    let mut merger = StreamMerger::new_with_kernel(streams, cfg.kernel.tree());
    let mut staging = Vec::with_capacity(cfg.gather_batch * RECORD_LEN);
    let batch_bytes = cfg.gather_batch * RECORD_LEN;
    loop {
        // Merge a whole output batch per timing/span window: per-record
        // clock reads (and per-record spans) would dominate the merge
        // itself at 10M records.
        let done = timed_phase(
            obs::phase::MERGE,
            &mut stats.merge_time,
            || -> io::Result<bool> {
                while staging.len() < batch_bytes {
                    match merger.next_record()? {
                        Some(r) => staging.extend_from_slice(r.as_bytes()),
                        None => return Ok(true),
                    }
                }
                Ok(false)
            },
        )?;
        if !staging.is_empty() {
            timed_phase(obs::phase::WRITE, &mut stats.write_wait, || {
                sink.push(&staging)
            })?;
            staging.clear();
        }
        if done {
            break;
        }
    }
    let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
    stats.elapsed = t_start.elapsed();
    obs::metrics::counter_add("sort.records", stats.records);
    obs::metrics::counter_add("sort.bytes", stats.bytes_sorted);
    top.attr("records", stats.records);
    top.attr("bytes", stats.bytes_sorted);
    Ok(SortOutcome {
        stats,
        bytes,
        plan: PassPlan::TwoPass,
    })
}

/// Partitioned final merge: sampled splitters (probed via
/// [`ScratchStore::key_at`]) cut every sealed run into `cfg.merge_workers`
/// disjoint key ranges; each range merges on its own thread reading
/// verified range windows of the runs, and the staged buffers stream to
/// the sink in range order. Splitter routing is a pure function of the key
/// and per-range merges keep the run-index tie-break, so the concatenated
/// ranges are byte-identical to the serial final merge.
fn partitioned_final_merge<Snk, Scr>(
    sink: &mut Snk,
    scratch: &mut Scr,
    cfg: &SortConfig,
    stats: &mut SortStats,
) -> io::Result<u64>
where
    Snk: RecordSink,
    Scr: ScratchStore,
{
    let run_lens = scratch.sealed_run_records()?;
    let plan = timed_phase(obs::phase::MERGE, &mut stats.merge_time, || {
        plan_partitions_with(&run_lens, cfg.merge_workers, SAMPLES_PER_RANGE, |r, pos| {
            scratch.key_at(r, pos)
        })
    })?;
    stats.merge_range_records = plan.range_records.clone();
    // Open every (range, run) window up front on the driver thread: the
    // scratch handle is `&mut`, but the sources it yields are `Send` and
    // move into the range workers. Empty cuts are skipped.
    let mut range_sources: Vec<Vec<Scr::Source>> = Vec::with_capacity(plan.ranges());
    for row in &plan.bounds {
        let mut srcs = Vec::new();
        for (run, &(s, e)) in row.iter().enumerate() {
            if e > s {
                srcs.push(scratch.open_run_range(run, s, e - s)?);
            }
        }
        range_sources.push(srcs);
    }

    let batch_bytes = cfg.gather_batch * RECORD_LEN;
    let tree_kernel = cfg.kernel.tree();
    let track = obs::current_track();
    let durations = std::thread::scope(|scope| -> io::Result<Vec<Duration>> {
        let mut handles = Vec::with_capacity(range_sources.len());
        let mut rxs = Vec::with_capacity(range_sources.len());
        for (range, srcs) in range_sources.into_iter().enumerate() {
            // A short pipeline per range: workers stay a few batches ahead
            // of the sink without staging whole ranges in memory.
            let (tx, rx) = sync_channel::<Vec<u8>>(4);
            rxs.push(rx);
            let records = plan.range_records[range];
            let track = track.clone();
            handles.push(scope.spawn(move || -> io::Result<Duration> {
                obs::adopt_track(track);
                let mut g = obs::span(obs::phase::MERGE);
                g.attr("range", range as u64);
                g.attr("records", records);
                let t0 = Instant::now();
                if srcs.is_empty() {
                    return Ok(t0.elapsed());
                }
                let mut streams = Vec::with_capacity(srcs.len());
                for s in srcs {
                    streams.push(BufferedRunStream::new(s)?);
                }
                let mut merger = StreamMerger::new_with_kernel(streams, tree_kernel);
                let mut staging = Vec::with_capacity(batch_bytes);
                'merge: loop {
                    let done = loop {
                        match merger.next_record()? {
                            Some(r) => {
                                staging.extend_from_slice(r.as_bytes());
                                if staging.len() >= batch_bytes {
                                    break false;
                                }
                            }
                            None => break true,
                        }
                    };
                    if !staging.is_empty() {
                        let full =
                            std::mem::replace(&mut staging, Vec::with_capacity(batch_bytes));
                        if tx.send(full).is_err() {
                            // The root stopped draining (sink error); there
                            // is nowhere for our output to go.
                            break 'merge;
                        }
                    }
                    if done {
                        break;
                    }
                }
                let d = t0.elapsed();
                obs::metrics::observe("merge.range_us", d.as_micros() as u64);
                Ok(d)
            }));
        }
        // Drain in range order: ranges cover ascending disjoint key
        // intervals, so this concatenation *is* the sorted output.
        let mut sink_err: Option<io::Error> = None;
        'drain: for rx in &rxs {
            while let Ok(buf) = rx.recv() {
                let pushed = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || {
                    sink.push(&buf)
                });
                if let Err(e) = pushed {
                    sink_err = Some(e);
                    break 'drain;
                }
            }
        }
        drop(rxs); // unblocks any worker still sending after a sink error
        let mut durations = Vec::with_capacity(handles.len());
        let mut worker_err: Option<io::Error> = None;
        for h in handles {
            match h.join() {
                Ok(Ok(d)) => durations.push(d),
                Ok(Err(e)) => {
                    if worker_err.is_none() {
                        worker_err = Some(e);
                    }
                }
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        // A failed range read outranks the sink error it may have induced.
        if let Some(e) = worker_err {
            return Err(e);
        }
        if let Some(e) = sink_err {
            return Err(e);
        }
        Ok(durations)
    })?;
    for d in durations {
        stats.merge_time += d;
        stats.merge_range_time.push(d);
    }
    timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::scratch::MemScratch;
    use crate::io::{MemSink, MemSource};
    use alphasort_dmgen::{generate, validate_records, GenConfig, KeyDistribution};

    fn sort_two_pass(n: u64, dist: KeyDistribution, cfg: &SortConfig) {
        let (data, cs) = generate(GenConfig {
            records: n,
            seed: 0xF00D,
            dist,
        });
        let mut source = MemSource::new(data, 12_345); // deliberately ragged
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(40 * RECORD_LEN);
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, cfg).unwrap();
        assert_eq!(outcome.stats.records, n);
        assert!(!outcome.stats.one_pass);
        let report = validate_records(sink.data(), cs).unwrap();
        assert_eq!(report.records, n);
    }

    #[test]
    fn sorts_with_many_runs() {
        let cfg = SortConfig {
            run_records: 250,
            gather_batch: 100,
            ..Default::default()
        };
        sort_two_pass(5_000, KeyDistribution::Random, &cfg); // 20 runs
    }

    #[test]
    fn sorts_with_workers_overlapping_spill() {
        let cfg = SortConfig {
            run_records: 200,
            gather_batch: 64,
            workers: 3,
            ..Default::default()
        };
        sort_two_pass(6_000, KeyDistribution::Random, &cfg); // 30 runs
    }

    #[test]
    fn sorts_with_single_run() {
        let cfg = SortConfig {
            run_records: 100_000,
            gather_batch: 100,
            ..Default::default()
        };
        sort_two_pass(1_000, KeyDistribution::Random, &cfg);
    }

    #[test]
    fn sorts_adversarial_distributions() {
        let cfg = SortConfig {
            run_records: 300,
            gather_batch: 64,
            ..Default::default()
        };
        for dist in [
            KeyDistribution::Sorted,
            KeyDistribution::Reverse,
            KeyDistribution::DupHeavy { cardinality: 2 },
            KeyDistribution::CommonPrefix { shared: 10 },
        ] {
            sort_two_pass(2_000, dist, &cfg);
        }
    }

    #[test]
    fn empty_input() {
        let mut source = MemSource::new(Vec::new(), 100);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(100 * RECORD_LEN);
        let outcome =
            two_pass(&mut source, &mut sink, &mut scratch, &SortConfig::default()).unwrap();
        assert_eq!(outcome.bytes, 0);
    }

    #[test]
    fn cascade_merge_handles_many_runs() {
        // 40 runs with fan-in 4: two intermediate levels (40 → 10 → 3),
        // then the final merge.
        let (data, cs) = generate(GenConfig::datamation(2_000, 21));
        let mut source = MemSource::new(data, 10_000);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(25 * RECORD_LEN);
        let cfg = SortConfig {
            run_records: 50, // 40 runs
            gather_batch: 32,
            max_fanin: 4,
            ..Default::default()
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        assert_eq!(outcome.stats.runs, 40);
        assert_eq!(outcome.stats.merge_passes, 2);
        let report = validate_records(sink.data(), cs).unwrap();
        assert_eq!(report.records, 2_000);
    }

    #[test]
    fn cascade_fanin_exactly_at_boundary_needs_no_extra_pass() {
        let (data, cs) = generate(GenConfig::datamation(1_000, 22));
        let mut source = MemSource::new(data, 10_000);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(25 * RECORD_LEN);
        let cfg = SortConfig {
            run_records: 125, // exactly 8 runs
            gather_batch: 32,
            max_fanin: 8,
            ..Default::default()
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        assert_eq!(outcome.stats.merge_passes, 0);
        validate_records(sink.data(), cs).unwrap();
    }

    /// Serial-reference sort of `data` with `cfg` (merge_workers forced 0).
    fn serial_reference(data: &[u8], cfg: &SortConfig) -> Vec<u8> {
        let mut source = MemSource::new(data.to_vec(), 12_345);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(40 * RECORD_LEN);
        let cfg = SortConfig {
            merge_workers: 0,
            ..cfg.clone()
        };
        two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        sink.into_inner()
    }

    #[test]
    fn partitioned_final_merge_is_byte_identical_to_serial() {
        let (data, cs) = generate(GenConfig {
            records: 4_000,
            seed: 0xD1CE,
            dist: KeyDistribution::DupHeavy { cardinality: 5 },
        });
        let base = SortConfig {
            run_records: 250,
            gather_batch: 100,
            workers: 2,
            ..Default::default()
        };
        let serial = serial_reference(&data, &base);
        for merge_workers in [1, 2, 4, 8] {
            let mut source = MemSource::new(data.clone(), 12_345);
            let mut sink = MemSink::new();
            let mut scratch = MemScratch::new(40 * RECORD_LEN);
            let cfg = SortConfig {
                merge_workers,
                ..base.clone()
            };
            let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
            assert_eq!(outcome.stats.merge_range_records.len(), merge_workers);
            assert_eq!(
                outcome.stats.merge_range_records.iter().sum::<u64>(),
                4_000
            );
            assert!(outcome.stats.merge_skew() >= 1.0);
            assert_eq!(sink.data(), &serial[..], "{merge_workers} ranges diverged");
            validate_records(sink.data(), cs).unwrap();
        }
    }

    #[test]
    fn partitioned_merge_after_cascade_levels() {
        let (data, cs) = generate(GenConfig::datamation(2_000, 33));
        let base = SortConfig {
            run_records: 50, // 40 runs
            gather_batch: 32,
            max_fanin: 4,
            ..Default::default()
        };
        let serial = serial_reference(&data, &base);
        let mut source = MemSource::new(data, 12_345);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(25 * RECORD_LEN);
        let cfg = SortConfig {
            merge_workers: 3,
            ..base
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        assert_eq!(outcome.stats.merge_passes, 2); // 40 → 10 → 3 runs
        assert_eq!(outcome.stats.merge_range_records.len(), 3);
        assert_eq!(sink.data(), &serial[..]);
        validate_records(sink.data(), cs).unwrap();
    }

    #[test]
    fn partitioned_merge_on_resumed_scratch() {
        use alphasort_dmgen::records_of_mut;
        // A previous attempt already formed the middle run (records
        // 300..600); the resumed sort re-forms only the flanks and the
        // partitioned merge must still concatenate to the serial output.
        let (data, cs) = generate(GenConfig {
            records: 1_200,
            seed: 0xAB5E,
            dist: KeyDistribution::Random,
        });
        let base = SortConfig {
            run_records: 300,
            gather_batch: 100,
            ..Default::default()
        };
        let serial = serial_reference(&data, &base);
        let mut middle = data[300 * RECORD_LEN..600 * RECORD_LEN].to_vec();
        records_of_mut(&mut middle).sort_by_key(|r| r.key);
        for merge_workers in [1, 3, 8] {
            let mut source = MemSource::new(data.clone(), 12_345);
            let mut sink = MemSink::new();
            let mut scratch =
                MemScratch::with_recovered(vec![(300, middle.clone())], 40 * RECORD_LEN);
            let cfg = SortConfig {
                merge_workers,
                ..base.clone()
            };
            let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
            assert_eq!(outcome.stats.runs, 4);
            assert_eq!(outcome.stats.runs_recovered, 1);
            assert_eq!(outcome.stats.merge_range_records.len(), merge_workers);
            assert_eq!(sink.data(), &serial[..], "{merge_workers} ranges diverged");
            validate_records(sink.data(), cs).unwrap();
        }
    }

    #[test]
    fn run_count_matches_input_over_memory() {
        let (data, _) = generate(GenConfig::datamation(1_000, 2));
        let mut source = MemSource::new(data, 64 * 1024);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(50 * RECORD_LEN);
        let cfg = SortConfig {
            run_records: 128,
            gather_batch: 64,
            ..Default::default()
        };
        let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
        assert_eq!(outcome.stats.runs, 8); // ceil(1000 / 128)
        assert_eq!(*outcome.stats.run_lengths.last().unwrap(), 1_000 % 128);
    }
}
