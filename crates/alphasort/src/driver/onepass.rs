//! The one-pass sort: AlphaSort's benchmark configuration.
//!
//! §7's walk-through is the template: read the input through the striped
//! source, cutting it into runs of `run_records`; QuickSort each run's
//! entries *while the next run is still arriving* (sort chores overlap
//! input); then run the tournament merge, handing gather chores to workers
//! buffer-by-buffer while completed buffers stream to the striped sink.

use std::io;
use std::sync::Arc;
use std::time::Instant;

use alphasort_dmgen::RECORD_LEN;
use alphasort_obs as obs;

use crate::driver::{SortConfig, SortOutcome};
use crate::gather::take_ptrs;
use crate::io::{RecordSink, RecordSource};
use crate::merge::RunMerger;
use crate::parallel::{GatherPool, MergePool, SortPool};
use crate::planner::PassPlan;
use crate::pmerge::{plan_mem_partitions, SAMPLES_PER_RANGE};
use crate::stats::{timed_phase, SortStats};

/// How many gather batches may be in flight before the root drains one —
/// the output-side analogue of triple buffering.
const GATHER_PIPELINE: u64 = 3;

/// Sort `source` into `sink` entirely in memory (one pass over the data).
pub fn one_pass<Src, Snk>(
    source: &mut Src,
    sink: &mut Snk,
    cfg: &SortConfig,
) -> io::Result<SortOutcome>
where
    Src: RecordSource,
    Snk: RecordSink,
{
    if cfg.layout == crate::entry::RecordLayout::VarLen {
        return crate::varlen::one_pass_var(source, sink, cfg);
    }
    assert!(cfg.run_records > 0 && cfg.gather_batch > 0);
    let mut top = obs::span(obs::phase::ONE_PASS);
    let t_start = Instant::now();
    let mut stats = SortStats {
        one_pass: true,
        ..Default::default()
    };
    let run_bytes = cfg.run_records * RECORD_LEN;

    // ---- input + run formation, overlapped --------------------------------
    let mut pool = SortPool::with_kernel(cfg.workers, cfg.representation, cfg.kernel);
    let mut cur: Vec<u8> = Vec::with_capacity(run_bytes);
    loop {
        let mut rd = obs::span(obs::phase::READ);
        let t0 = Instant::now();
        let chunk = source.next_chunk();
        stats.read_wait += t0.elapsed();
        if let Ok(Some(c)) = &chunk {
            rd.attr("bytes", c.len() as u64);
        }
        drop(rd);
        let Some(chunk) = chunk? else { break };
        stats.bytes_sorted += chunk.len() as u64;
        let mut off = 0;
        while off < chunk.len() {
            let take = (run_bytes - cur.len()).min(chunk.len() - off);
            cur.extend_from_slice(&chunk[off..off + take]);
            off += take;
            if cur.len() == run_bytes {
                pool.submit(std::mem::replace(&mut cur, Vec::with_capacity(run_bytes)));
            }
        }
    }
    if !cur.is_empty() {
        if !cur.len().is_multiple_of(RECORD_LEN) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "input ends mid-record ({} trailing bytes)",
                    cur.len() % RECORD_LEN
                ),
            ));
        }
        pool.submit(cur);
    }
    let (runs, pool_stats) = pool.finish();
    stats.merge(&pool_stats);

    if stats.records == 0 {
        let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
        stats.elapsed = t_start.elapsed();
        return Ok(SortOutcome {
            stats,
            bytes,
            plan: PassPlan::OnePass,
        });
    }

    // ---- merge + gather + output, overlapped ------------------------------
    let runs = Arc::new(runs);
    if cfg.merge_workers > 0 {
        // Partitioned parallel merge: sampled splitters cut every run into
        // P disjoint key ranges; each range's merge is fused with its
        // gather on a pool worker and the buffers stream out in range
        // order — byte-identical to the serial tournament below.
        let plan = timed_phase(obs::phase::MERGE, &mut stats.merge_time, || {
            plan_mem_partitions(&runs, cfg.merge_workers, SAMPLES_PER_RANGE)
        });
        stats.merge_range_records = plan.range_records.clone();
        let mut pool = MergePool::with_kernel(cfg.merge_workers, Arc::clone(&runs), cfg.kernel.tree());
        for row in &plan.bounds {
            pool.submit(row.iter().map(|&(s, e)| (s as u32, e as u32)).collect());
        }
        while let Some((buf, d)) = pool.next_in_order() {
            stats.merge_time += d;
            stats.merge_range_time.push(d);
            timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.push(&buf))?;
        }
        let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
        stats.elapsed = t_start.elapsed();
        obs::metrics::counter_add("sort.records", stats.records);
        obs::metrics::counter_add("sort.bytes", stats.bytes_sorted);
        top.attr("records", stats.records);
        top.attr("bytes", stats.bytes_sorted);
        return Ok(SortOutcome {
            stats,
            bytes,
            plan: PassPlan::OnePass,
        });
    }
    let mut merger = RunMerger::new_with_kernel(&runs, cfg.kernel.tree());
    let mut gather = GatherPool::new(cfg.workers, Arc::clone(&runs));
    loop {
        let ptrs = timed_phase(obs::phase::MERGE, &mut stats.merge_time, || {
            take_ptrs(&mut merger, cfg.gather_batch)
        });
        if ptrs.is_empty() {
            break;
        }
        gather.submit(ptrs);
        while gather.in_flight() > GATHER_PIPELINE {
            let buf = gather.next_buffer().expect("in-flight batch vanished");
            timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.push(&buf))?;
        }
    }
    while let Some(buf) = gather.next_buffer() {
        timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.push(&buf))?;
    }
    let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
    stats.merge(gather.stats());
    stats.elapsed = t_start.elapsed();
    obs::metrics::counter_add("sort.records", stats.records);
    obs::metrics::counter_add("sort.bytes", stats.bytes_sorted);
    top.attr("records", stats.records);
    top.attr("bytes", stats.bytes_sorted);
    Ok(SortOutcome {
        stats,
        bytes,
        plan: PassPlan::OnePass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{MemSink, MemSource};
    use crate::runform::Representation;
    use alphasort_dmgen::{generate, validate_records, GenConfig, KeyDistribution};

    fn sort_mem(n: u64, dist: KeyDistribution, cfg: &SortConfig) {
        let (data, cs) = generate(GenConfig {
            records: n,
            seed: 0xBEEF,
            dist,
        });
        let mut source = MemSource::new(data, 64 * 1024); // ragged chunks on purpose
        let mut sink = MemSink::new();
        let outcome = one_pass(&mut source, &mut sink, cfg).unwrap();
        assert_eq!(outcome.bytes, n * RECORD_LEN as u64);
        assert_eq!(outcome.stats.records, n);
        let report = validate_records(sink.data(), cs).unwrap();
        assert_eq!(report.records, n);
    }

    #[test]
    fn sorts_uniprocessor_key_prefix() {
        let cfg = SortConfig {
            run_records: 1_000,
            gather_batch: 500,
            workers: 0,
            ..Default::default()
        };
        sort_mem(10_000, KeyDistribution::Random, &cfg);
    }

    #[test]
    fn sorts_with_workers() {
        let cfg = SortConfig {
            run_records: 777,
            gather_batch: 333,
            workers: 3,
            ..Default::default()
        };
        sort_mem(10_000, KeyDistribution::Random, &cfg);
    }

    #[test]
    fn sorts_every_representation() {
        for rep in Representation::ALL {
            let cfg = SortConfig {
                run_records: 500,
                gather_batch: 250,
                representation: rep,
                ..Default::default()
            };
            sort_mem(3_000, KeyDistribution::Random, &cfg);
        }
    }

    #[test]
    fn sorts_adversarial_distributions() {
        let cfg = SortConfig {
            run_records: 400,
            gather_batch: 100,
            workers: 2,
            ..Default::default()
        };
        for dist in [
            KeyDistribution::Sorted,
            KeyDistribution::Reverse,
            KeyDistribution::DupHeavy { cardinality: 3 },
            KeyDistribution::CommonPrefix { shared: 9 },
            KeyDistribution::NearlySorted { permille: 100 },
        ] {
            sort_mem(4_000, dist, &cfg);
        }
    }

    #[test]
    fn partitioned_merge_is_byte_identical_to_serial() {
        let (data, cs) = generate(GenConfig {
            records: 6_000,
            seed: 0xCAFE,
            dist: KeyDistribution::DupHeavy { cardinality: 7 },
        });
        let serial = {
            let mut source = MemSource::new(data.clone(), 10_000);
            let mut sink = MemSink::new();
            let cfg = SortConfig {
                run_records: 500,
                gather_batch: 200,
                ..Default::default()
            };
            one_pass(&mut source, &mut sink, &cfg).unwrap();
            sink.into_inner()
        };
        for merge_workers in [1, 2, 4, 8] {
            let mut source = MemSource::new(data.clone(), 10_000);
            let mut sink = MemSink::new();
            let cfg = SortConfig {
                run_records: 500,
                gather_batch: 200,
                workers: 2,
                merge_workers,
                ..Default::default()
            };
            let outcome = one_pass(&mut source, &mut sink, &cfg).unwrap();
            assert_eq!(
                outcome.stats.merge_range_records.len(),
                merge_workers,
                "one record count per range"
            );
            assert!(outcome.stats.merge_skew() >= 1.0);
            assert_eq!(sink.data(), &serial[..], "{merge_workers} ranges diverged");
            validate_records(sink.data(), cs).unwrap();
        }
    }

    #[test]
    fn every_kernel_is_byte_identical_one_pass() {
        let (data, cs) = generate(GenConfig {
            records: 5_000,
            seed: 0x8E41,
            dist: KeyDistribution::DupHeavy { cardinality: 6 },
        });
        let base = SortConfig {
            run_records: 400,
            gather_batch: 150,
            workers: 2,
            ..Default::default()
        };
        let reference = {
            let mut source = MemSource::new(data.clone(), 8_192);
            let mut sink = MemSink::new();
            one_pass(&mut source, &mut sink, &base).unwrap();
            sink.into_inner()
        };
        for kernel in crate::kernels::Kernel::ALL {
            let cfg = SortConfig {
                kernel,
                ..base.clone()
            };
            let mut source = MemSource::new(data.clone(), 8_192);
            let mut sink = MemSink::new();
            one_pass(&mut source, &mut sink, &cfg).unwrap();
            assert_eq!(sink.data(), &reference[..], "{} diverged", kernel.name());
            validate_records(sink.data(), cs).unwrap();
        }
    }

    #[test]
    fn single_run_input() {
        let cfg = SortConfig {
            run_records: 100_000,
            gather_batch: 1_000,
            ..Default::default()
        };
        sort_mem(2_000, KeyDistribution::Random, &cfg);
    }

    #[test]
    fn empty_input() {
        let mut source = MemSource::new(Vec::new(), 1024);
        let mut sink = MemSink::new();
        let outcome = one_pass(&mut source, &mut sink, &SortConfig::default()).unwrap();
        assert_eq!(outcome.bytes, 0);
        assert_eq!(outcome.stats.records, 0);
    }

    #[test]
    fn run_boundaries_land_where_configured() {
        let (data, _) = generate(GenConfig::datamation(1_050, 3));
        let mut source = MemSource::new(data, 10_000);
        let mut sink = MemSink::new();
        let cfg = SortConfig {
            run_records: 100,
            gather_batch: 100,
            ..Default::default()
        };
        let outcome = one_pass(&mut source, &mut sink, &cfg).unwrap();
        assert_eq!(outcome.stats.runs, 11);
        assert_eq!(outcome.stats.run_lengths[10], 50);
    }

    #[test]
    fn ragged_input_is_an_error() {
        let (mut data, _) = generate(GenConfig::datamation(10, 3));
        data.pop();
        let mut source = MemSource::new(data, 128);
        let mut sink = MemSink::new();
        let err = one_pass(&mut source, &mut sink, &SortConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
