//! Scratch storage for two-pass sorts.
//!
//! §6: "A two-pass sort requires twice the disk bandwidth to carry the runs
//! being stored on disk and being read back in during merge phase." The
//! [`ScratchStore`] abstraction supplies per-run writers during run
//! formation and per-run sources during the merge; [`StripeScratch`] puts
//! runs on striped simulated disks, [`MemScratch`] keeps them in memory for
//! tests.
//!
//! # Crash safety
//!
//! A [`StripeScratch`] created with [`StripeScratch::with_manifest`]
//! persists a *run manifest* (JSON, written atomically via temp-file +
//! rename) recording every sealed run: its input position, record count,
//! stripe geometry and per-stride CRC32C fingerprints. After a crash,
//! [`StripeScratch::resume`] reloads the manifest, re-opens each run,
//! verifies it end to end against the recorded checksums, and discards
//! anything corrupt. The driver then consults
//! [`ScratchStore::recovered_runs`] and re-forms only the input ranges that
//! are missing — pass-1 work completed before the crash is not repeated.
//! Cascade-merge outputs are not manifested: recovery granularity is the
//! pass-1 run, and merge progress is redone on resume.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use alphasort_dmgen::{Record, KEY_LEN, RECORD_LEN};
use alphasort_minijson::Json;
use alphasort_obs as obs;
use alphasort_stripefs::{RunChecksums, StripeDef, StripedFile, StripedReader, Volume};

use crate::io::{MemSink, MemSource, RecordSink, RecordSource, StripeSink, StripeSource};
use crate::merge::RunStream;

/// A scratch run surviving from a previous attempt, described by the input
/// range it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveredRun {
    /// Absolute record index (within the input) where the run starts.
    pub start_record: u64,
    /// Records the run holds.
    pub records: u64,
}

/// Where a two-pass sort parks its runs between the passes.
pub trait ScratchStore: Send {
    /// Sink type runs are written through.
    type Writer: RecordSink;
    /// Source type runs are read back through.
    type Source: RecordSource;

    /// Start a new scratch run of roughly `size_hint` bytes.
    fn create_run(&mut self, size_hint: u64) -> io::Result<Self::Writer>;

    /// Finish a run's writer, recording it for the merge pass.
    fn seal_run(&mut self, writer: Self::Writer) -> io::Result<()>;

    /// Open every sealed run for reading, in input order.
    fn open_runs(&mut self) -> io::Result<Vec<Self::Source>>;

    /// Record counts of the sealed runs, in input order — the order
    /// [`open_runs`](Self::open_runs) and
    /// [`open_run_range`](Self::open_run_range) will use. The partitioned
    /// merge plans its key-range cuts from these lengths without opening
    /// anything.
    fn sealed_run_records(&mut self) -> io::Result<Vec<u64>>;

    /// The key of record `pos` within sealed run `run` (same input-order
    /// indexing as [`sealed_run_records`](Self::sealed_run_records)). A
    /// point probe: the partitioned merge samples splitter candidates and
    /// binary-searches cut positions through this.
    fn key_at(&mut self, run: usize, pos: u64) -> io::Result<[u8; KEY_LEN]>;

    /// Open records `[start, start + records)` of sealed run `run` for
    /// reading. Unlike [`open_runs`](Self::open_runs) this does not consume
    /// the run: every key range of the partitioned merge opens its own
    /// window of the same run.
    fn open_run_range(&mut self, run: usize, start: u64, records: u64)
        -> io::Result<Self::Source>;

    /// Runs already present from a previous attempt (a resumed scratch).
    /// The driver skips their input ranges during run formation instead of
    /// re-sorting them. Default: none — only resumable stores override.
    fn recovered_runs(&mut self) -> io::Result<Vec<RecoveredRun>> {
        Ok(Vec::new())
    }
}

/// In-memory scratch (tests, small sorts).
#[derive(Default)]
pub struct MemScratch {
    /// Sealed runs tagged with their input start record, like
    /// [`StripeScratch`]: a resumed scratch seals re-formed runs after the
    /// recovered ones, and input order is what the merge tie-break needs.
    runs: Vec<(u64, Vec<u8>)>,
    /// Chunk size handed back by the sources.
    chunk: usize,
    /// Record cursor assigning start offsets to sealed runs.
    cursor: u64,
    /// Recovered spans the cursor has not passed yet, sorted by start.
    pending_spans: VecDeque<RecoveredRun>,
    /// Spans reported through [`ScratchStore::recovered_runs`].
    recovered: Vec<RecoveredRun>,
}

impl MemScratch {
    /// Scratch whose read-back sources deliver `chunk`-byte pieces.
    pub fn new(chunk: usize) -> Self {
        MemScratch {
            chunk,
            ..Default::default()
        }
    }

    /// A scratch that pretends to have survived a crash: `runs` are sealed
    /// run payloads tagged with the input record index they start at, and
    /// will be reported via [`ScratchStore::recovered_runs`] so the driver
    /// skips those input ranges. Lets tests drive the resume path without
    /// striped disks or a manifest.
    pub fn with_recovered(runs: Vec<(u64, Vec<u8>)>, chunk: usize) -> Self {
        let mut spans: Vec<RecoveredRun> = runs
            .iter()
            .map(|(start, data)| RecoveredRun {
                start_record: *start,
                records: (data.len() / RECORD_LEN) as u64,
            })
            .collect();
        spans.sort_by_key(|s| s.start_record);
        MemScratch {
            runs,
            chunk,
            cursor: 0,
            pending_spans: spans.iter().copied().collect(),
            recovered: spans,
        }
    }

    /// Number of sealed runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    fn chunk_size(&self) -> usize {
        if self.chunk > 0 {
            self.chunk
        } else {
            64 * 1024
        }
    }
}

impl ScratchStore for MemScratch {
    type Writer = MemSink;
    type Source = MemSource;

    fn create_run(&mut self, _size_hint: u64) -> io::Result<MemSink> {
        Ok(MemSink::new())
    }

    fn seal_run(&mut self, mut writer: MemSink) -> io::Result<()> {
        writer.complete()?;
        let data = writer.into_inner();
        let records = (data.len() / RECORD_LEN) as u64;
        // Freshly formed runs pack the gaps between recovered spans (same
        // cursor dance as StripeScratch::seal_run).
        while let Some(s) = self.pending_spans.front() {
            if s.start_record == self.cursor {
                self.cursor += s.records;
                self.pending_spans.pop_front();
            } else {
                break;
            }
        }
        self.runs.push((self.cursor, data));
        self.cursor += records;
        Ok(())
    }

    fn open_runs(&mut self) -> io::Result<Vec<MemSource>> {
        let chunk = self.chunk_size();
        // Cascade outputs restart the ordering cursor per level.
        self.cursor = 0;
        self.pending_spans.clear();
        self.runs.sort_by_key(|(start, _)| *start);
        Ok(self
            .runs
            .drain(..)
            .map(|(_, r)| MemSource::new(r, chunk))
            .collect())
    }

    fn sealed_run_records(&mut self) -> io::Result<Vec<u64>> {
        self.runs.sort_by_key(|(start, _)| *start);
        Ok(self
            .runs
            .iter()
            .map(|(_, r)| (r.len() / RECORD_LEN) as u64)
            .collect())
    }

    fn key_at(&mut self, run: usize, pos: u64) -> io::Result<[u8; KEY_LEN]> {
        let (_, data) = &self.runs[run];
        let off = pos as usize * RECORD_LEN;
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&data[off..off + KEY_LEN]);
        Ok(key)
    }

    fn open_run_range(&mut self, run: usize, start: u64, records: u64) -> io::Result<MemSource> {
        let (_, data) = &self.runs[run];
        let lo = start as usize * RECORD_LEN;
        let hi = lo + records as usize * RECORD_LEN;
        Ok(MemSource::new(data[lo..hi].to_vec(), self.chunk_size()))
    }

    fn recovered_runs(&mut self) -> io::Result<Vec<RecoveredRun>> {
        Ok(self.recovered.clone())
    }
}

/// One sealed (or recovered) run living on the scratch volume.
struct RunMeta {
    file: Arc<StripedFile>,
    /// Absolute record index where this run starts (within the input for
    /// pass-1 runs; within the level for cascade outputs).
    start: u64,
    records: u64,
    checks: RunChecksums,
}

/// Host-side persistence for the run manifest.
struct ManifestState {
    path: PathBuf,
    input_bytes: u64,
    run_records: u64,
    /// Rendered entries for runs still live on the volume, keyed by the
    /// run's file name so deletions can drop them.
    entries: Vec<(String, Json)>,
}

/// What [`StripeScratch::resume`] found in a previous attempt's scratch.
#[derive(Clone, Debug, Default)]
pub struct ResumeReport {
    /// Runs that verified end to end and will be reused, in input order.
    pub recovered: Vec<RecoveredRun>,
    /// Runs discarded as corrupt or unreadable (name plus the reason).
    pub corrupt: Vec<String>,
    /// Input length the manifest was written for.
    pub input_bytes: u64,
    /// Run size (in records) the manifest was written for.
    pub run_records: u64,
}

/// Scratch on striped simulated disks: each run is its own striped file
/// across the scratch volume's disks, fingerprinted at write-behind and
/// verified at merge read-ahead.
pub struct StripeScratch {
    volume: Arc<Volume>,
    chunk: u64,
    runs: Vec<RunMeta>,
    next_id: usize,
    open_writers: Vec<(usize, Arc<StripedFile>)>,
    /// Runs handed out by `open_runs`, freed when the next level creates.
    pending_free: Vec<Arc<StripedFile>>,
    /// Present when the scratch persists a run manifest.
    manifest: Option<ManifestState>,
    /// Record cursor assigning start offsets to sealed runs.
    cursor: u64,
    /// Recovered spans the cursor has not passed yet, sorted by start:
    /// freshly formed runs pack the gaps between them.
    pending_spans: VecDeque<RecoveredRun>,
    /// Runs inherited from a previous attempt via [`resume`](Self::resume).
    recovered: Vec<RecoveredRun>,
    /// Flipped at the first `open_runs`: later seals are cascade outputs
    /// and are not manifested.
    merging: bool,
    /// Run-name namespace: runs are created as `{prefix}-{id}`. Two
    /// scratches sharing one volume (two jobs in one process) must use
    /// distinct prefixes or their run files collide.
    prefix: String,
}

impl StripeScratch {
    /// Scratch over `volume`, striping each run across all its disks with
    /// the given chunk size. No manifest: a crash loses the scratch.
    pub fn new(volume: Arc<Volume>, chunk: u64) -> Self {
        StripeScratch {
            volume,
            chunk,
            runs: Vec::new(),
            next_id: 0,
            open_writers: Vec::new(),
            pending_free: Vec::new(),
            manifest: None,
            cursor: 0,
            pending_spans: VecDeque::new(),
            recovered: Vec::new(),
            merging: false,
            prefix: "scratch-run".to_string(),
        }
    }

    /// Set the run-name namespace (default `scratch-run`). Every scratch
    /// sharing a volume with another concurrently-live scratch — `sortd`
    /// runs one per job on one shared volume — needs its own prefix; with
    /// the default, a second scratch's `scratch-run-0` would collide with
    /// the first's. The prefix is persisted in the manifest so resume
    /// keeps fresh run ids clear of surviving names.
    pub fn named(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = prefix.into();
        self
    }

    /// Delete every file this scratch still tracks (sealed runs, handed-out
    /// merge sources, abandoned writers) from the volume, releasing their
    /// extents for other users of a shared volume.
    ///
    /// This is deliberately *not* `Drop`: a crash-style drop must leave
    /// manifested runs on disk for [`resume`](Self::resume). A daemon that
    /// owns the job lifecycle calls `dispose` when the job is done.
    pub fn dispose(mut self) {
        for f in self.pending_free.drain(..) {
            self.volume.delete(&f);
        }
        for r in self.runs.drain(..) {
            self.volume.delete(&r.file);
        }
        for (_, f) in self.open_writers.drain(..) {
            self.volume.delete(&f);
        }
    }

    /// Like [`new`](Self::new), additionally persisting a run manifest at
    /// `path` (host file system) after every sealed pass-1 run, so a
    /// crashed sort can [`resume`](Self::resume). `input_bytes` and
    /// `run_records` describe the sort the manifest belongs to; resume
    /// callers check them against the retry's parameters.
    pub fn with_manifest(
        volume: Arc<Volume>,
        chunk: u64,
        path: impl Into<PathBuf>,
        input_bytes: u64,
        run_records: u64,
    ) -> io::Result<Self> {
        let mut s = Self::new(volume, chunk);
        s.attach_manifest(path, input_bytes, run_records)?;
        Ok(s)
    }

    /// Attach a run manifest to an existing (possibly [`named`](Self::named))
    /// scratch — the builder-order-friendly form of
    /// [`with_manifest`](Self::with_manifest): the prefix is already set
    /// when the first manifest is written, so a crash before any seal still
    /// resumes under the right namespace. `sortd` uses this to manifest its
    /// per-job namespaced scratches.
    pub fn attach_manifest(
        &mut self,
        path: impl Into<PathBuf>,
        input_bytes: u64,
        run_records: u64,
    ) -> io::Result<()> {
        self.manifest = Some(ManifestState {
            path: path.into(),
            input_bytes,
            run_records,
            entries: Vec::new(),
        });
        // Write the empty manifest up front: a crash before the first seal
        // must still resume (recovering nothing) rather than error.
        self.write_manifest()
    }

    /// Free a dead scratch's extents from its manifest at `path` without
    /// validating run contents: every manifested run file is deleted from
    /// `volume`, then the manifest itself is removed. Checksums are not
    /// read — this is for scratch nobody will ever resume (a journaling
    /// daemon sweeping a crashed job whose client never came back), so the
    /// only thing worth reclaiming is the space. Returns how many run
    /// files were deleted.
    pub fn dispose_at(volume: &Arc<Volume>, path: &Path) -> io::Result<u64> {
        let bad = |e: &dyn std::fmt::Display| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("scratch manifest '{}': {e}", path.display()),
            )
        };
        let text = std::fs::read_to_string(path)?;
        let doc = Json::parse(&text).map_err(|e| bad(&e))?;
        let mut freed = 0u64;
        for entry in doc.field_arr("runs").map_err(|e| bad(&e))? {
            let def = entry
                .get("def")
                .ok_or_else(|| bad(&"run entry missing `def`"))
                .and_then(|v| StripeDef::from_json(v).map_err(|e| bad(&e)))?;
            let file = Arc::new(volume.open(def));
            volume.delete(&file);
            freed += 1;
        }
        std::fs::remove_file(path)?;
        Ok(freed)
    }

    /// Reload a previous attempt's scratch from its manifest at `path`.
    ///
    /// Every manifested run is re-opened on `volume` (which must sit over
    /// the same disks) and read end to end against its recorded checksums.
    /// Intact runs are kept and later skipped by the driver; corrupt or
    /// truncated runs are deleted, counted in `run.corrupt`, and re-formed
    /// from the input. Returns the scratch plus a [`ResumeReport`].
    pub fn resume(volume: Arc<Volume>, path: &Path) -> io::Result<(Self, ResumeReport)> {
        let bad = |e: &dyn std::fmt::Display| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("scratch manifest '{}': {e}", path.display()),
            )
        };
        let text = std::fs::read_to_string(path)?;
        let doc = Json::parse(&text).map_err(|e| bad(&e))?;
        let version = doc.field_u64("version").map_err(|e| bad(&e))?;
        if version != 1 {
            return Err(bad(&format!("unsupported manifest version {version}")));
        }
        let input_bytes = doc.field_u64("input_bytes").map_err(|e| bad(&e))?;
        let run_records = doc.field_u64("run_records").map_err(|e| bad(&e))?;
        let chunk = doc.field_u64("chunk").map_err(|e| bad(&e))?;
        let mut s = Self::new(volume, chunk);
        // Manifests from before namespacing carry no prefix; they used the
        // default.
        if let Some(p) = doc.get("prefix").and_then(Json::as_str) {
            s.prefix = p.to_string();
        }
        let mut report = ResumeReport {
            input_bytes,
            run_records,
            ..Default::default()
        };
        for entry in doc.field_arr("runs").map_err(|e| bad(&e))? {
            let start = entry.field_u64("start").map_err(|e| bad(&e))?;
            let records = entry.field_u64("records").map_err(|e| bad(&e))?;
            let def = entry
                .get("def")
                .ok_or_else(|| bad(&"run entry missing `def`"))
                .and_then(|v| StripeDef::from_json(v).map_err(|e| bad(&e)))?;
            let checks = entry
                .get("checks")
                .ok_or_else(|| bad(&"run entry missing `checks`"))
                .and_then(|v| RunChecksums::from_json(v).map_err(|e| bad(&e)))?;
            let name = def.name.clone();
            let file = Arc::new(s.volume.open(def));
            match Self::validate_run(&file, &checks, records) {
                Ok(()) => {
                    // Keep fresh run ids clear of every surviving name.
                    if let Some(id) = name
                        .strip_prefix(&format!("{}-", s.prefix))
                        .and_then(|n| n.parse::<usize>().ok())
                    {
                        s.next_id = s.next_id.max(id + 1);
                    }
                    report.recovered.push(RecoveredRun {
                        start_record: start,
                        records,
                    });
                    s.runs.push(RunMeta {
                        file,
                        start,
                        records,
                        checks,
                    });
                }
                Err(e) => {
                    obs::metrics::counter_add("run.corrupt", 1);
                    s.volume.delete(&file);
                    report.corrupt.push(format!("{name}: {e}"));
                }
            }
        }
        s.runs.sort_by_key(|r| r.start);
        report.recovered.sort_by_key(|r| r.start_record);
        s.pending_spans = report.recovered.iter().copied().collect();
        s.recovered = report.recovered.clone();
        s.manifest = Some(ManifestState {
            path: path.to_path_buf(),
            input_bytes,
            run_records,
            entries: s
                .runs
                .iter()
                .map(|m| (m.file.def().name.clone(), Self::render_entry(m)))
                .collect(),
        });
        // Drop corrupt entries (and any stale "merging" phase) right away.
        s.write_manifest()?;
        Ok((s, report))
    }

    /// Read a recovered run end to end through its checksums.
    fn validate_run(
        file: &Arc<StripedFile>,
        checks: &RunChecksums,
        records: u64,
    ) -> io::Result<()> {
        if checks.bytes != records * RECORD_LEN as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "manifest claims {records} records but checksums cover {} bytes",
                    checks.bytes
                ),
            ));
        }
        let mut r = StripedReader::verified(Arc::clone(file), checks.clone())?;
        let mut total = 0u64;
        while let Some(stride) = r.next_stride() {
            total += stride?.len() as u64;
        }
        if total != checks.bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("run delivered {total} bytes, expected {}", checks.bytes),
            ));
        }
        Ok(())
    }

    fn render_entry(meta: &RunMeta) -> Json {
        Json::Obj(vec![
            ("start".into(), Json::from(meta.start)),
            ("records".into(), Json::from(meta.records)),
            ("def".into(), meta.file.def_snapshot().to_json()),
            ("checks".into(), meta.checks.to_json()),
        ])
    }

    /// Persist the manifest atomically (temp file + rename): readers see
    /// either the previous state or the new one, never a torn write.
    fn write_manifest(&self) -> io::Result<()> {
        let Some(m) = &self.manifest else {
            return Ok(());
        };
        let doc = Json::Obj(vec![
            ("version".into(), Json::from(1u64)),
            (
                "phase".into(),
                Json::from(if self.merging { "merging" } else { "forming" }),
            ),
            ("input_bytes".into(), Json::from(m.input_bytes)),
            ("run_records".into(), Json::from(m.run_records)),
            ("chunk".into(), Json::from(self.chunk)),
            ("prefix".into(), Json::from(self.prefix.as_str())),
            (
                "runs".into(),
                Json::Arr(m.entries.iter().map(|(_, j)| j.clone()).collect()),
            ),
        ]);
        let mut tmp = m.path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, doc.dump_pretty())?;
        std::fs::rename(&tmp, &m.path)
    }
}

impl ScratchStore for StripeScratch {
    type Writer = StripeSink;
    type Source = StripeSource;

    fn create_run(&mut self, size_hint: u64) -> io::Result<StripeSink> {
        let id = self.next_id;
        self.next_id += 1;
        let file = match self.volume.try_create_across_all(
            format!("{}-{id}", self.prefix),
            self.chunk,
            size_hint,
        ) {
            Ok(f) => Arc::new(f),
            Err(e) if e.kind() == io::ErrorKind::StorageFull => {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    format!("scratch volume full (needed {size_hint} bytes for run {id}): {e}"),
                ));
            }
            Err(e) => return Err(e),
        };
        self.open_writers.push((id, Arc::clone(&file)));
        Ok(StripeSink::checksummed(file))
    }

    fn seal_run(&mut self, mut writer: StripeSink) -> io::Result<()> {
        writer.complete()?;
        let checks = writer.take_checksums().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "sealed writer was not created by this scratch store",
            )
        })?;
        // Writers seal in creation order in the two-pass driver.
        if self.open_writers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seal_run without a matching create_run",
            ));
        }
        let (_, file) = self.open_writers.remove(0);
        let records = checks.bytes / RECORD_LEN as u64;
        // Freshly formed runs pack the gaps between recovered spans: when
        // the cursor reaches a recovered run's start, that range is already
        // covered — jump over it.
        while let Some(s) = self.pending_spans.front() {
            if s.start_record == self.cursor {
                self.cursor += s.records;
                self.pending_spans.pop_front();
            } else {
                break;
            }
        }
        let meta = RunMeta {
            file,
            start: self.cursor,
            records,
            checks,
        };
        self.cursor += records;
        if !self.merging {
            if let Some(m) = &mut self.manifest {
                m.entries
                    .push((meta.file.def().name.clone(), Self::render_entry(&meta)));
            }
            self.runs.push(meta);
            // Persisting after every pass-1 seal is the crash-safety point:
            // everything the manifest lists survives a kill right here.
            self.write_manifest()?;
        } else {
            self.runs.push(meta);
        }
        Ok(())
    }

    fn open_runs(&mut self) -> io::Result<Vec<StripeSource>> {
        // The *previous* batch handed out by open_runs has been fully
        // consumed by now (the driver merges an entire cascade level before
        // asking for the next), so its extents can be recycled for the
        // runs the coming level will create. Freeing any earlier — while a
        // level is still reading them — would let create_run() hand live
        // extents to a new writer.
        let mut manifest_dirty = !self.merging; // phase flips below
        for f in self.pending_free.drain(..) {
            if let Some(m) = &mut self.manifest {
                let name = &f.def().name;
                let before = m.entries.len();
                m.entries.retain(|(n, _)| n != name);
                manifest_dirty |= m.entries.len() != before;
            }
            self.volume.delete(&f);
        }
        self.merging = true;
        // Cascade outputs restart the ordering cursor per level.
        self.cursor = 0;
        self.pending_spans.clear();
        // Input order, not creation order: a resumed pass 1 seals re-formed
        // runs after the recovered ones even though they interleave in the
        // input, and the merge's tie-break (stream index) must follow input
        // order for the sort to stay stable.
        self.runs.sort_by_key(|r| r.start);
        let sources = self
            .runs
            .iter()
            .map(|r| StripeSource::verified(Arc::clone(&r.file), r.checks.clone()))
            .collect::<io::Result<Vec<_>>>()?;
        self.pending_free
            .extend(self.runs.drain(..).map(|r| r.file));
        if manifest_dirty {
            self.write_manifest()?;
        }
        Ok(sources)
    }

    fn sealed_run_records(&mut self) -> io::Result<Vec<u64>> {
        // Input order, for the same stability reason as open_runs.
        self.runs.sort_by_key(|r| r.start);
        Ok(self.runs.iter().map(|r| r.records).collect())
    }

    fn key_at(&mut self, run: usize, pos: u64) -> io::Result<[u8; KEY_LEN]> {
        let meta = &self.runs[run];
        // A point probe is a tiny verified window: the reader fetches (and
        // checks) only the strides covering the key bytes.
        let mut src = StripeSource::verified_window(
            Arc::clone(&meta.file),
            meta.checks.clone(),
            pos * RECORD_LEN as u64,
            KEY_LEN as u64,
        )?;
        let mut key = [0u8; KEY_LEN];
        let mut got = 0;
        while got < KEY_LEN {
            let Some(chunk) = src.next_chunk()? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("key probe at record {pos} ran off the end of run {run}"),
                ));
            };
            let take = chunk.len().min(KEY_LEN - got);
            key[got..got + take].copy_from_slice(&chunk[..take]);
            got += take;
        }
        Ok(key)
    }

    fn open_run_range(&mut self, run: usize, start: u64, records: u64) -> io::Result<StripeSource> {
        let meta = &self.runs[run];
        StripeSource::verified_window(
            Arc::clone(&meta.file),
            meta.checks.clone(),
            start * RECORD_LEN as u64,
            records * RECORD_LEN as u64,
        )
    }

    fn recovered_runs(&mut self) -> io::Result<Vec<RecoveredRun>> {
        Ok(self.recovered.clone())
    }
}

/// Adapts a [`RecordSource`] into a [`RunStream`] of records for the merge.
///
/// Source chunk boundaries need not align with records (a striped source's
/// strides generally do not); partial records are carried across chunks. A
/// source that ends mid-record yields `InvalidData`.
pub struct BufferedRunStream<S: RecordSource> {
    source: S,
    buf: Vec<u8>,
    /// Byte offset of the head record within `buf`.
    off: usize,
    head: Option<Record>,
    exhausted: bool,
}

impl<S: RecordSource> BufferedRunStream<S> {
    /// Wrap `source`; the first record is fetched eagerly.
    pub fn new(source: S) -> io::Result<Self> {
        let mut s = BufferedRunStream {
            source,
            buf: Vec::new(),
            off: 0,
            head: None,
            exhausted: false,
        };
        s.refill()?;
        Ok(s)
    }

    fn refill(&mut self) -> io::Result<()> {
        while self.buf.len() - self.off < RECORD_LEN && !self.exhausted {
            // Compact, then append the next chunk.
            if self.off > 0 {
                self.buf.drain(..self.off);
                self.off = 0;
            }
            match self.source.next_chunk()? {
                Some(chunk) => self.buf.extend_from_slice(&chunk),
                None => self.exhausted = true,
            }
        }
        let avail = self.buf.len() - self.off;
        if avail == 0 {
            self.head = None;
            return Ok(());
        }
        if avail < RECORD_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("scratch run ends mid-record ({avail} trailing bytes)"),
            ));
        }
        self.head = Some(Record::from_bytes(
            &self.buf[self.off..self.off + RECORD_LEN],
        ));
        Ok(())
    }
}

impl<S: RecordSource> RunStream for BufferedRunStream<S> {
    fn head(&self) -> Option<&Record> {
        self.head.as_ref()
    }

    fn advance(&mut self) -> io::Result<()> {
        self.off += RECORD_LEN;
        self.refill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, records_of_mut, GenConfig};
    use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};

    fn striped_volume(n: usize, storages: Option<&[Arc<MemStorage>]>) -> Arc<Volume> {
        let disks = (0..n)
            .map(|i| {
                let storage = match storages {
                    Some(s) => Arc::clone(&s[i]),
                    None => Arc::new(MemStorage::new()),
                };
                SimDisk::new(
                    format!("s{i}"),
                    catalog::uncapped(),
                    storage,
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        Arc::new(Volume::new(Arc::new(IoEngine::new(disks))))
    }

    fn tmp_manifest(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "alphasort-scratch-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d.join("scratch.manifest")
    }

    #[test]
    fn mem_scratch_roundtrip() {
        let mut s = MemScratch::new(250);
        let mut w = s.create_run(0).unwrap();
        w.push(b"abcde").unwrap();
        s.seal_run(w).unwrap();
        let mut w2 = s.create_run(0).unwrap();
        w2.push(b"XY").unwrap();
        s.seal_run(w2).unwrap();
        assert_eq!(s.run_count(), 2);
        assert!(s.recovered_runs().unwrap().is_empty());
        let mut sources = s.open_runs().unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0].next_chunk().unwrap().unwrap(), b"abcde");
        assert_eq!(sources[1].next_chunk().unwrap().unwrap(), b"XY");
    }

    #[test]
    fn mem_scratch_probes_and_range_windows() {
        let run_a = run_payload(40, 11);
        let run_b = run_payload(25, 12);
        let mut s = MemScratch::new(300);
        for payload in [&run_a, &run_b] {
            let mut w = s.create_run(0).unwrap();
            w.push(payload).unwrap();
            s.seal_run(w).unwrap();
        }
        assert_eq!(s.sealed_run_records().unwrap(), vec![40, 25]);
        assert_eq!(&s.key_at(0, 7).unwrap(), &run_a[700..710]);
        assert_eq!(&s.key_at(1, 24).unwrap(), &run_b[2_400..2_410]);
        let mut src = s.open_run_range(0, 10, 5).unwrap();
        let mut got = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            got.extend_from_slice(&c);
        }
        assert_eq!(got, &run_a[1_000..1_500]);
        // Windows do not consume the run: the full open still sees both.
        assert_eq!(s.open_runs().unwrap().len(), 2);
    }

    #[test]
    fn mem_scratch_with_recovered_interleaves_by_input_order() {
        // A "previous attempt" left the middle run (records 30..60); the
        // retry seals the two flanking runs, which must pack around it.
        let middle = run_payload(30, 21);
        let mut s = MemScratch::with_recovered(vec![(30, middle.clone())], 500);
        assert_eq!(
            s.recovered_runs().unwrap(),
            vec![RecoveredRun {
                start_record: 30,
                records: 30
            }]
        );
        let first = run_payload(30, 22);
        let last = run_payload(30, 23);
        for payload in [&first, &last] {
            let mut w = s.create_run(0).unwrap();
            w.push(payload).unwrap();
            s.seal_run(w).unwrap();
        }
        // Input order is first (0..30), middle (30..60), last (60..90).
        assert_eq!(s.sealed_run_records().unwrap(), vec![30, 30, 30]);
        assert_eq!(&s.key_at(1, 0).unwrap(), &middle[0..10]);
        let mut sources = s.open_runs().unwrap();
        let mut got = Vec::new();
        while let Some(c) = sources[1].next_chunk().unwrap() {
            got.extend_from_slice(&c);
        }
        assert_eq!(got, middle);
    }

    #[test]
    fn stripe_scratch_probes_and_range_windows() {
        let volume = striped_volume(3, None);
        let mut s = StripeScratch::new(volume, 256);
        let run_a = run_payload(60, 31);
        let run_b = run_payload(45, 32);
        for payload in [&run_a, &run_b] {
            let mut w = s.create_run(payload.len() as u64).unwrap();
            w.push(payload).unwrap();
            s.seal_run(w).unwrap();
        }
        assert_eq!(s.sealed_run_records().unwrap(), vec![60, 45]);
        for pos in [0u64, 1, 17, 59] {
            let off = pos as usize * RECORD_LEN;
            assert_eq!(&s.key_at(0, pos).unwrap(), &run_a[off..off + KEY_LEN]);
        }
        assert_eq!(&s.key_at(1, 44).unwrap(), &run_b[4_400..4_410]);
        // Windows at awkward (non-stride-aligned) record offsets.
        for (start, records) in [(0u64, 60u64), (13, 9), (59, 1), (20, 0)] {
            let mut src = s.open_run_range(0, start, records).unwrap();
            assert_eq!(src.size_hint(), Some(records * RECORD_LEN as u64));
            let mut got = Vec::new();
            while let Some(c) = src.next_chunk().unwrap() {
                got.extend_from_slice(&c);
            }
            let lo = start as usize * RECORD_LEN;
            assert_eq!(got, &run_a[lo..lo + records as usize * RECORD_LEN]);
        }
    }

    #[test]
    fn stripe_scratch_roundtrip() {
        let volume = striped_volume(4, None);
        let mut s = StripeScratch::new(volume, 512);

        let payload: Vec<u8> = (0..3_000).map(|i| (i % 7) as u8).collect();
        let mut w = s.create_run(3_000).unwrap();
        w.push(&payload).unwrap();
        s.seal_run(w).unwrap();

        let mut sources = s.open_runs().unwrap();
        let mut got = Vec::new();
        while let Some(c) = sources[0].next_chunk().unwrap() {
            got.extend_from_slice(&c);
        }
        assert_eq!(got, payload);
    }

    /// One sorted run of `records` records with predictable payloads.
    fn run_payload(records: usize, salt: u8) -> Vec<u8> {
        let (mut data, _) = generate(GenConfig::datamation(records as u64, salt as u64));
        records_of_mut(&mut data).sort_by_key(|r| r.key);
        data
    }

    #[test]
    fn namespaced_scratches_share_a_volume_without_colliding() {
        // Two concurrently-live scratches on ONE volume — the sortd
        // situation. With the default prefix both would create
        // "scratch-run-0"; named scratches must stay disjoint, and
        // dispose() must return the extents to the volume.
        let volume = striped_volume(2, None);
        let run_a = run_payload(30, 41);
        let run_b = run_payload(30, 42);
        let mut sa = StripeScratch::new(Arc::clone(&volume), 256).named("job1-run");
        let mut sb = StripeScratch::new(Arc::clone(&volume), 256).named("job2-run");
        for (s, payload) in [(&mut sa, &run_a), (&mut sb, &run_b)] {
            let mut w = s.create_run(payload.len() as u64).unwrap();
            w.push(payload).unwrap();
            s.seal_run(w).unwrap();
        }
        // Each scratch reads back its own bytes, not the other job's.
        for (s, want) in [(&mut sa, &run_a), (&mut sb, &run_b)] {
            let mut sources = s.open_runs().unwrap();
            assert_eq!(sources.len(), 1);
            let mut got = Vec::new();
            while let Some(c) = sources[0].next_chunk().unwrap() {
                got.extend_from_slice(&c);
            }
            assert_eq!(&got, want);
        }
        sa.dispose();
        sb.dispose();
        // Both runs' extents are back on the free lists (free_bytes counts
        // only freed extents, so it starts at 0 and ends at everything the
        // two scratches reserved).
        assert!(
            volume.free_bytes() >= (run_a.len() + run_b.len()) as u64,
            "dispose must free all extents, freed only {}",
            volume.free_bytes()
        );
    }

    #[test]
    fn manifest_resume_recovers_intact_runs() {
        let storages: Vec<Arc<MemStorage>> = (0..2).map(|_| Arc::new(MemStorage::new())).collect();
        let path = tmp_manifest("resume");
        let run_a = run_payload(40, 1);
        let run_b = run_payload(40, 2);
        {
            let volume = striped_volume(2, Some(&storages));
            let mut s = StripeScratch::with_manifest(
                volume,
                256,
                &path,
                (run_a.len() + run_b.len()) as u64,
                40,
            )
            .unwrap();
            for payload in [&run_a, &run_b] {
                let mut w = s.create_run(payload.len() as u64).unwrap();
                w.push(payload).unwrap();
                s.seal_run(w).unwrap();
            }
            // "Crash": scratch dropped without open_runs; storages survive.
        }
        let volume = striped_volume(2, Some(&storages));
        let (mut s, report) = StripeScratch::resume(volume, &path).unwrap();
        assert_eq!(report.run_records, 40);
        assert!(report.corrupt.is_empty());
        assert_eq!(
            report.recovered,
            vec![
                RecoveredRun {
                    start_record: 0,
                    records: 40
                },
                RecoveredRun {
                    start_record: 40,
                    records: 40
                },
            ]
        );
        assert_eq!(s.recovered_runs().unwrap(), report.recovered);
        let mut sources = s.open_runs().unwrap();
        assert_eq!(sources.len(), 2);
        for (src, want) in sources.iter_mut().zip([&run_a, &run_b]) {
            let mut got = Vec::new();
            while let Some(c) = src.next_chunk().unwrap() {
                got.extend_from_slice(&c);
            }
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn resume_discards_corrupt_run_and_reforms_its_slot() {
        let storages: Vec<Arc<MemStorage>> = (0..2).map(|_| Arc::new(MemStorage::new())).collect();
        let path = tmp_manifest("corrupt");
        let run_a = run_payload(30, 3);
        let run_b = run_payload(30, 4);
        let b_base;
        {
            let volume = striped_volume(2, Some(&storages));
            let mut s =
                StripeScratch::with_manifest(volume.clone(), 128, &path, 6_000, 30).unwrap();
            for payload in [&run_a, &run_b] {
                let mut w = s.create_run(payload.len() as u64).unwrap();
                w.push(payload).unwrap();
                s.seal_run(w).unwrap();
            }
            // Corrupt run B (second file) on disk 0 behind the stripe layer.
            b_base = s.runs[1].file.def().members[0].base;
        }
        {
            let volume = striped_volume(2, Some(&storages));
            volume.engine().write(0, b_base, vec![0xAB]).wait().unwrap();
        }
        let volume = striped_volume(2, Some(&storages));
        let (mut s, report) = StripeScratch::resume(volume, &path).unwrap();
        assert_eq!(report.recovered.len(), 1);
        assert_eq!(report.recovered[0].start_record, 0);
        assert_eq!(report.corrupt.len(), 1);
        assert!(
            report.corrupt[0].contains("scratch-run-1"),
            "{:?}",
            report.corrupt
        );
        // The driver re-forms the gap: seal a replacement run; it must land
        // at start 30 (after the recovered run 0..30).
        let mut w = s.create_run(run_b.len() as u64).unwrap();
        w.push(&run_b).unwrap();
        s.seal_run(w).unwrap();
        let starts: Vec<u64> = s.runs.iter().map(|r| r.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 30]);
    }

    #[test]
    fn dispose_at_frees_manifested_runs_without_reading_them() {
        let storages: Vec<Arc<MemStorage>> = (0..2).map(|_| Arc::new(MemStorage::new())).collect();
        let path = tmp_manifest("dispose");
        let run_a = run_payload(40, 5);
        let run_b = run_payload(40, 6);
        {
            let volume = striped_volume(2, Some(&storages));
            let mut s = StripeScratch::new(volume, 256).named("jobX-run");
            s.attach_manifest(&path, (run_a.len() + run_b.len()) as u64, 40).unwrap();
            for payload in [&run_a, &run_b] {
                let mut w = s.create_run(payload.len() as u64).unwrap();
                w.push(payload).unwrap();
                s.seal_run(w).unwrap();
            }
            // "Crash": scratch dropped; manifest and run files survive.
        }
        let volume = striped_volume(2, Some(&storages));
        let freed = StripeScratch::dispose_at(&volume, &path).unwrap();
        assert_eq!(freed, 2);
        assert!(!path.exists(), "manifest removed after disposal");
        assert!(
            volume.free_bytes() >= (run_a.len() + run_b.len()) as u64,
            "extents back on the free lists, freed only {}",
            volume.free_bytes()
        );
    }

    #[test]
    fn scratch_full_names_the_shortfall() {
        let storages: Vec<Arc<MemStorage>> = (0..2).map(|_| Arc::new(MemStorage::new())).collect();
        let disks = (0..2)
            .map(|i| {
                SimDisk::new(
                    format!("s{i}"),
                    catalog::uncapped(),
                    storages[i].clone(),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        let volume = Arc::new(Volume::new(Arc::new(IoEngine::new(disks))).with_disk_limit(256));
        let mut s = StripeScratch::new(volume, 128);
        let err = match s.create_run(1 << 20) {
            Ok(_) => panic!("expected StorageFull"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let msg = err.to_string();
        assert!(msg.contains("scratch volume full (needed"), "{msg}");
        assert!(msg.contains("had"), "{msg}");
    }

    #[test]
    fn buffered_stream_yields_records_in_order() {
        let (mut data, _) = generate(GenConfig::datamation(500, 8));
        records_of_mut(&mut data).sort_by_key(|a| a.key);
        let src = MemSource::new(data.clone(), 7 * RECORD_LEN);
        let mut stream = BufferedRunStream::new(src).unwrap();
        let mut n = 0;
        let mut prev: Option<[u8; 10]> = None;
        while let Some(r) = stream.head().copied() {
            if let Some(p) = prev {
                assert!(p <= r.key);
            }
            prev = Some(r.key);
            stream.advance().unwrap();
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn buffered_stream_empty_source() {
        let src = MemSource::new(Vec::new(), 100);
        let stream = BufferedRunStream::new(src).unwrap();
        assert!(stream.head().is_none());
    }
}
