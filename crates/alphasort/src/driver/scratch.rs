//! Scratch storage for two-pass sorts.
//!
//! §6: "A two-pass sort requires twice the disk bandwidth to carry the runs
//! being stored on disk and being read back in during merge phase." The
//! [`ScratchStore`] abstraction supplies per-run writers during run
//! formation and per-run sources during the merge; [`StripeScratch`] puts
//! runs on striped simulated disks, [`MemScratch`] keeps them in memory for
//! tests.

use std::io;
use std::sync::Arc;

use alphasort_dmgen::{Record, RECORD_LEN};
use alphasort_stripefs::Volume;

use crate::io::{MemSink, MemSource, RecordSink, RecordSource, StripeSink, StripeSource};
use crate::merge::RunStream;

/// Where a two-pass sort parks its runs between the passes.
pub trait ScratchStore: Send {
    /// Sink type runs are written through.
    type Writer: RecordSink;
    /// Source type runs are read back through.
    type Source: RecordSource;

    /// Start a new scratch run of roughly `size_hint` bytes.
    fn create_run(&mut self, size_hint: u64) -> io::Result<Self::Writer>;

    /// Finish a run's writer, recording it for the merge pass.
    fn seal_run(&mut self, writer: Self::Writer) -> io::Result<()>;

    /// Open every sealed run for reading, in creation order.
    fn open_runs(&mut self) -> io::Result<Vec<Self::Source>>;
}

/// In-memory scratch (tests, small sorts).
#[derive(Default)]
pub struct MemScratch {
    runs: Vec<Vec<u8>>,
    /// Chunk size handed back by the sources.
    chunk: usize,
}

impl MemScratch {
    /// Scratch whose read-back sources deliver `chunk`-byte pieces.
    pub fn new(chunk: usize) -> Self {
        MemScratch {
            runs: Vec::new(),
            chunk,
        }
    }

    /// Number of sealed runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

impl ScratchStore for MemScratch {
    type Writer = MemSink;
    type Source = MemSource;

    fn create_run(&mut self, _size_hint: u64) -> io::Result<MemSink> {
        Ok(MemSink::new())
    }

    fn seal_run(&mut self, mut writer: MemSink) -> io::Result<()> {
        writer.complete()?;
        self.runs.push(writer.into_inner());
        Ok(())
    }

    fn open_runs(&mut self) -> io::Result<Vec<MemSource>> {
        let chunk = if self.chunk > 0 {
            self.chunk
        } else {
            64 * 1024
        };
        Ok(self
            .runs
            .drain(..)
            .map(|r| MemSource::new(r, chunk))
            .collect())
    }
}

/// Scratch on striped simulated disks: each run is its own striped file
/// across the scratch volume's disks.
pub struct StripeScratch {
    volume: Arc<Volume>,
    chunk: u64,
    runs: Vec<Arc<alphasort_stripefs::StripedFile>>,
    next_id: usize,
    open_writers: Vec<(usize, Arc<alphasort_stripefs::StripedFile>)>,
    /// Runs handed out by `open_runs`, freed when the next level creates.
    pending_free: Vec<Arc<alphasort_stripefs::StripedFile>>,
}

impl StripeScratch {
    /// Scratch over `volume`, striping each run across all its disks with
    /// the given chunk size.
    pub fn new(volume: Arc<Volume>, chunk: u64) -> Self {
        StripeScratch {
            volume,
            chunk,
            runs: Vec::new(),
            next_id: 0,
            open_writers: Vec::new(),
            pending_free: Vec::new(),
        }
    }
}

impl ScratchStore for StripeScratch {
    type Writer = StripeSink;
    type Source = StripeSource;

    fn create_run(&mut self, size_hint: u64) -> io::Result<StripeSink> {
        let id = self.next_id;
        self.next_id += 1;
        let file = Arc::new(self.volume.create_across_all(
            format!("scratch-run-{id}"),
            self.chunk,
            size_hint,
        ));
        self.open_writers.push((id, Arc::clone(&file)));
        Ok(StripeSink::new(file))
    }

    fn seal_run(&mut self, mut writer: StripeSink) -> io::Result<()> {
        writer.complete()?;
        // Writers seal in creation order in the two-pass driver.
        let (_, file) = self.open_writers.remove(0);
        self.runs.push(file);
        Ok(())
    }

    fn open_runs(&mut self) -> io::Result<Vec<StripeSource>> {
        // The *previous* batch handed out by open_runs has been fully
        // consumed by now (the driver merges an entire cascade level before
        // asking for the next), so its extents can be recycled for the
        // runs the coming level will create. Freeing any earlier — while a
        // level is still reading them — would let create_run() hand live
        // extents to a new writer.
        for f in self.pending_free.drain(..) {
            self.volume.delete(&f);
        }
        let sources: Vec<StripeSource> = self
            .runs
            .iter()
            .map(|f| StripeSource::new(Arc::clone(f)))
            .collect();
        self.pending_free.append(&mut self.runs);
        Ok(sources)
    }
}

/// Adapts a [`RecordSource`] into a [`RunStream`] of records for the merge.
///
/// Source chunk boundaries need not align with records (a striped source's
/// strides generally do not); partial records are carried across chunks. A
/// source that ends mid-record yields `InvalidData`.
pub struct BufferedRunStream<S: RecordSource> {
    source: S,
    buf: Vec<u8>,
    /// Byte offset of the head record within `buf`.
    off: usize,
    head: Option<Record>,
    exhausted: bool,
}

impl<S: RecordSource> BufferedRunStream<S> {
    /// Wrap `source`; the first record is fetched eagerly.
    pub fn new(source: S) -> io::Result<Self> {
        let mut s = BufferedRunStream {
            source,
            buf: Vec::new(),
            off: 0,
            head: None,
            exhausted: false,
        };
        s.refill()?;
        Ok(s)
    }

    fn refill(&mut self) -> io::Result<()> {
        while self.buf.len() - self.off < RECORD_LEN && !self.exhausted {
            // Compact, then append the next chunk.
            if self.off > 0 {
                self.buf.drain(..self.off);
                self.off = 0;
            }
            match self.source.next_chunk()? {
                Some(chunk) => self.buf.extend_from_slice(&chunk),
                None => self.exhausted = true,
            }
        }
        let avail = self.buf.len() - self.off;
        if avail == 0 {
            self.head = None;
            return Ok(());
        }
        if avail < RECORD_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("scratch run ends mid-record ({avail} trailing bytes)"),
            ));
        }
        self.head = Some(Record::from_bytes(
            &self.buf[self.off..self.off + RECORD_LEN],
        ));
        Ok(())
    }
}

impl<S: RecordSource> RunStream for BufferedRunStream<S> {
    fn head(&self) -> Option<&Record> {
        self.head.as_ref()
    }

    fn advance(&mut self) -> io::Result<()> {
        self.off += RECORD_LEN;
        self.refill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, records_of_mut, GenConfig};
    use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};

    #[test]
    fn mem_scratch_roundtrip() {
        let mut s = MemScratch::new(250);
        let mut w = s.create_run(0).unwrap();
        w.push(b"abcde").unwrap();
        s.seal_run(w).unwrap();
        let mut w2 = s.create_run(0).unwrap();
        w2.push(b"XY").unwrap();
        s.seal_run(w2).unwrap();
        assert_eq!(s.run_count(), 2);
        let mut sources = s.open_runs().unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0].next_chunk().unwrap().unwrap(), b"abcde");
        assert_eq!(sources[1].next_chunk().unwrap().unwrap(), b"XY");
    }

    #[test]
    fn stripe_scratch_roundtrip() {
        let disks = (0..4)
            .map(|i| {
                SimDisk::new(
                    format!("s{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        let volume = Arc::new(Volume::new(Arc::new(IoEngine::new(disks))));
        let mut s = StripeScratch::new(volume, 512);

        let payload: Vec<u8> = (0..3_000).map(|i| (i % 7) as u8).collect();
        let mut w = s.create_run(3_000).unwrap();
        w.push(&payload).unwrap();
        s.seal_run(w).unwrap();

        let mut sources = s.open_runs().unwrap();
        let mut got = Vec::new();
        while let Some(c) = sources[0].next_chunk().unwrap() {
            got.extend_from_slice(&c);
        }
        assert_eq!(got, payload);
    }

    #[test]
    fn buffered_stream_yields_records_in_order() {
        let (mut data, _) = generate(GenConfig::datamation(500, 8));
        records_of_mut(&mut data).sort_by_key(|a| a.key);
        let src = MemSource::new(data.clone(), 7 * RECORD_LEN);
        let mut stream = BufferedRunStream::new(src).unwrap();
        let mut n = 0;
        let mut prev: Option<[u8; 10]> = None;
        while let Some(r) = stream.head().copied() {
            if let Some(p) = prev {
                assert!(p <= r.key);
            }
            prev = Some(r.key);
            stream.advance().unwrap();
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn buffered_stream_empty_source() {
        let src = MemSource::new(Vec::new(), 100);
        let stream = BufferedRunStream::new(src).unwrap();
        assert!(stream.head().is_none());
    }
}
