//! External-sort drivers: one-pass, two-pass, and the facade that picks.
//!
//! §6 frames the choice: "A two-pass sort uses less memory, but uses twice
//! the disk bandwidth. … In particular, the Datamation sort benchmark should
//! be done in one pass." [`ExternalSorter`] consults the [`Planner`] and
//! dispatches to [`one_pass`] or [`two_pass`].

mod onepass;
mod scratch;
mod twopass;

pub use onepass::one_pass;
pub use scratch::{
    BufferedRunStream, MemScratch, RecoveredRun, ResumeReport, ScratchStore, StripeScratch,
};
pub use twopass::two_pass;

use std::io;

use crate::entry::RecordLayout;
use crate::io::{RecordSink, RecordSource};
use crate::kernels::Kernel;
use crate::planner::{PassPlan, Planner};
use crate::runform::Representation;
use crate::stats::SortStats;

/// Tuning knobs for a sort run.
#[derive(Clone, Debug)]
pub struct SortConfig {
    /// Records per QuickSort run (the paper uses 100,000 for 1 M records:
    /// "between ten and one hundred runs" in a one-pass sort).
    pub run_records: usize,
    /// Sort-array representation for run formation.
    pub representation: Representation,
    /// Worker threads for sort and gather chores (0 = uniprocessor).
    pub workers: usize,
    /// Records per gather batch / output buffer.
    pub gather_batch: usize,
    /// Memory budget in bytes for the planner (one- vs two-pass decision).
    pub memory_budget: u64,
    /// Maximum merge fan-in for the two-pass driver. When a sort produces
    /// more runs than this, intermediate *cascade* merge passes combine
    /// groups of `max_fanin` runs until one final merge fits (classic
    /// external sorting; beyond the paper's one/two-pass regime but needed
    /// once inputs are thousands of times memory).
    pub max_fanin: usize,
    /// Key ranges for the partitioned parallel merge (0 = the classic
    /// serial tournament). With `P > 0` the final merge is cut into `P`
    /// disjoint key ranges by sampled splitters and each range merges
    /// independently — output stays byte-identical to the serial merge.
    pub merge_workers: usize,
    /// Hot-path kernel variant for run formation and tree replay (see
    /// [`crate::kernels`]). Every kernel is byte-identical to the default
    /// scalar oracle; the choice only moves CPU time.
    pub kernel: Kernel,
    /// Record model the sort operates on (see [`RecordLayout`]). Like the
    /// kernel, the layout only moves CPU time: for a given layout every
    /// configuration produces byte-identical output. `VarLen` routes both
    /// drivers to the LCP/OVC-aware pipeline in [`crate::varlen`].
    pub layout: RecordLayout,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            run_records: 100_000,
            representation: Representation::KeyPrefix,
            workers: 0,
            gather_batch: 10_000,
            memory_budget: 256 << 20,
            max_fanin: 128,
            merge_workers: 0,
            kernel: Kernel::Scalar,
            layout: RecordLayout::Datamation,
        }
    }
}

/// Result of a sort: where the time went plus total bytes written.
#[derive(Clone, Debug)]
pub struct SortOutcome {
    /// Phase breakdown and counters.
    pub stats: SortStats,
    /// Logical bytes written to the output sink.
    pub bytes: u64,
    /// The plan that was executed.
    pub plan: PassPlan,
}

/// Facade: plan (one- vs two-pass) and run the sort.
pub struct ExternalSorter {
    cfg: SortConfig,
}

impl ExternalSorter {
    /// Sorter with the given configuration.
    pub fn new(cfg: SortConfig) -> Self {
        ExternalSorter { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SortConfig {
        &self.cfg
    }

    /// Sort `source` into `sink`, spilling to `scratch` if the input does
    /// not fit the memory budget. Sources without a size hint are assumed
    /// not to fit (conservative: two-pass always works).
    pub fn sort<Src, Snk, Scr>(
        &self,
        source: &mut Src,
        sink: &mut Snk,
        scratch: &mut Scr,
    ) -> io::Result<SortOutcome>
    where
        Src: RecordSource,
        Snk: RecordSink,
        Scr: ScratchStore,
    {
        let planner = Planner::new(self.cfg.memory_budget);
        let plan = match source.size_hint() {
            Some(bytes) => {
                let (plan, _kernel) = planner.plan_with_kernel(bytes, self.cfg.kernel);
                plan
            }
            None => PassPlan::TwoPass,
        };
        match plan {
            PassPlan::OnePass => one_pass(source, sink, &self.cfg),
            PassPlan::TwoPass => two_pass(source, sink, scratch, &self.cfg),
        }
    }
}
