//! Phase timing and counters for a sort run.
//!
//! The paper reports a phase-by-phase walk-through (§7) and a "where the
//! time goes" breakdown (Figure 7); [`SortStats`] captures the same
//! decomposition so experiments can print it.
//!
//! Timing is accumulated through [`timed_phase`], which both adds the
//! closure's duration to a stats slot *and* records an `alphasort_obs`
//! span under the matching [`alphasort_obs::phase`] name. That single
//! entry point is what keeps the legacy counters and the exported trace
//! in agreement: [`SortStats::from_trace`] folds a snapshot back into
//! stats by summing spans per phase.

use std::time::{Duration, Instant};

use alphasort_obs as obs;

/// Timings and counters accumulated over one external sort.
#[derive(Clone, Debug, Default)]
pub struct SortStats {
    /// Records sorted.
    pub records: u64,
    /// Bytes actually read and sorted (the sum of input chunk lengths).
    /// When 0 (older callers), derived figures fall back to assuming
    /// `records` × `RECORD_LEN`.
    pub bytes_sorted: u64,
    /// Number of runs formed.
    pub runs: u64,
    /// Lengths of the formed runs, in records.
    pub run_lengths: Vec<u64>,
    /// Wall time spent reading input (blocked on the source).
    pub read_wait: Duration,
    /// Wall time spent in run formation (QuickSort / entry extraction).
    pub sort_time: Duration,
    /// Wall time spent merging pointers.
    pub merge_time: Duration,
    /// Wall time spent gathering records into output buffers.
    pub gather_time: Duration,
    /// Wall time spent writing output (blocked on the sink).
    pub write_wait: Duration,
    /// Wall time for the whole sort, launch to completion.
    pub elapsed: Duration,
    /// For two-pass sorts: time writing and reading back scratch runs.
    pub spill_time: Duration,
    /// Whether the sort ran in one pass.
    pub one_pass: bool,
    /// Intermediate cascade merge passes performed (0 unless the run count
    /// exceeded the configured merge fan-in).
    pub merge_passes: u32,
    /// For distributed sorts: bytes shipped to peer nodes during the
    /// exchange phase (0 for single-node sorts).
    pub exchange_bytes_out: u64,
    /// For distributed sorts: bytes received from peer nodes during the
    /// exchange phase.
    pub exchange_bytes_in: u64,
    /// For distributed sorts: wall time blocked waiting on the exchange
    /// (sends that back-pressured plus receives with nothing pending).
    pub exchange_wait: Duration,
    /// For distributed sorts: records each node owned after the exchange
    /// (empty for single-node sorts). Feed [`SortStats::exchange_skew`].
    pub partition_sizes: Vec<u64>,
    /// For resumed two-pass sorts: runs recovered intact from a previous
    /// attempt's scratch manifest (counted in `runs` too).
    pub runs_recovered: u64,
    /// For resumed two-pass sorts: runs re-formed from the input because
    /// they were missing or corrupt in the previous attempt's scratch.
    pub runs_reformed: u64,
    /// For partitioned merges: records each key range merged (empty for
    /// serial merges). Feed [`SortStats::merge_skew`].
    pub merge_range_records: Vec<u64>,
    /// For partitioned merges: wall time each range's merge took, indexed
    /// like `merge_range_records`. Feed
    /// [`SortStats::merge_range_throughput_mbps`].
    pub merge_range_time: Vec<Duration>,
}

impl SortStats {
    /// The identity element of [`SortStats::merge`]: all-zero except
    /// `one_pass`, which must start `true` so ANDing worker flags works.
    /// Fold worker stats starting from this, never from `Default`.
    pub fn neutral() -> SortStats {
        SortStats {
            one_pass: true,
            ..Default::default()
        }
    }

    /// Combine stats from another worker (a pool thread or a cluster
    /// node) into `self`.
    ///
    /// Field policy, chosen so the result reads like one sort:
    /// * **compute phases** (`sort_time`, `merge_time`, `gather_time`)
    ///   *sum* — they are CPU busy time and can legitimately exceed the
    ///   wall clock on a multiprocessor (that excess is Figure 7's
    ///   overlap);
    /// * **waits and wall clock** (`read_wait`, `write_wait`,
    ///   `spill_time`, `exchange_wait`, `elapsed`, `merge_passes`)
    ///   *max* — workers wait concurrently, so the critical path is the
    ///   slowest worker, not the total;
    /// * **counters** (`records`, `bytes_sorted`, `runs`,
    ///   `exchange_bytes_*`) *sum*; run/partition vectors concatenate;
    /// * `one_pass` ANDs: the combined sort was one-pass only if every
    ///   worker's was.
    pub fn merge(&mut self, other: &SortStats) {
        self.records += other.records;
        self.bytes_sorted += other.bytes_sorted;
        self.runs += other.runs;
        self.run_lengths.extend_from_slice(&other.run_lengths);
        self.sort_time += other.sort_time;
        self.merge_time += other.merge_time;
        self.gather_time += other.gather_time;
        self.read_wait = self.read_wait.max(other.read_wait);
        self.write_wait = self.write_wait.max(other.write_wait);
        self.spill_time = self.spill_time.max(other.spill_time);
        self.exchange_wait = self.exchange_wait.max(other.exchange_wait);
        self.elapsed = self.elapsed.max(other.elapsed);
        self.merge_passes = self.merge_passes.max(other.merge_passes);
        self.one_pass = self.one_pass && other.one_pass;
        self.exchange_bytes_out += other.exchange_bytes_out;
        self.exchange_bytes_in += other.exchange_bytes_in;
        self.partition_sizes
            .extend_from_slice(&other.partition_sizes);
        self.runs_recovered += other.runs_recovered;
        self.runs_reformed += other.runs_reformed;
        self.merge_range_records
            .extend_from_slice(&other.merge_range_records);
        self.merge_range_time.extend_from_slice(&other.merge_range_time);
    }

    /// Derive stats from a recorded trace: the inverse of instrumenting
    /// with [`timed_phase`]. Phase spans sum into the matching slots,
    /// `elapsed` is the longest top-level driver span, counters come from
    /// span attributes (`records` on sort spans, `bytes` on read spans).
    pub fn from_trace(snap: &obs::TraceSnapshot) -> SortStats {
        let totals = obs::phase_totals(snap);
        let get = |name: &str| totals.get(name).map(|&(d, _)| d).unwrap_or_default();
        let mut st = SortStats {
            read_wait: get(obs::phase::READ),
            sort_time: get(obs::phase::SORT),
            merge_time: get(obs::phase::MERGE),
            gather_time: get(obs::phase::GATHER),
            write_wait: get(obs::phase::WRITE),
            spill_time: get(obs::phase::SPILL),
            exchange_wait: get(obs::phase::EXCHANGE),
            elapsed: obs::elapsed_of(snap),
            one_pass: totals.contains_key(obs::phase::ONE_PASS)
                && !totals.contains_key(obs::phase::TWO_PASS),
            ..Default::default()
        };
        for e in &snap.events {
            if e.name == obs::phase::SORT {
                st.runs += 1;
                for (k, v) in &e.attrs {
                    if let ("records", obs::AttrValue::U64(n)) = (*k, v) {
                        st.records += n;
                        st.run_lengths.push(*n);
                    }
                }
            } else if e.name == obs::phase::READ {
                for (k, v) in &e.attrs {
                    if let ("bytes", obs::AttrValue::U64(n)) = (*k, v) {
                        st.bytes_sorted += n;
                    }
                }
            }
        }
        st
    }

    /// Average run length in records (0 when no runs).
    pub fn avg_run_len(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.records as f64 / self.runs as f64
        }
    }

    /// Largest post-exchange partition over the ideal share — 1.0 is
    /// perfect balance, matching `PartitionSortStats::skew`.
    pub fn exchange_skew(&self) -> f64 {
        let total: u64 = self.partition_sizes.iter().sum();
        if total == 0 || self.partition_sizes.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.partition_sizes.len() as f64;
        let max = *self.partition_sizes.iter().max().expect("non-empty") as f64;
        max / ideal
    }

    /// Largest merged key range over the ideal share — 1.0 is perfect
    /// balance, same convention as [`exchange_skew`](Self::exchange_skew).
    /// 1.0 also for serial merges (no ranges recorded).
    pub fn merge_skew(&self) -> f64 {
        let total: u64 = self.merge_range_records.iter().sum();
        if total == 0 || self.merge_range_records.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.merge_range_records.len() as f64;
        let max = *self.merge_range_records.iter().max().expect("non-empty") as f64;
        max / ideal
    }

    /// Per-range merge throughput in MB/s (records × RECORD_LEN over the
    /// range's wall time; 0.0 where the timer read zero). Empty for serial
    /// merges.
    pub fn merge_range_throughput_mbps(&self) -> Vec<f64> {
        self.merge_range_records
            .iter()
            .zip(&self.merge_range_time)
            .map(|(&n, d)| {
                let secs = d.as_secs_f64();
                if secs == 0.0 {
                    0.0
                } else {
                    (n * alphasort_dmgen::RECORD_LEN as u64) as f64 / 1e6 / secs
                }
            })
            .collect()
    }

    /// Bytes this sort actually processed: `bytes_sorted` when counted,
    /// else the historical estimate of `records` fixed-length records.
    pub fn bytes_processed(&self) -> u64 {
        if self.bytes_sorted > 0 {
            self.bytes_sorted
        } else {
            self.records * alphasort_dmgen::RECORD_LEN as u64
        }
    }

    /// Sort throughput in MB/s over total elapsed time, based on bytes
    /// actually processed (not an assumed record size).
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bytes_processed() as f64 / 1e6 / secs
    }
}

/// Tiny helper: time a closure, adding its duration to `slot`.
pub fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    *slot += t0.elapsed();
    out
}

/// Time a closure, adding its duration to `slot` *and* recording an obs
/// span named `name` over the same interval. The single timing point for
/// pipeline phases: stats and trace cannot drift apart because they are
/// measured by the same call.
pub fn timed_phase<T>(name: &'static str, slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let _g = obs::span(name);
    let t0 = Instant::now();
    let out = f();
    *slot += t0.elapsed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut d = Duration::ZERO;
        let x = timed(&mut d, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(x, 42);
        assert!(d >= Duration::from_millis(4));
        timed(&mut d, || ());
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn timed_phase_accumulates_like_timed() {
        // Recorder disabled: must still time correctly (span is a no-op).
        let mut d = Duration::ZERO;
        let x = timed_phase(obs::phase::SORT, &mut d, || {
            std::thread::sleep(Duration::from_millis(5));
            7
        });
        assert_eq!(x, 7);
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn derived_metrics() {
        let st = SortStats {
            records: 1000,
            runs: 10,
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        assert_eq!(st.avg_run_len(), 100.0);
        assert!((st.throughput_mbps() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn throughput_uses_actual_bytes_when_counted() {
        // 1000 records but only 50 kB actually processed (e.g. a future
        // variable-length format): throughput must follow real bytes, not
        // records × RECORD_LEN.
        let st = SortStats {
            records: 1000,
            bytes_sorted: 50_000,
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        assert!((st.throughput_mbps() - 0.05).abs() < 1e-9);
        assert_eq!(st.bytes_processed(), 50_000);
    }

    #[test]
    fn zero_division_is_safe() {
        let st = SortStats::default();
        assert_eq!(st.avg_run_len(), 0.0);
        assert_eq!(st.throughput_mbps(), 0.0);
        assert_eq!(st.exchange_skew(), 1.0);
    }

    #[test]
    fn merge_skew_is_max_over_ideal_and_concatenates_across_workers() {
        let st = SortStats {
            merge_range_records: vec![50, 150, 100, 100],
            merge_range_time: vec![Duration::from_secs(1); 4],
            ..Default::default()
        };
        // Ideal share is 100; the largest range holds 150.
        assert!((st.merge_skew() - 1.5).abs() < 1e-12);
        let tp = st.merge_range_throughput_mbps();
        assert_eq!(tp.len(), 4);
        assert!((tp[1] - 0.015).abs() < 1e-9); // 150 × 100 B over 1 s
        let mut m = SortStats::neutral();
        m.merge(&st);
        m.merge(&st);
        assert_eq!(m.merge_range_records.len(), 8);
        assert_eq!(m.merge_range_time.len(), 8);
        // Serial sorts record no ranges: skew reads as balanced.
        assert_eq!(SortStats::default().merge_skew(), 1.0);
    }

    #[test]
    fn exchange_skew_is_max_over_ideal() {
        let st = SortStats {
            partition_sizes: vec![100, 300, 100, 100],
            ..Default::default()
        };
        // Ideal share is 150; the largest partition holds 300.
        assert!((st.exchange_skew() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_compute_maxes_waits() {
        let a = SortStats {
            records: 100,
            bytes_sorted: 10_000,
            runs: 2,
            run_lengths: vec![60, 40],
            sort_time: Duration::from_millis(5),
            merge_time: Duration::from_millis(2),
            gather_time: Duration::from_millis(1),
            read_wait: Duration::from_millis(7),
            write_wait: Duration::from_millis(3),
            exchange_wait: Duration::from_millis(9),
            elapsed: Duration::from_millis(20),
            one_pass: true,
            exchange_bytes_out: 11,
            partition_sizes: vec![100],
            ..Default::default()
        };
        let b = SortStats {
            records: 50,
            bytes_sorted: 5_000,
            runs: 1,
            run_lengths: vec![50],
            sort_time: Duration::from_millis(8),
            merge_time: Duration::from_millis(1),
            gather_time: Duration::from_millis(4),
            read_wait: Duration::from_millis(2),
            write_wait: Duration::from_millis(6),
            exchange_wait: Duration::from_millis(4),
            elapsed: Duration::from_millis(30),
            spill_time: Duration::from_millis(12),
            one_pass: false,
            merge_passes: 1,
            exchange_bytes_in: 7,
            partition_sizes: vec![50],
            ..Default::default()
        };
        let mut m = SortStats::neutral();
        m.merge(&a);
        m.merge(&b);
        // Counters sum, vectors concatenate.
        assert_eq!(m.records, 150);
        assert_eq!(m.bytes_sorted, 15_000);
        assert_eq!(m.runs, 3);
        assert_eq!(m.run_lengths, vec![60, 40, 50]);
        assert_eq!(m.partition_sizes, vec![100, 50]);
        assert_eq!(m.exchange_bytes_out, 11);
        assert_eq!(m.exchange_bytes_in, 7);
        // Compute phases sum (CPU busy time across workers)...
        assert_eq!(m.sort_time, Duration::from_millis(13));
        assert_eq!(m.merge_time, Duration::from_millis(3));
        assert_eq!(m.gather_time, Duration::from_millis(5));
        // ...waits and wall clock take the critical path (max).
        assert_eq!(m.read_wait, Duration::from_millis(7));
        assert_eq!(m.write_wait, Duration::from_millis(6));
        assert_eq!(m.exchange_wait, Duration::from_millis(9));
        assert_eq!(m.spill_time, Duration::from_millis(12));
        assert_eq!(m.elapsed, Duration::from_millis(30));
        assert_eq!(m.merge_passes, 1);
        // one_pass only if every worker was one-pass.
        assert!(!m.one_pass);
    }

    #[test]
    fn neutral_is_merge_identity() {
        let a = SortStats {
            records: 9,
            one_pass: true,
            elapsed: Duration::from_millis(4),
            ..Default::default()
        };
        let mut m = SortStats::neutral();
        m.merge(&a);
        assert_eq!(m.records, a.records);
        assert_eq!(m.elapsed, a.elapsed);
        assert!(m.one_pass);
        // Folding nothing keeps the identity's one_pass=true, matching the
        // historical "empty cluster is trivially one-pass" behavior.
        assert!(SortStats::neutral().one_pass);
    }
}
