//! Phase timing and counters for a sort run.
//!
//! The paper reports a phase-by-phase walk-through (§7) and a "where the
//! time goes" breakdown (Figure 7); [`SortStats`] captures the same
//! decomposition so experiments can print it.

use std::time::{Duration, Instant};

/// Timings and counters accumulated over one external sort.
#[derive(Clone, Debug, Default)]
pub struct SortStats {
    /// Records sorted.
    pub records: u64,
    /// Number of runs formed.
    pub runs: u64,
    /// Lengths of the formed runs, in records.
    pub run_lengths: Vec<u64>,
    /// Wall time spent reading input (blocked on the source).
    pub read_wait: Duration,
    /// Wall time spent in run formation (QuickSort / entry extraction).
    pub sort_time: Duration,
    /// Wall time spent merging pointers.
    pub merge_time: Duration,
    /// Wall time spent gathering records into output buffers.
    pub gather_time: Duration,
    /// Wall time spent writing output (blocked on the sink).
    pub write_wait: Duration,
    /// Wall time for the whole sort, launch to completion.
    pub elapsed: Duration,
    /// For two-pass sorts: time writing and reading back scratch runs.
    pub spill_time: Duration,
    /// Whether the sort ran in one pass.
    pub one_pass: bool,
    /// Intermediate cascade merge passes performed (0 unless the run count
    /// exceeded the configured merge fan-in).
    pub merge_passes: u32,
    /// For distributed sorts: bytes shipped to peer nodes during the
    /// exchange phase (0 for single-node sorts).
    pub exchange_bytes_out: u64,
    /// For distributed sorts: bytes received from peer nodes during the
    /// exchange phase.
    pub exchange_bytes_in: u64,
    /// For distributed sorts: wall time blocked waiting on the exchange
    /// (sends that back-pressured plus receives with nothing pending).
    pub exchange_wait: Duration,
    /// For distributed sorts: records each node owned after the exchange
    /// (empty for single-node sorts). Feed [`SortStats::exchange_skew`].
    pub partition_sizes: Vec<u64>,
}

impl SortStats {
    /// Average run length in records (0 when no runs).
    pub fn avg_run_len(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.records as f64 / self.runs as f64
        }
    }

    /// Largest post-exchange partition over the ideal share — 1.0 is
    /// perfect balance, matching `PartitionSortStats::skew`.
    pub fn exchange_skew(&self) -> f64 {
        let total: u64 = self.partition_sizes.iter().sum();
        if total == 0 || self.partition_sizes.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.partition_sizes.len() as f64;
        let max = *self.partition_sizes.iter().max().expect("non-empty") as f64;
        max / ideal
    }

    /// Sort throughput in MB/s over total elapsed time.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.records as f64 * alphasort_dmgen::RECORD_LEN as f64 / 1e6 / secs
    }
}

/// Tiny helper: time a closure, adding its duration to `slot`.
pub fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    *slot += t0.elapsed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut d = Duration::ZERO;
        let x = timed(&mut d, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(x, 42);
        assert!(d >= Duration::from_millis(4));
        timed(&mut d, || ());
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn derived_metrics() {
        let st = SortStats {
            records: 1000,
            runs: 10,
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        assert_eq!(st.avg_run_len(), 100.0);
        assert!((st.throughput_mbps() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_division_is_safe() {
        let st = SortStats::default();
        assert_eq!(st.avg_run_len(), 0.0);
        assert_eq!(st.throughput_mbps(), 0.0);
        assert_eq!(st.exchange_skew(), 1.0);
    }

    #[test]
    fn exchange_skew_is_max_over_ideal() {
        let st = SortStats {
            partition_sizes: vec![100, 300, 100, 100],
            ..Default::default()
        };
        // Ideal share is 150; the largest partition holds 300.
        assert!((st.exchange_skew() - 2.0).abs() < 1e-12);
    }
}
