//! Phase timing and counters for a sort run.
//!
//! The paper reports a phase-by-phase walk-through (§7) and a "where the
//! time goes" breakdown (Figure 7); [`SortStats`] captures the same
//! decomposition so experiments can print it.

use std::time::{Duration, Instant};

/// Timings and counters accumulated over one external sort.
#[derive(Clone, Debug, Default)]
pub struct SortStats {
    /// Records sorted.
    pub records: u64,
    /// Number of runs formed.
    pub runs: u64,
    /// Lengths of the formed runs, in records.
    pub run_lengths: Vec<u64>,
    /// Wall time spent reading input (blocked on the source).
    pub read_wait: Duration,
    /// Wall time spent in run formation (QuickSort / entry extraction).
    pub sort_time: Duration,
    /// Wall time spent merging pointers.
    pub merge_time: Duration,
    /// Wall time spent gathering records into output buffers.
    pub gather_time: Duration,
    /// Wall time spent writing output (blocked on the sink).
    pub write_wait: Duration,
    /// Wall time for the whole sort, launch to completion.
    pub elapsed: Duration,
    /// For two-pass sorts: time writing and reading back scratch runs.
    pub spill_time: Duration,
    /// Whether the sort ran in one pass.
    pub one_pass: bool,
    /// Intermediate cascade merge passes performed (0 unless the run count
    /// exceeded the configured merge fan-in).
    pub merge_passes: u32,
}

impl SortStats {
    /// Average run length in records (0 when no runs).
    pub fn avg_run_len(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.records as f64 / self.runs as f64
        }
    }

    /// Sort throughput in MB/s over total elapsed time.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.records as f64 * alphasort_dmgen::RECORD_LEN as f64 / 1e6 / secs
    }
}

/// Tiny helper: time a closure, adding its duration to `slot`.
pub fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    *slot += t0.elapsed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut d = Duration::ZERO;
        let x = timed(&mut d, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(x, 42);
        assert!(d >= Duration::from_millis(4));
        timed(&mut d, || ());
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn derived_metrics() {
        let st = SortStats {
            records: 1000,
            runs: 10,
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        assert_eq!(st.avg_run_len(), 100.0);
        assert!((st.throughput_mbps() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_division_is_safe() {
        let st = SortStats::default();
        assert_eq!(st.avg_run_len(), 0.0);
        assert_eq!(st.throughput_mbps(), 0.0);
    }
}
