//! Merge scheduling for unequal runs: which runs to merge together when the
//! fan-in is limited.
//!
//! The two-pass driver's cascade merges runs in arrival order, which is
//! fine when runs are equal (QuickSort runs are, §4: "typically smaller
//! than half of memory" and uniform). Replacement-selection runs are *not*
//! equal — ≈2× memory on average with wide variance — and for unequal runs
//! the classic result (Knuth §5.4.9, the F-ary Huffman construction)
//! schedules the cheapest total data movement by always merging the F
//! currently-smallest runs. This module computes such schedules and their
//! costs so the trade-off can be measured; `exp_onepass` prints the
//! comparison.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One merge step: the (current) run ids combined into a new run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeStep {
    /// Input run ids (indices into the original lengths for ids < n, or
    /// prior steps' outputs for ids ≥ n, numbered n, n+1, …).
    pub inputs: Vec<usize>,
    /// Bytes (or records — the unit of the input lengths) moved.
    pub cost: u64,
}

/// A full schedule: the steps plus the summed movement cost (the final
/// merge into the sink included).
#[derive(Clone, Debug, Default)]
pub struct MergeSchedule {
    /// Steps in execution order; the last step produces the output.
    pub steps: Vec<MergeStep>,
    /// Total units moved across all steps.
    pub total_cost: u64,
}

/// The optimal (Huffman) schedule for merging `lengths` with fan-in `fanin`.
///
/// Every step merges the `fanin` smallest live runs; dummies of length 0
/// pad the first step so every later step is full — the standard F-ary
/// Huffman optimality condition.
///
/// # Panics
/// If `fanin < 2`.
pub fn optimal_schedule(lengths: &[u64], fanin: usize) -> MergeSchedule {
    assert!(fanin >= 2, "fan-in must be at least 2");
    let n = lengths.len();
    if n == 0 {
        return MergeSchedule::default();
    }
    if n == 1 {
        // Single run still crosses to the sink once.
        return MergeSchedule {
            steps: vec![MergeStep {
                inputs: vec![0],
                cost: lengths[0],
            }],
            total_cost: lengths[0],
        };
    }
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = lengths
        .iter()
        .enumerate()
        .map(|(i, &l)| Reverse((l, i)))
        .collect();
    // Dummy count so (n + dummies - 1) ≡ 0 (mod fanin - 1).
    let rem = (n - 1) % (fanin - 1);
    let dummies = if rem == 0 { 0 } else { fanin - 1 - rem };
    for _ in 0..dummies {
        heap.push(Reverse((0, usize::MAX)));
    }

    let mut steps = Vec::new();
    let mut total = 0u64;
    let mut next_id = n;
    while heap.len() > 1 {
        let take = fanin.min(heap.len());
        let mut inputs = Vec::with_capacity(take);
        let mut cost = 0u64;
        for _ in 0..take {
            let Reverse((l, id)) = heap.pop().expect("heap non-empty");
            if id != usize::MAX {
                inputs.push(id);
            }
            cost += l;
        }
        total += cost;
        heap.push(Reverse((cost, next_id)));
        steps.push(MergeStep { inputs, cost });
        next_id += 1;
    }
    MergeSchedule {
        steps,
        total_cost: total,
    }
}

/// The cost of the driver's actual strategy: level-order cascades of
/// `fanin`-wide groups in arrival order, then a final merge.
pub fn level_order_cost(lengths: &[u64], fanin: usize) -> u64 {
    assert!(fanin >= 2);
    if lengths.is_empty() {
        return 0;
    }
    let mut level: Vec<u64> = lengths.to_vec();
    let mut total = 0u64;
    while level.len() > fanin {
        level = level
            .chunks(fanin)
            .map(|g| {
                let s: u64 = g.iter().sum();
                total += s;
                s
            })
            .collect();
    }
    total + level.iter().sum::<u64>() // the final merge into the sink
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_huffman_textbook_example() {
        // Lengths 1,2,3 at fan-in 2: merge 1+2 (cost 3), then 3+3 (cost 6):
        // total 9 — versus level-order ((1+2)=3, then 3+3=6) same here.
        let s = optimal_schedule(&[1, 2, 3], 2);
        assert_eq!(s.total_cost, 9);
        assert_eq!(s.steps.len(), 2);
        assert_eq!(s.steps[0].inputs, vec![0, 1]);
    }

    #[test]
    fn optimal_beats_level_order_on_skewed_runs() {
        // One giant run + many tiny ones: level-order keeps re-copying the
        // giant; Huffman merges the tiny ones first.
        let lengths = [1_000_000u64, 1, 1, 1, 1, 1, 1];
        let opt = optimal_schedule(&lengths, 2).total_cost;
        let lvl = level_order_cost(&lengths, 2);
        assert!(opt < lvl, "opt {opt} vs level {lvl}");
        // The giant run must move exactly once in the optimal schedule.
        assert!(opt < 1_000_000 + 7 * 10);
    }

    #[test]
    fn equal_runs_make_both_strategies_match() {
        let lengths = vec![100u64; 16];
        let opt = optimal_schedule(&lengths, 4).total_cost;
        let lvl = level_order_cost(&lengths, 4);
        assert_eq!(opt, lvl); // 16 → 4 → 1: every record moves twice
        assert_eq!(opt, 2 * 1_600);
    }

    #[test]
    fn fanin_wider_than_runs_is_single_step() {
        let s = optimal_schedule(&[5, 6, 7], 10);
        assert_eq!(s.steps.len(), 1);
        assert_eq!(s.total_cost, 18);
    }

    #[test]
    fn dummy_padding_keeps_later_steps_full() {
        // 6 runs at fan-in 3: (6-1) % 2 = 1 → 1 dummy; first real step
        // takes 2 real runs, later steps take 3.
        let s = optimal_schedule(&[1, 1, 1, 1, 1, 1], 3);
        let real_inputs: usize = s.steps.iter().map(|st| st.inputs.len()).sum();
        // 6 originals + (steps-1) intermediates each consumed once.
        assert_eq!(real_inputs, 6 + s.steps.len() - 1);
        assert!(s.steps[0].inputs.len() < 3); // the padded step
        assert!(s.steps[1..].iter().all(|st| st.inputs.len() == 3));
    }

    #[test]
    fn every_input_consumed_exactly_once() {
        let lengths = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let s = optimal_schedule(&lengths, 3);
        let mut seen = std::collections::HashSet::new();
        for st in &s.steps {
            for &i in &st.inputs {
                assert!(seen.insert(i), "input {i} consumed twice");
            }
        }
        for i in 0..lengths.len() {
            assert!(seen.contains(&i), "run {i} never merged");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(optimal_schedule(&[], 2).total_cost, 0);
        assert_eq!(optimal_schedule(&[42], 2).total_cost, 42);
        assert_eq!(level_order_cost(&[], 2), 0);
        assert_eq!(level_order_cost(&[42], 2), 42);
    }
}
