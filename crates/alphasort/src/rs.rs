//! Tournament trees and replacement-selection.
//!
//! Replacement-selection is the classical run-generation algorithm
//! (Knuth, *Sorting and Searching*): a tournament of W records; the winner
//! is emitted, its slot refilled from input, and the path to the root
//! replayed. On random input the runs come out ≈2 W long, and "the
//! worst-case behavior is very close to its average behavior" (§4). The
//! paper *rejects* it for run formation because each replay walks a
//! pseudo-random leaf-to-root path with poor cache locality, and measures
//! QuickSort ~2.5× faster — but keeps a small tournament for the *merge*
//! phase where the tree fits in cache.
//!
//! [`LoserTree`] is that tournament, used both by [`ReplacementSelection`]
//! here and by the merge in [`crate::merge`].

use alphasort_dmgen::Record;

use crate::kernels::TreeKernel;

/// A tournament ("loser") tree over `k` external items.
///
/// The tree stores only leaf *indices*; the caller owns the items and
/// supplies a `less(a, b)` predicate over leaf indices. Exhausted leaves are
/// expressed by the predicate (an exhausted leaf must lose to everything).
///
/// After changing the winner's item, call [`LoserTree::replay`] — O(log k)
/// and touching only the root path, which is the cache-friendly property
/// the merge phase relies on.
pub struct LoserTree {
    /// Padded leaf count (power of two); leaves ≥ `k` are virtual +∞.
    cap: usize,
    k: usize,
    /// Internal nodes 1..cap: the loser of the match at that node.
    loser: Vec<u32>,
    winner: u32,
}

impl LoserTree {
    /// Build the tournament over `k` leaves with the given predicate.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new<F: FnMut(usize, usize) -> bool>(k: usize, mut less: F) -> Self {
        assert!(k > 0, "tournament needs at least one leaf");
        let cap = k.next_power_of_two();
        let mut loser = vec![u32::MAX; cap.max(1)];
        // Bottom-up bracket: winners[i] for internal node i (1-based heap).
        let mut winners = vec![u32::MAX; 2 * cap];
        for leaf in 0..cap {
            winners[cap + leaf] = leaf as u32;
        }
        let mut beats = |a: u32, b: u32| -> bool {
            let (a, b) = (a as usize, b as usize);
            if a >= k {
                return false; // virtual +∞ never wins
            }
            if b >= k {
                return true;
            }
            less(a, b)
        };
        for i in (1..cap).rev() {
            let (a, b) = (winners[2 * i], winners[2 * i + 1]);
            if beats(a, b) {
                winners[i] = a;
                loser[i] = b;
            } else {
                winners[i] = b;
                loser[i] = a;
            }
        }
        let winner = if cap == 1 { 0 } else { winners[1] };
        LoserTree {
            cap,
            k,
            loser,
            winner,
        }
    }

    /// Number of real leaves.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Always false (a tree has at least one leaf).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current winning leaf. The caller decides whether its item is
    /// exhausted (the tree does not know).
    pub fn winner(&self) -> usize {
        self.winner as usize
    }

    /// Replay the winner's root path after its item changed.
    pub fn replay<F: FnMut(usize, usize) -> bool>(&mut self, mut less: F) {
        let mut beats = |a: u32, b: u32| -> bool {
            let (a, b) = (a as usize, b as usize);
            if a >= self.k {
                return false;
            }
            if b >= self.k {
                return true;
            }
            less(a, b)
        };
        let mut s = self.winner;
        let mut t = (self.cap + s as usize) / 2;
        while t >= 1 {
            if beats(self.loser[t], s) {
                core::mem::swap(&mut self.loser[t], &mut s);
            }
            if t == 1 {
                break;
            }
            t /= 2;
        }
        self.winner = s;
    }

    /// [`LoserTree::replay`] with the win/lose update in conditional-move
    /// form: the comparison outcome becomes an all-ones/all-zeros mask and
    /// both node and challenger are recomputed by select, so there is no
    /// data-dependent branch in the root walk. The paper's replay is a
    /// pseudo-random path of coin-flip comparisons — the worst case for a
    /// branch predictor — which is exactly what this variant removes.
    ///
    /// The virtual-leaf guards stay: they test *fixed* leaf positions
    /// (≥ `k`, set at construction), so they are data-independent, and they
    /// are load-bearing — `less` indexes caller arrays of length `k`.
    pub fn replay_branchless<F: FnMut(usize, usize) -> bool>(&mut self, mut less: F) {
        let k = self.k;
        let mut beats = |a: u32, b: u32| -> bool {
            let (a, b) = (a as usize, b as usize);
            if a >= k {
                return false;
            }
            if b >= k {
                return true;
            }
            less(a, b)
        };
        let mut s = self.winner;
        let mut t = (self.cap + s as usize) / 2;
        while t >= 1 {
            let l = self.loser[t];
            let m = (beats(l, s) as u32).wrapping_neg();
            self.loser[t] = (s & m) | (l & !m);
            s = (l & m) | (s & !m);
            if t == 1 {
                break;
            }
            t /= 2;
        }
        self.winner = s;
    }

    /// Replay dispatching on the registry's [`TreeKernel`] choice.
    #[inline]
    pub fn replay_with<F: FnMut(usize, usize) -> bool>(&mut self, kernel: TreeKernel, less: F) {
        match kernel {
            TreeKernel::Branchy => self.replay(less),
            TreeKernel::Branchless => self.replay_branchless(less),
        }
    }
}

/// One tournament slot: the record plus its run tag and arrival number.
#[derive(Clone, Copy)]
struct Slot {
    /// Run this record will be emitted into; `u64::MAX` marks exhausted.
    run: u64,
    /// Arrival sequence, for stable tie-breaking.
    seq: u64,
    record: Record,
}

/// Streaming replacement-selection over an iterator of records.
///
/// Yields `(run_id, record)` pairs; `run_id` is non-decreasing and records
/// within a run are key-ascending. Stable: equal keys keep arrival order.
pub struct ReplacementSelection<I: Iterator<Item = Record>> {
    input: I,
    slots: Vec<Slot>,
    tree: LoserTree,
    next_seq: u64,
    done: bool,
}

impl<I: Iterator<Item = Record>> ReplacementSelection<I> {
    /// Start with a tournament of `capacity` records (the "memory size").
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(mut input: I, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let mut slots = Vec::with_capacity(capacity);
        let mut next_seq = 0u64;
        for _ in 0..capacity {
            match input.next() {
                Some(record) => {
                    slots.push(Slot {
                        run: 0,
                        seq: next_seq,
                        record,
                    });
                    next_seq += 1;
                }
                None => break,
            }
        }
        if slots.is_empty() {
            // Keep the tree well-formed with one exhausted slot.
            slots.push(Slot {
                run: u64::MAX,
                seq: 0,
                record: Record::ZERO,
            });
        }
        let tree = {
            let s = &slots;
            LoserTree::new(s.len(), |a, b| slot_less(&s[a], &s[b]))
        };
        ReplacementSelection {
            input,
            slots,
            tree,
            next_seq,
            done: false,
        }
    }
}

#[inline]
fn slot_less(a: &Slot, b: &Slot) -> bool {
    // Order by (run, key, arrival): the run tag dominates so the tournament
    // finishes the current run before starting the next.
    (a.run, &a.record.key, a.seq) < (b.run, &b.record.key, b.seq)
}

impl<I: Iterator<Item = Record>> Iterator for ReplacementSelection<I> {
    type Item = (u64, Record);

    fn next(&mut self) -> Option<(u64, Record)> {
        if self.done {
            return None;
        }
        let w = self.tree.winner();
        let out = self.slots[w];
        if out.run == u64::MAX {
            self.done = true;
            return None;
        }
        // Refill the winning slot from input.
        match self.input.next() {
            Some(record) => {
                // A replacement smaller than the record just emitted cannot
                // join the current run; tag it for the next one.
                let run = if record.key < out.record.key {
                    out.run + 1
                } else {
                    out.run
                };
                self.slots[w] = Slot {
                    run,
                    seq: self.next_seq,
                    record,
                };
                self.next_seq += 1;
            }
            None => {
                self.slots[w].run = u64::MAX;
            }
        }
        let slots = &self.slots;
        self.tree.replay(|a, b| slot_less(&slots[a], &slots[b]));
        Some((out.run, out.record))
    }
}

/// Batch helper: run replacement-selection over `input` with the given
/// tournament capacity and return the generated runs.
pub fn generate_runs(input: &[Record], capacity: usize) -> Vec<Vec<Record>> {
    let mut runs: Vec<Vec<Record>> = Vec::new();
    for (run, record) in ReplacementSelection::new(input.iter().copied(), capacity) {
        let run = run as usize;
        if run >= runs.len() {
            runs.resize_with(run + 1, Vec::new);
        }
        runs[run].push(record);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution};

    #[test]
    fn loser_tree_emits_sorted_sequence() {
        // Merge by repeatedly taking the winner of a static value array,
        // marking taken values exhausted.
        let vals = [5u32, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let mut taken = vec![false; vals.len()];
        let mut tree = LoserTree::new(vals.len(), |a, b| match (taken[a], taken[b]) {
            (true, _) => false,
            (false, true) => true,
            (false, false) => (vals[a], a) < (vals[b], b),
        });
        let mut out = Vec::new();
        for _ in 0..vals.len() {
            let w = tree.winner();
            out.push(vals[w]);
            taken[w] = true;
            tree.replay(|a, b| match (taken[a], taken[b]) {
                (true, _) => false,
                (false, true) => true,
                (false, false) => (vals[a], a) < (vals[b], b),
            });
        }
        let mut expect = vals.to_vec();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn branchless_replay_matches_branchy_drain() {
        // Drain two identical tournaments, one per replay variant; winner
        // sequences must be identical at every width (incl. virtual-leaf
        // padding widths).
        let mut state = 0xF00Du64;
        for k in [1usize, 2, 3, 5, 8, 13, 16, 31] {
            let vals: Vec<u64> = (0..k)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    state % 7 // heavy ties: exercise the tie-break paths
                })
                .collect();
            let cmp = |taken: &Vec<bool>, a: usize, b: usize| match (taken[a], taken[b]) {
                (true, _) => false,
                (false, true) => true,
                (false, false) => (vals[a], a) < (vals[b], b),
            };
            let mut taken_a = vec![false; k];
            let mut taken_b = vec![false; k];
            let mut tree_a = LoserTree::new(k, |a, b| cmp(&taken_a, a, b));
            let mut tree_b = LoserTree::new(k, |a, b| cmp(&taken_b, a, b));
            for step in 0..k {
                let (wa, wb) = (tree_a.winner(), tree_b.winner());
                assert_eq!(wa, wb, "k={k} step={step}");
                taken_a[wa] = true;
                taken_b[wb] = true;
                tree_a.replay_with(TreeKernel::Branchy, |a, b| cmp(&taken_a, a, b));
                tree_b.replay_with(TreeKernel::Branchless, |a, b| cmp(&taken_b, a, b));
            }
        }
    }

    #[test]
    fn loser_tree_single_leaf() {
        let tree = LoserTree::new(1, |_, _| false);
        assert_eq!(tree.winner(), 0);
    }

    #[test]
    fn loser_tree_non_power_of_two() {
        for k in [2usize, 3, 5, 6, 7, 9, 13] {
            let vals: Vec<u32> = (0..k as u32).rev().collect();
            let mut taken = vec![false; k];
            let cmp = |taken: &Vec<bool>, a: usize, b: usize| match (taken[a], taken[b]) {
                (true, _) => false,
                (false, true) => true,
                (false, false) => vals[a] < vals[b],
            };
            let mut tree = LoserTree::new(k, |a, b| cmp(&taken, a, b));
            let mut out = Vec::new();
            for _ in 0..k {
                let w = tree.winner();
                out.push(vals[w]);
                taken[w] = true;
                tree.replay(|a, b| cmp(&taken, a, b));
            }
            assert!(out.windows(2).all(|w| w[0] < w[1]), "k={k}: {out:?}");
        }
    }

    fn records(n: u64, dist: KeyDistribution) -> Vec<Record> {
        let (data, _) = generate(GenConfig {
            records: n,
            seed: 777,
            dist,
        });
        records_of(&data).to_vec()
    }

    #[test]
    fn runs_are_sorted_and_cover_input() {
        let input = records(5_000, KeyDistribution::Random);
        let runs = generate_runs(&input, 100);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 5_000);
        for run in &runs {
            assert!(run.windows(2).all(|w| w[0].key <= w[1].key));
        }
    }

    #[test]
    fn random_input_runs_average_twice_memory() {
        // Knuth's classic result, quoted in §4: replacement-selection
        // "generates runs twice as large as memory" on average.
        let input = records(20_000, KeyDistribution::Random);
        let capacity = 200;
        let runs = generate_runs(&input, capacity);
        let avg = 20_000.0 / runs.len() as f64;
        assert!(
            (avg / capacity as f64 - 2.0).abs() < 0.35,
            "avg run length {avg} vs capacity {capacity} ({} runs)",
            runs.len()
        );
    }

    #[test]
    fn sorted_input_yields_one_run() {
        let input = records(3_000, KeyDistribution::Sorted);
        let runs = generate_runs(&input, 50);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 3_000);
    }

    #[test]
    fn reverse_input_yields_memory_sized_runs() {
        // Worst case: every replacement starts a new run, so each run is
        // exactly the tournament size.
        let input = records(1_000, KeyDistribution::Reverse);
        let runs = generate_runs(&input, 50);
        assert_eq!(runs.len(), 20);
        assert!(runs.iter().all(|r| r.len() == 50));
    }

    #[test]
    fn stable_for_equal_keys() {
        let input = records(2_000, KeyDistribution::DupHeavy { cardinality: 3 });
        let runs = generate_runs(&input, 64);
        // Within each run, equal keys must appear in arrival order.
        for run in &runs {
            for w in run.windows(2) {
                if w[0].key == w[1].key {
                    assert!(w[0].seq() < w[1].seq(), "stability violated");
                }
            }
        }
    }

    #[test]
    fn capacity_larger_than_input_gives_single_sorted_run() {
        let input = records(100, KeyDistribution::Random);
        let runs = generate_runs(&input, 1_000);
        assert_eq!(runs.len(), 1);
        assert!(runs[0].windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn empty_input_yields_no_runs() {
        let runs = generate_runs(&[], 10);
        assert!(runs.is_empty());
    }
}
