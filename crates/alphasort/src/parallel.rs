//! Shared-memory multiprocessor decomposition (§5).
//!
//! "The root process breaks up the sorting work into independent chores
//! that can be handled by the workers. Chores during the QuickSort phase
//! consist of QuickSorting a data run. … During the merge phase, the root
//! merges all the (key-prefix, pointer) pairs to produce a sorted string of
//! record pointers. Workers perform the memory-intensive chores of
//! gathering records into output buffers."
//!
//! [`SortPool`] is the QuickSort-chore pool; [`GatherPool`] the gather-chore
//! pool. Both degrade to inline execution with zero workers (the paper's
//! uniprocessor case, where the root does sorting "in its spare time").

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use alphasort_obs as obs;

use alphasort_dmgen::RECORD_LEN;

use crate::gather::gather_into;
use crate::kernels::{Kernel, TreeKernel};
use crate::merge::{MergedPtr, RunMerger};
use crate::runform::{form_run_with, Representation, SortedRun};
use crate::stats::SortStats;

/// Sort one run buffer under an obs span (whether on a worker or inline).
fn form_run_traced(id: usize, buf: Vec<u8>, rep: Representation, kernel: Kernel) -> (SortedRun, Duration) {
    let mut g = obs::span(obs::phase::SORT);
    g.attr("run", id as u64);
    let t0 = Instant::now();
    let run = form_run_with(buf, rep, kernel);
    let d = t0.elapsed();
    g.attr("records", run.len() as u64);
    obs::metrics::observe("sort.run_us", d.as_micros() as u64);
    (run, d)
}

/// Gather one pointer batch under an obs span.
fn gather_traced(id: u64, runs: &[SortedRun], ptrs: &[MergedPtr]) -> (Vec<u8>, Duration) {
    let mut g = obs::span(obs::phase::GATHER);
    g.attr("batch", id);
    g.attr("records", ptrs.len() as u64);
    let t0 = Instant::now();
    let mut buf = Vec::new();
    gather_into(runs, ptrs, &mut buf);
    let d = t0.elapsed();
    obs::metrics::observe("gather.batch_us", d.as_micros() as u64);
    (buf, d)
}

/// Pool of workers QuickSorting run buffers as they arrive from input.
pub struct SortPool {
    rep: Representation,
    kernel: Kernel,
    tx: Option<Sender<(usize, Vec<u8>)>>,
    rx: Receiver<(usize, SortedRun, Duration)>,
    handles: Vec<JoinHandle<()>>,
    /// Out-of-order completions parked until their turn.
    parked: BTreeMap<usize, (SortedRun, Duration)>,
    submitted: usize,
    delivered: usize,
}

impl SortPool {
    /// Create a pool with `workers` threads (0 = sort inline on submit),
    /// forming runs with the scalar kernel.
    pub fn new(workers: usize, rep: Representation) -> Self {
        Self::with_kernel(workers, rep, Kernel::Scalar)
    }

    /// [`new`](Self::new) with an explicit run-formation kernel.
    pub fn with_kernel(workers: usize, rep: Representation, kernel: Kernel) -> Self {
        let (tx, work_rx) = channel::<(usize, Vec<u8>)>();
        // std mpsc receivers are single-consumer; workers share one behind a
        // mutex, holding the lock only while dequeuing (MPMC work queue).
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (res_tx, rx) = channel();
        // Workers inherit the submitting thread's trace track so per-node
        // traces (netsort) keep their pool spans on the right lane.
        let track = obs::current_track();
        let handles = (0..workers)
            .map(|w| {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                let track = track.clone();
                std::thread::Builder::new()
                    .name(format!("sort-worker-{w}"))
                    .spawn(move || {
                        obs::adopt_track(track);
                        loop {
                            let msg = work_rx.lock().unwrap().recv();
                            let Ok((id, buf)) = msg else { break };
                            let (run, d) = form_run_traced(id, buf, rep, kernel);
                            let _ = res_tx.send((id, run, d));
                        }
                    })
                    .expect("failed to spawn sort worker")
            })
            .collect();
        SortPool {
            rep,
            kernel,
            tx: if workers > 0 { Some(tx) } else { None },
            rx,
            handles,
            parked: BTreeMap::new(),
            submitted: 0,
            delivered: 0,
        }
    }

    /// Submit one run buffer for sorting. With zero workers this sorts
    /// immediately on the caller's thread.
    pub fn submit(&mut self, buf: Vec<u8>) {
        let id = self.submitted;
        self.submitted += 1;
        match &self.tx {
            Some(tx) => tx.send((id, buf)).expect("sort workers gone"),
            None => {
                let (run, d) = form_run_traced(id, buf, self.rep, self.kernel);
                self.parked.insert(id, (run, d));
            }
        }
    }

    /// Runs submitted but not yet delivered.
    pub fn outstanding(&self) -> usize {
        self.submitted - self.delivered
    }

    /// Move everything already sitting in the result channel to `parked`.
    fn absorb_ready(&mut self) {
        while let Ok((id, run, d)) = self.rx.try_recv() {
            self.parked.insert(id, (run, d));
        }
    }

    /// The next run in submission order if it has already been sorted;
    /// never blocks. Use during input so spilling overlaps reading.
    pub fn try_next_in_order(&mut self) -> Option<(SortedRun, Duration)> {
        self.absorb_ready();
        let r = self.parked.remove(&self.delivered)?;
        self.delivered += 1;
        Some(r)
    }

    /// The next run in submission order, blocking until it is sorted.
    /// `None` once everything submitted has been delivered.
    pub fn next_in_order(&mut self) -> Option<(SortedRun, Duration)> {
        if self.delivered >= self.submitted {
            return None;
        }
        while !self.parked.contains_key(&self.delivered) {
            let (id, run, d) = self.rx.recv().expect("sort worker died");
            self.parked.insert(id, (run, d));
        }
        let r = self.parked.remove(&self.delivered).expect("present");
        self.delivered += 1;
        Some(r)
    }

    /// Wait for every submitted run. Returns the runs in submission order
    /// plus the pool's stats: per-run fragments (sort CPU, run counts and
    /// lengths) folded through [`SortStats::merge`].
    pub fn finish(mut self) -> (Vec<SortedRun>, SortStats) {
        drop(self.tx.take()); // close the queue so workers exit when drained
        let mut runs = Vec::with_capacity(self.outstanding());
        let mut stats = SortStats::neutral();
        while let Some((run, d)) = self.next_in_order() {
            let mut frag = SortStats::neutral();
            frag.sort_time = d;
            frag.runs = 1;
            frag.records = run.len() as u64;
            frag.run_lengths.push(run.len() as u64);
            stats.merge(&frag);
            runs.push(run);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        (runs, stats)
    }
}

impl Drop for SortPool {
    /// Dropping without [`finish`](SortPool::finish) (e.g. on an IO error
    /// mid-sort) still closes the work queue and joins the workers, so no
    /// threads outlive the pool.
    fn drop(&mut self) {
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pool of workers gathering records into output buffers from a merged
/// pointer string. The root submits pointer batches; completed buffers come
/// back **in submission order** so the writer can stream them out.
pub struct GatherPool {
    runs: Arc<Vec<SortedRun>>,
    tx: Option<Sender<(u64, Vec<MergedPtr>)>>,
    rx: Receiver<(u64, Vec<u8>, Duration)>,
    handles: Vec<JoinHandle<()>>,
    /// Out-of-order completions parked until their turn.
    parked: BTreeMap<u64, (Vec<u8>, Duration)>,
    next_submit: u64,
    next_deliver: u64,
    /// Per-batch fragments folded through [`SortStats::merge`].
    stats: SortStats,
}

impl GatherPool {
    /// Create a pool with `workers` threads (0 = gather inline).
    pub fn new(workers: usize, runs: Arc<Vec<SortedRun>>) -> Self {
        let (tx, work_rx) = channel::<(u64, Vec<MergedPtr>)>();
        // Shared single receiver behind a mutex, as in `SortPool::new`.
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (res_tx, rx) = channel();
        let track = obs::current_track();
        let handles = (0..workers)
            .map(|w| {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                let runs = Arc::clone(&runs);
                let track = track.clone();
                std::thread::Builder::new()
                    .name(format!("gather-worker-{w}"))
                    .spawn(move || {
                        obs::adopt_track(track);
                        loop {
                            let msg = work_rx.lock().unwrap().recv();
                            let Ok((id, ptrs)) = msg else { break };
                            let (buf, d) = gather_traced(id, &runs, &ptrs);
                            let _ = res_tx.send((id, buf, d));
                        }
                    })
                    .expect("failed to spawn gather worker")
            })
            .collect();
        GatherPool {
            runs,
            tx: if workers > 0 { Some(tx) } else { None },
            rx,
            handles,
            parked: BTreeMap::new(),
            next_submit: 0,
            next_deliver: 0,
            stats: SortStats::neutral(),
        }
    }

    /// Submit the next pointer batch (batches are implicitly numbered).
    pub fn submit(&mut self, ptrs: Vec<MergedPtr>) {
        let id = self.next_submit;
        self.next_submit += 1;
        match &self.tx {
            Some(tx) => tx.send((id, ptrs)).expect("gather workers gone"),
            None => {
                let (buf, d) = gather_traced(id, &self.runs, &ptrs);
                self.parked.insert(id, (buf, d));
            }
        }
    }

    /// Stats accumulated so far (gather CPU across delivered batches).
    pub fn stats(&self) -> &SortStats {
        &self.stats
    }

    /// Number of batches submitted but not yet delivered.
    pub fn in_flight(&self) -> u64 {
        self.next_submit - self.next_deliver
    }

    /// Block for the next buffer in submission order. `None` once every
    /// submitted batch has been delivered.
    pub fn next_buffer(&mut self) -> Option<Vec<u8>> {
        if self.next_deliver >= self.next_submit {
            return None;
        }
        loop {
            if let Some((buf, d)) = self.parked.remove(&self.next_deliver) {
                self.next_deliver += 1;
                let mut frag = SortStats::neutral();
                frag.gather_time = d;
                self.stats.merge(&frag);
                return Some(buf);
            }
            let (id, buf, d) = self.rx.recv().expect("gather worker died");
            self.parked.insert(id, (buf, d));
        }
    }
}

impl Drop for GatherPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Merge + gather one key range into a pre-sized buffer, under an obs span
/// on the worker's track (the Figure 7 report shows the ranges overlapping).
fn merge_range_traced(
    range: usize,
    runs: &[SortedRun],
    bounds: &[(u32, u32)],
    tree_kernel: TreeKernel,
) -> (Vec<u8>, Duration) {
    let mut g = obs::span(obs::phase::MERGE);
    g.attr("range", range as u64);
    let t0 = Instant::now();
    let records: usize = bounds.iter().map(|&(s, e)| (e - s) as usize).sum();
    let mut buf = Vec::with_capacity(records * RECORD_LEN);
    for p in RunMerger::with_bounds_kernel(runs, bounds, tree_kernel) {
        buf.extend_from_slice(runs[p.run as usize].record_at(p.pos as usize).as_bytes());
    }
    let d = t0.elapsed();
    g.attr("records", records as u64);
    obs::metrics::observe("merge.range_us", d.as_micros() as u64);
    (buf, d)
}

/// A submitted range: its index plus the per-run `(start, end)` bounds.
type RangeJob = (usize, Vec<(u32, u32)>);

/// Pool of workers each running one key range's loser-tree merge (fused
/// with its gather) over a shared run set. The root submits the ranges of
/// a [`crate::pmerge::MergePartition`] and drains the output buffers **in
/// range order**, which concatenates to the serial merge's output.
pub struct MergePool {
    runs: Arc<Vec<SortedRun>>,
    tree_kernel: TreeKernel,
    tx: Option<Sender<RangeJob>>,
    rx: Receiver<(usize, Vec<u8>, Duration)>,
    handles: Vec<JoinHandle<()>>,
    /// Out-of-order completions parked until their turn.
    parked: BTreeMap<usize, (Vec<u8>, Duration)>,
    submitted: usize,
    delivered: usize,
}

impl MergePool {
    /// Create a pool with `workers` threads (0 = merge inline on submit),
    /// replaying the tournament in branchy (baseline) form.
    pub fn new(workers: usize, runs: Arc<Vec<SortedRun>>) -> Self {
        Self::with_kernel(workers, runs, TreeKernel::Branchy)
    }

    /// [`new`](Self::new) with an explicit tree-replay kernel.
    pub fn with_kernel(workers: usize, runs: Arc<Vec<SortedRun>>, tree_kernel: TreeKernel) -> Self {
        let (tx, work_rx) = channel::<RangeJob>();
        // Shared single receiver behind a mutex, as in `SortPool::new`.
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (res_tx, rx) = channel();
        let track = obs::current_track();
        let handles = (0..workers)
            .map(|w| {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                let runs = Arc::clone(&runs);
                let track = track.clone();
                std::thread::Builder::new()
                    .name(format!("merge-worker-{w}"))
                    .spawn(move || {
                        obs::adopt_track(track);
                        loop {
                            let msg = work_rx.lock().unwrap().recv();
                            let Ok((id, bounds)) = msg else { break };
                            let (buf, d) = merge_range_traced(id, &runs, &bounds, tree_kernel);
                            let _ = res_tx.send((id, buf, d));
                        }
                    })
                    .expect("failed to spawn merge worker")
            })
            .collect();
        MergePool {
            runs,
            tree_kernel,
            tx: if workers > 0 { Some(tx) } else { None },
            rx,
            handles,
            parked: BTreeMap::new(),
            submitted: 0,
            delivered: 0,
        }
    }

    /// Submit the next range's per-run bounds (ranges are implicitly
    /// numbered in submission order).
    pub fn submit(&mut self, bounds: Vec<(u32, u32)>) {
        let id = self.submitted;
        self.submitted += 1;
        match &self.tx {
            Some(tx) => tx.send((id, bounds)).expect("merge workers gone"),
            None => {
                let (buf, d) = merge_range_traced(id, &self.runs, &bounds, self.tree_kernel);
                self.parked.insert(id, (buf, d));
            }
        }
    }

    /// Block for the next range's output buffer, in range order. `None`
    /// once every submitted range has been delivered.
    pub fn next_in_order(&mut self) -> Option<(Vec<u8>, Duration)> {
        if self.delivered >= self.submitted {
            return None;
        }
        while !self.parked.contains_key(&self.delivered) {
            let (id, buf, d) = self.rx.recv().expect("merge worker died");
            self.parked.insert(id, (buf, d));
        }
        let r = self.parked.remove(&self.delivered).expect("present");
        self.delivered += 1;
        Some(r)
    }
}

impl Drop for MergePool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::RunMerger;
    use alphasort_dmgen::{generate, validate_records, GenConfig, RECORD_LEN};

    fn run_buffers(n: u64, per_run: usize) -> (alphasort_dmgen::Checksum, Vec<Vec<u8>>) {
        let (data, cs) = generate(GenConfig::datamation(n, 55));
        let bufs = data
            .chunks(per_run * RECORD_LEN)
            .map(|c| c.to_vec())
            .collect();
        (cs, bufs)
    }

    fn sort_with_pool(workers: usize) {
        let (cs, bufs) = run_buffers(3_000, 256);
        let mut pool = SortPool::new(workers, Representation::KeyPrefix);
        for b in bufs {
            pool.submit(b);
        }
        let (runs, pstats) = pool.finish();
        assert_eq!(runs.len(), 12);
        assert!(pstats.sort_time > Duration::ZERO);
        assert_eq!(pstats.runs, 12);
        assert_eq!(pstats.records, 3_000);

        let runs = Arc::new(runs);
        let mut merger = RunMerger::new(&runs);
        let mut gather = GatherPool::new(workers, Arc::clone(&runs));
        let mut out = Vec::new();
        loop {
            let ptrs = crate::gather::take_ptrs(&mut merger, 500);
            if ptrs.is_empty() {
                break;
            }
            gather.submit(ptrs);
            // Keep at most 3 batches in flight (triple buffering analogue).
            while gather.in_flight() > 3 {
                out.extend_from_slice(&gather.next_buffer().unwrap());
            }
        }
        while let Some(buf) = gather.next_buffer() {
            out.extend_from_slice(&buf);
        }
        let report = validate_records(&out, cs).unwrap();
        assert_eq!(report.records, 3_000);
    }

    #[test]
    fn inline_pools_sort_correctly() {
        sort_with_pool(0);
    }

    #[test]
    fn one_worker_pools_sort_correctly() {
        sort_with_pool(1);
    }

    #[test]
    fn many_worker_pools_sort_correctly() {
        sort_with_pool(4);
    }

    #[test]
    fn sort_pool_preserves_submission_order() {
        let (_, bufs) = run_buffers(1_000, 100);
        let firsts: Vec<u64> = bufs
            .iter()
            .map(|b| alphasort_dmgen::records_of(b)[0].seq())
            .collect();
        let mut pool = SortPool::new(3, Representation::Record);
        for b in bufs {
            pool.submit(b);
        }
        let (runs, _) = pool.finish();
        // Run i must still hold the records of chunk i (identified by the
        // sequence number stamped at generation).
        for (i, run) in runs.iter().enumerate() {
            let seqs: Vec<u64> = run.records().iter().map(|r| r.seq()).collect();
            let lo = firsts[i];
            assert!(
                seqs.iter().all(|&s| s / 100 == lo / 100),
                "run {i} shuffled"
            );
        }
    }

    #[test]
    fn pools_can_be_dropped_mid_stream_without_hanging() {
        // Submit work, deliver some of it, then drop both pools: Drop must
        // close queues and join workers (a hang here fails the test by
        // timeout).
        let (_, bufs) = run_buffers(1_000, 100);
        let mut pool = SortPool::new(2, Representation::KeyPrefix);
        for b in bufs {
            pool.submit(b);
        }
        let _ = pool.next_in_order();
        drop(pool);

        let (_, bufs) = run_buffers(500, 100);
        let mut sp = SortPool::new(1, Representation::KeyPrefix);
        for b in bufs {
            sp.submit(b);
        }
        let (runs, _) = sp.finish();
        let runs = Arc::new(runs);
        let mut merger = RunMerger::new(&runs);
        let mut gather = GatherPool::new(2, Arc::clone(&runs));
        gather.submit(crate::gather::take_ptrs(&mut merger, 100));
        gather.submit(crate::gather::take_ptrs(&mut merger, 100));
        let _ = gather.next_buffer();
        drop(gather); // one batch still parked/in flight
    }

    #[test]
    fn merge_pool_output_matches_serial_merge_gather() {
        let (cs, bufs) = run_buffers(4_000, 300);
        let mut pool = SortPool::new(2, Representation::KeyPrefix);
        for b in bufs {
            pool.submit(b);
        }
        let (runs, _) = pool.finish();
        let runs = Arc::new(runs);
        // Serial reference: full merge + gather.
        let serial = crate::gather::merge_gather_all(&runs);
        for workers in [0, 1, 3] {
            let plan = crate::pmerge::plan_mem_partitions(&runs, 4, 16);
            let mut mp = MergePool::new(workers, Arc::clone(&runs));
            for row in &plan.bounds {
                mp.submit(row.iter().map(|&(s, e)| (s as u32, e as u32)).collect());
            }
            let mut out = Vec::new();
            while let Some((buf, _)) = mp.next_in_order() {
                out.extend_from_slice(&buf);
            }
            assert_eq!(out, serial, "{workers} workers");
            validate_records(&out, cs).unwrap();
        }
    }

    #[test]
    fn gather_pool_delivers_in_order_despite_racing_workers() {
        let (_, bufs) = run_buffers(2_000, 200);
        let mut pool = SortPool::new(2, Representation::KeyPrefix);
        for b in bufs {
            pool.submit(b);
        }
        let (runs, _) = pool.finish();
        let runs = Arc::new(runs);
        let mut merger = RunMerger::new(&runs);
        let mut gather = GatherPool::new(4, Arc::clone(&runs));
        let mut batches = 0;
        loop {
            let ptrs = crate::gather::take_ptrs(&mut merger, 37);
            if ptrs.is_empty() {
                break;
            }
            gather.submit(ptrs);
            batches += 1;
        }
        let mut out = Vec::new();
        while let Some(buf) = gather.next_buffer() {
            out.extend_from_slice(&buf);
        }
        assert!(batches > 10);
        let recs = alphasort_dmgen::records_of(&out);
        assert_eq!(recs.len(), 2_000);
        assert!(recs.windows(2).all(|w| w[0].key <= w[1].key));
    }
}
